"""Distributed extension: a sensing pipeline across two CPUs and a bus.

The paper's conclusion calls TWCA for chains "an important step towards
... distributed embedded systems"; this example walks that step with
the library's CPA-style distributed layer:

* a camera pipeline `sense -> encode -> (bus transfer) -> decode -> act`
  mapped over cpu0 / bus / cpu1;
* a rare recovery chain on cpu1 as the overload source;
* jitter propagation between legs, end-to-end latency, and an
  end-to-end deadline miss model.

Run:  python examples/distributed_pipeline.py
"""

from repro.arrivals import PeriodicModel, SporadicModel
from repro.distributed import (DistributedChain, DistributedSystem,
                               analyze_distributed, distributed_dmm, on)
from repro.model import Task


def build_system() -> DistributedSystem:
    camera = DistributedChain(
        "camera",
        [on("cpu0", Task("cam.sense", priority=4, wcet=8, bcet=6)),
         on("cpu0", Task("cam.encode", priority=2, wcet=14, bcet=9)),
         on("bus", Task("cam.tx", priority=2, wcet=12, bcet=12)),
         on("cpu1", Task("cam.decode", priority=3, wcet=10, bcet=7)),
         on("cpu1", Task("cam.act", priority=1, wcet=9, bcet=7))],
        PeriodicModel(60), deadline=80)

    telemetry = DistributedChain(
        "telemetry",
        [on("cpu0", Task("tel.pack", priority=3, wcet=6)),
         on("bus", Task("tel.tx", priority=1, wcet=8))],
        PeriodicModel(120), deadline=120)

    recovery = DistributedChain(
        "recovery",
        [on("cpu1", Task("rec.scan", priority=5, wcet=18)),
         on("cpu1", Task("rec.fix", priority=4, wcet=12))],
        SporadicModel(900), overload=True)

    return DistributedSystem([camera, telemetry, recovery],
                             name="vision-stack")


def main() -> None:
    system = build_system()
    result = analyze_distributed(system)
    print(f"global analysis converged in {result.iterations} iterations")
    print()

    for name in ("camera", "telemetry"):
        e2e = result[name]
        print(f"chain {name} (deadline {e2e.deadline:g}):")
        for leg in e2e.legs:
            model = leg.input_model
            print(f"  leg{leg.index} on {leg.resource:<5} "
                  f"WCL {leg.wcl:6.1f}   input {model!r}")
        verdict = "meets" if e2e.meets_deadline else "MISSES"
        print(f"  end-to-end WCL {e2e.wcl:g} -> {verdict} the deadline")
        print()

    camera = result["camera"]
    print(f"leg deadline budgets for 'camera': "
          f"{[f'{b:.1f}' for b in camera.leg_budgets()]}")
    for k in (5, 10, 50):
        dmm = distributed_dmm(system, "camera", k, analysis=result)
        print(f"end-to-end dmm({k}) = {dmm}")

    # Cross-check against the multi-resource simulator.
    from repro.distributed import (DistributedSimulator,
                                   worst_case_distributed_activations)
    sim = DistributedSimulator(system).run(
        worst_case_distributed_activations(system, 6000), 6000)
    print()
    for name in ("camera", "telemetry"):
        observed = sim.max_latency(name)
        bound = result[name].wcl
        print(f"simulated worst latency of {name}: {observed:g} "
              f"<= bound {bound:g}")
        assert observed <= bound + 1e-9
    misses = sim.empirical_dmm("camera", 10)
    print(f"simulated misses of camera in any 10: {misses} <= "
          f"dmm(10) = {distributed_dmm(system, 'camera', 10, analysis=result)}")


if __name__ == "__main__":
    main()
