"""Parallel Table-2-style sweep through the batch-runner public API.

Draws random priority permutations of the Figure 4 case study and
analyzes every (system, chain) pair through ``repro.BatchRunner``,
fanning the TWCA jobs out over worker processes.  The deterministic
JSON export is byte-identical for any ``--workers`` value — parallelism
only changes the wall-clock time reported on stderr.

An optional cache directory demonstrates the persistent cross-process
cache: run the script twice with the same directory and the second
sweep serves every busy-window fixed point from disk (watch the hit
rate and the "served from disk" count in the summary).

The numeric kernel is selected exactly like the CLI's ``--kernel``
flag: pass ``numpy``/``python``/``auto`` as the fourth argument (it
calls ``repro.kernel.set_kernel``), or set the ``REPRO_KERNEL``
environment variable — worker processes inherit the choice, and the
deterministic export below is byte-identical either way.

Run:  python examples/batch_sweep.py [samples] [workers] [cache-dir] [kernel]
"""

import sys
import time

from repro import BatchRunner
from repro.kernel import kernel_name, set_kernel
from repro.synth import figure4_system, labeled_random_systems


def main(
    samples: int = 50,
    workers: int = 2,
    cache_dir: str = None,
    seed: int = 2017,
    kernel: str = None,
) -> None:
    if kernel is not None:
        set_kernel(kernel)  # the CLI's --kernel; REPRO_KERNEL otherwise
    base = figure4_system(calibrated=True)
    labeled = labeled_random_systems(base, samples, seed)
    systems = [system for _, system in labeled]
    labels = [label for label, _ in labeled]

    runner = BatchRunner(workers=workers, ks=(3, 10, 100), cache_dir=cache_dir)
    start = time.perf_counter()
    batch = runner.run_systems(systems, ["sigma_c", "sigma_d"], labels=labels)
    wall = time.perf_counter() - start

    print(batch.summary())
    print()
    schedulable = batch.status_counts.get("schedulable", 0)
    print(f"{schedulable}/{len(batch)} jobs schedulable outright;")
    print(f"{len(batch.errors)} analysis errors (reported as data, not raised)")
    print(
        f"{len(batch)} TWCA jobs in {wall:.2f}s with {workers} worker(s), "
        f"kernel {kernel_name()}"
    )
    if cache_dir is not None:
        print(
            f"persistent cache {cache_dir!r}: "
            f"{batch.disk_hit_count} lookups served from disk"
        )

    # The deterministic export is what a results pipeline would persist:
    # identical bytes whether workers=1 or workers=N analyzed the sweep.
    payload = batch.to_json()
    print(f"JSON export: {len(payload)} bytes (deterministic)")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 50,
        int(sys.argv[2]) if len(sys.argv) > 2 else 2,
        sys.argv[3] if len(sys.argv) > 3 else None,
        kernel=sys.argv[4] if len(sys.argv) > 4 else None,
    )
