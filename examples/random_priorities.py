"""Experiment 2 / Figure 5: the impact of priority assignment.

Randomly permutes the case study's 13 priorities (default 300 samples;
the paper uses 1000 — pass a count as argv[1]) and histograms dmm(10)
for sigma_c and sigma_d, reproducing the Figure 5 panels as ASCII bars.

Run:  python examples/random_priorities.py [samples]
"""

import random
import sys

from repro import analyze_twca
from repro.report import figure5_panel
from repro.synth import figure4_system, random_systems


def main(samples: int = 300, seed: int = 2017) -> None:
    rng = random.Random(seed)
    base = figure4_system(calibrated=True)
    values = {"sigma_c": [], "sigma_d": []}

    for system in random_systems(base, samples, rng):
        for name in values:
            result = analyze_twca(system, system[name])
            values[name].append(
                0 if result.is_schedulable else result.dmm(10))

    for name in ("sigma_c", "sigma_d"):
        print(figure5_panel(values[name], name))
        print()

    frac_c = values["sigma_c"].count(0) / samples
    frac_d = values["sigma_d"].count(0) / samples
    print(f"sigma_c schedulable: {frac_c:.1%}  (paper: 63.3%)")
    print(f"sigma_d schedulable: {frac_d:.1%}  (paper: 30.7%)")
    remaining = [v for v in values["sigma_d"] if v > 0]
    gentle = sum(1 for v in remaining if v <= 3)
    print(f"of the non-schedulable sigma_d systems, {gentle} "
          f"({gentle / samples:.1%} of all) still guarantee "
          f"<= 3 misses out of 10 — the paper's headline TWCA win")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 300)
