"""The paper's industrial case study, end to end (Experiment 1).

Rebuilds the Fig. 4 system, reproduces Table I and Table II (both the
printed-parameter and the calibrated variants), and prints the analysis
internals the paper walks through in Sec. VI: the combinations, the
unschedulable one, N_b and the Omega capacities.

Run:  python examples/case_study.py
"""

from repro import analyze_latency, analyze_twca
from repro.report import dmm_table, twca_summary, wcl_table
from repro.synth import figure4_system


def main() -> None:
    # ------------------------------------------------------------------
    # Table I: worst-case latencies with overload included.
    # ------------------------------------------------------------------
    system = figure4_system()
    results = {name: analyze_latency(system, system[name])
               for name in ("sigma_c", "sigma_d")}
    print("=== Table I (paper: WCL_c = 331, WCL_d = 175) ===")
    print(wcl_table(results, {n: system[n].deadline for n in results}))
    print()

    # The second analysis: abstract the overload chains away.
    print("=== Typical analysis (overload abstracted away) ===")
    for name in ("sigma_c", "sigma_d"):
        typical = analyze_latency(system, system[name],
                                  include_overload=False)
        print(f"  {name}: typical WCL {typical.wcl:g} <= 200 -> "
              f"schedulable without overload")
    print()

    # ------------------------------------------------------------------
    # TWCA of sigma_c: combinations and the DMM (Table II).
    # ------------------------------------------------------------------
    twca = analyze_twca(system, system["sigma_c"])
    print("=== TWCA of sigma_c (printed overload parameters) ===")
    print(twca_summary(twca))
    print()
    print(dmm_table(twca, [3, 7, 10]))
    print("note: with the printed sporadic models the dmm staircase")
    print("rises at k = 7 and k = 10; the paper's k = 76 / 250 need the")
    print("unpublished industrial arrival curves (see DESIGN.md §4).")
    print()

    calibrated = figure4_system(calibrated=True)
    twca_cal = analyze_twca(calibrated, calibrated["sigma_c"])
    print("=== TWCA of sigma_c (calibrated overload curves) ===")
    print(dmm_table(twca_cal, [3, 76, 250]))
    print("matches Table II exactly: dmm(3)=3, dmm(76)=4, dmm(250)=5")
    print()

    # Omega capacities behind those numbers (Lemma 4).
    print("Omega capacities for k = 3:",
          {name: twca.omega(name, 3)
           for name in ("sigma_a", "sigma_b")})


if __name__ == "__main__":
    main()
