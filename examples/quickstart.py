"""Quickstart: model a small system, bound its latency, get a DMM.

A minimal tour of the public API: build a two-chain system (an
application chain disturbed by a sporadic interrupt-service chain), run
the latency analysis of Sec. IV, the TWCA of Sec. V, and read the
weakly-hard verdict.

Run:  python examples/quickstart.py
"""

from repro import (DeadlineMissModel, PeriodicModel, SporadicModel,
                   SystemBuilder, analyze_latency, analyze_twca)
from repro.weaklyhard import MKFirm


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Model: one periodic application chain, one rare but expensive
    #    recovery chain at higher priority (the overload source).
    # ------------------------------------------------------------------
    system = (
        SystemBuilder("quickstart")
        .chain("app", PeriodicModel(100), deadline=100)
        .task("app.sense", priority=3, wcet=10)
        .task("app.compute", priority=2, wcet=25)
        .task("app.actuate", priority=1, wcet=20)
        .chain("recovery", SporadicModel(450), overload=True)
        .task("recovery.scan", priority=5, wcet=30)
        .task("recovery.fix", priority=4, wcet=25)
        .build()
    )
    print(f"system utilization: {system.utilization():.2f}")

    # ------------------------------------------------------------------
    # 2. Latency analysis (Theorem 1/2).
    # ------------------------------------------------------------------
    latency = analyze_latency(system, system["app"])
    print(f"worst-case latency of 'app': {latency.wcl:g} "
          f"(deadline {system['app'].deadline:g}, "
          f"busy window holds up to {latency.max_queue} activations)")

    typical = analyze_latency(system, system["app"],
                              include_overload=False)
    print(f"without the recovery chain: {typical.wcl:g}")

    # ------------------------------------------------------------------
    # 3. TWCA (Theorem 3): how often can 'app' miss?
    # ------------------------------------------------------------------
    twca = analyze_twca(system, system["app"])
    print(f"verdict: {twca.status.value}")
    dmm = DeadlineMissModel(twca.dmm, name="app")
    for k in (1, 5, 10, 50):
        print(f"  dmm({k}) = {dmm(k)}   "
              f"(at most {dmm(k)} misses in any {k} activations)")

    # ------------------------------------------------------------------
    # 4. Weakly-hard verdicts.
    # ------------------------------------------------------------------
    constraint = MKFirm(hits=8, window=10)
    verdict = "holds" if constraint.satisfied_by(dmm) else "does NOT hold"
    print(f"(8,10)-firm guarantee {verdict} for 'app'")


if __name__ == "__main__":
    main()
