"""Weakly-hard verification: from DMM to (m,k) contracts and back.

A control engineer hands over weakly-hard contracts ("the loop survives
any 2 misses in 10, but never 2 in a row"); this example verifies them
for the case study's sigma_c with the TWCA-derived DMM, cross-checks
against simulated miss patterns, and reports overshoot/settling-time
statistics for the overload episodes (Kumar & Thiele-style metrics).

Run:  python examples/weakly_hard_verification.py
"""

from repro import DeadlineMissModel, analyze_twca
from repro.sim import (miss_streaks, overshoot_report,
                       simulate_worst_case)
from repro.synth import figure4_system
from repro.weaklyhard import (AnyMisses, MKFirm, consecutive_misses,
                              miss_pattern_allowed, strongest_any_misses)


def main() -> None:
    system = figure4_system(calibrated=True)
    twca = analyze_twca(system, system["sigma_c"])
    dmm = DeadlineMissModel(twca.dmm, name="sigma_c")

    # ------------------------------------------------------------------
    # 1. Contracts proposed by the control side.
    # ------------------------------------------------------------------
    contracts = [
        AnyMisses(3, 3),            # any 3 in a row may miss (weak)
        MKFirm(hits=6, window=10),  # at least 6 of any 10 met
        MKFirm(hits=8, window=10),  # at least 8 of any 10 met
        consecutive_misses(3),      # never 4 consecutive misses
    ]
    print("analysis-backed verdicts for sigma_c:")
    for contract in contracts:
        verdict = ("guaranteed" if contract.satisfied_by(dmm)
                   else "NOT guaranteed")
        print(f"  {contract}: {verdict}")
    print()

    # ------------------------------------------------------------------
    # 2. The strongest contracts the DMM supports.
    # ------------------------------------------------------------------
    print("tightest any-misses constraints per window:")
    for constraint in strongest_any_misses(dmm, [3, 10, 76, 250]):
        print(f"  at most {constraint.misses} misses in any "
              f"{constraint.window}")
    print()

    # ------------------------------------------------------------------
    # 3. Cross-check with simulated miss patterns.
    # ------------------------------------------------------------------
    result = simulate_worst_case(system, 20_000)
    flags = result.miss_flags("sigma_c")
    print(f"simulated {len(flags)} instances, "
          f"{sum(flags)} misses, streaks {miss_streaks(result, 'sigma_c')}")
    for constraint in contracts:
        if constraint.satisfied_by(dmm):
            ok = miss_pattern_allowed(flags, constraint)
            print(f"  simulated pattern respects {constraint}: {ok}")
    print()

    # ------------------------------------------------------------------
    # 4. Overload episode statistics (overshoot / settling).
    # ------------------------------------------------------------------
    for source in ("sigma_a", "sigma_b"):
        reports = overshoot_report(result, "sigma_c", source,
                                   typical_level=166)
        worst = max(reports, key=lambda r: r.overshoot)
        print(f"worst episode from {source}: overshoot "
              f"{worst.overshoot:g} over the typical level, settles "
              f"after {worst.settling_instances} instances")


if __name__ == "__main__":
    main()
