"""Drive the `repro serve` analysis daemon end-to-end with urllib.

The daemon keeps engines and caches hot across requests: the first
``POST /analyze`` of a system pays the cold analysis, every identical
request after that is served whole from the warm ``jobs`` cache —
``GET /cache/stats`` shows the hit counters climbing while the
``busy_time`` miss counter stands still (zero fixed points recomputed).

By default the script starts a private in-process daemon on a free
port, so it is runnable standalone::

    python examples/serve_client.py

Point it at an already-running daemon instead (start one with
``repro serve --port 8787``) to watch a *shared* warm cache::

    python examples/serve_client.py http://127.0.0.1:8787

Only the client side below talks to the daemon, and it uses nothing
but ``urllib`` + ``json`` — it is the wire protocol a non-Python
client would speak.
"""

import json
import sys
import time
import urllib.request

from repro.api import AnalysisService, start_server
from repro.model.serialization import system_to_dict
from repro.synth import figure4_system


def post(url: str, path: str, payload: dict) -> dict:
    """One JSON round trip (what any non-Python client would do)."""
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return json.loads(response.read().decode("utf-8"))


def get(url: str, path: str) -> dict:
    with urllib.request.urlopen(url + path, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def main(base_url: str = None) -> None:
    server = None
    if base_url is None:
        server = start_server(AnalysisService())  # private daemon, free port
        base_url = server.url
    print(f"daemon: {base_url} -> {get(base_url, '/healthz')}")

    system = system_to_dict(figure4_system(calibrated=True))

    # 1. Cold analyze: the system travels inline; the daemon registers
    #    it under its content digest and analyzes chain sigma_c.
    request = {"system": system, "chain": "sigma_c", "ks": [3, 76, 250]}
    started = time.perf_counter()
    cold = post(base_url, "/analyze", request)
    cold_s = time.perf_counter() - started
    job = cold["jobs"][0]
    print(f"cold analyze ({cold_s:.3f}s): {job['status']}, dmm={job['dmm']}")

    # 2. Warm analyze: byte-identical answer, zero recomputation.  The
    #    system can now be referenced by digest alone — no payload.
    by_digest = dict(request, system_digest=cold["system_digest"])
    by_digest.pop("system")
    started = time.perf_counter()
    warm = post(base_url, "/analyze", by_digest)
    warm_s = time.perf_counter() - started
    assert warm["jobs"] == cold["jobs"], "warm response must be identical"
    print(f"warm analyze ({warm_s:.3f}s): identical jobs, by digest only")

    # 3. A batch: compatible requests (same system/chain, different k
    #    windows) are merged into one multi-q analysis server-side.
    batch = post(
        base_url,
        "/batch",
        {
            "requests": [
                {"system_digest": cold["system_digest"], "chain": "sigma_c",
                 "ks": [1]},
                {"system_digest": cold["system_digest"], "chain": "sigma_c",
                 "ks": [10, 100]},
                {"system_digest": cold["system_digest"], "chain": "sigma_d",
                 "ks": [10]},
            ]
        },
    )
    print(f"batch: {batch['job_count']} jobs, statuses {batch['status_counts']}")

    # 4. The warm-state ledger.
    stats = get(base_url, "/cache/stats")
    service = stats["service"]
    jobs_cache = stats["cache"].get("jobs", {})
    print(
        f"stats: {service['requests']} requests, {service['computes']} computes, "
        f"{service['coalesced']} coalesced, {service['merged']} merged, "
        f"{service['systems']} warm system(s); "
        f"jobs cache {jobs_cache.get('hits', 0)}h/{jobs_cache.get('misses', 0)}m"
    )

    if server is not None:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main(*sys.argv[1:2])
