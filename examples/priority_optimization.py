"""Search for priority assignments that minimize deadline misses.

Experiment 2 shows the priority assignment decides how weakly-hard a
chain is.  This example turns the analysis into a design tool: starting
from the case study's (sigma_c-hostile) assignment, random search and
hill climbing look for permutations making *both* analyzed chains
schedulable — and report the margin the winner leaves.

Run:  python examples/priority_optimization.py
"""

import random

from repro import analyze_twca
from repro.opt import (dmm_objective, hill_climb, random_search,
                       wcet_margin)
from repro.synth import figure4_system


def main() -> None:
    system = figure4_system()
    objective = dmm_objective(["sigma_c", "sigma_d"], k=10)
    rng = random.Random(7)

    start = objective(system)
    print(f"case-study assignment: combined dmm(10) = {start:g}")
    print("(sigma_c can miss 5 of 10 under the printed parameters)")
    print()

    random_result = random_search(system, objective, samples=40, rng=rng)
    print(f"random search over 40 permutations: best score "
          f"{random_result.score:g} after {random_result.evaluations} "
          f"evaluations")

    climb_result = hill_climb(system, objective, rng, max_rounds=8)
    print(f"hill climbing: best score {climb_result.score:g} after "
          f"{climb_result.evaluations} evaluations")
    print()

    best = (climb_result if climb_result.score <= random_result.score
            else random_result)
    improved = best.apply(system)
    for name in ("sigma_c", "sigma_d"):
        result = analyze_twca(improved, improved[name])
        print(f"{name} under the found assignment: {result.status.value}"
              + (f", WCL {result.wcl:g}" if result.full_latency else ""))

    if best.score == 0:
        margin = wcet_margin(improved, scaled_chain="sigma_b",
                             target_chain="sigma_c", misses=0, window=10)
        print(f"\nrobustness: sigma_b's WCETs may grow by a factor of "
              f"{margin:.2f} before sigma_c misses again")


if __name__ == "__main__":
    main()
