"""Working with trace-derived and bursty arrival curves.

The paper's overload chains are "interrupt service routines or recovery
chains" whose real activation patterns are richer than a minimum
inter-arrival time.  This example:

1. records a synthetic bursty interrupt trace,
2. abstracts it into a conservative ArrivalCurve,
3. plugs the curve into the case study in place of sigma_a's sporadic
   model, and
4. shows how the deadline miss model tightens.

Run:  python examples/custom_arrival_curves.py
"""

import random

from repro import analyze_twca
from repro.arrivals import ArrivalCurve, SporadicBurstModel
from repro.model import System
from repro.synth import figure4_system


def record_interrupt_trace(rng: random.Random, horizon: float):
    """A synthetic ISR log: bursts of 2 activations 700 apart, with long
    quiet gaps — consistent with the printed delta_minus(2) = 700."""
    times = []
    t = 0.0
    while t < horizon:
        times.append(t)
        times.append(t + 700 + rng.random() * 150)
        t += 16_000 + rng.random() * 3_000
    return [x for x in times if x <= horizon]


def main() -> None:
    rng = random.Random(42)
    trace = record_interrupt_trace(rng, horizon=200_000)
    print(f"recorded {len(trace)} interrupt activations")

    curve = ArrivalCurve.from_trace(trace)
    print(f"trace-derived curve: delta(2)={curve.delta_minus(2):g}, "
          f"delta(3)={curve.delta_minus(3):g}, "
          f"delta(4)={curve.delta_minus(4):g}")

    burst = SporadicBurstModel(inner_distance=700, burst=2,
                               outer_distance=16_000)
    print(f"two-level model:     delta(2)={burst.delta_minus(2):g}, "
          f"delta(3)={burst.delta_minus(3):g}, "
          f"delta(4)={burst.delta_minus(4):g}")
    print()

    base = figure4_system()
    variants = {
        "printed sporadic (700)": base,
        "trace-derived curve": _swap(base, curve),
        "two-level burst model": _swap(base, burst),
    }
    print(f"{'model':<26} {'dmm(10)':>8} {'dmm(76)':>8} {'dmm(250)':>9}")
    for label, system in variants.items():
        result = analyze_twca(system, system["sigma_c"])
        print(f"{label:<26} {result.dmm(10):>8} {result.dmm(76):>8} "
              f"{result.dmm(250):>9}")
    print()
    print("richer curves (rarer re-activation) tighten the long-window")
    print("bounds dramatically — the effect behind Table II's 76/250.")


def _swap(base, model):
    chains = [c.with_activation(model) if c.name == "sigma_a" else c
              for c in base.chains]
    return System(chains, name=f"figure4+{type(model).__name__}")


if __name__ == "__main__":
    main()
