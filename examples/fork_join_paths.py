"""Fork/join systems via paths (the paper's footnote 1).

A sensor-fusion application: an acquisition chain forks into two
processing branches (vision and radar) that are analyzed as two paths
sharing the acquisition prefix.  Each path gets an end-to-end latency
bound and — with a tight deadline — an end-to-end deadline miss model.

Run:  python examples/fork_join_paths.py
"""

from repro import PeriodicModel, SporadicModel, SystemBuilder
from repro.analysis import Path, analyze_path, path_dmm


def build_system():
    return (
        SystemBuilder("fusion")
        .chain("acquire", PeriodicModel(80), deadline=80)
        .task("acq.sample", priority=8, wcet=6, bcet=4)
        .task("acq.stamp", priority=7, wcet=4, bcet=3)
        .chain("vision", PeriodicModel(80), deadline=80)
        .task("vis.detect", priority=4, wcet=18, bcet=12)
        .task("vis.track", priority=3, wcet=10, bcet=7)
        .chain("radar", PeriodicModel(80), deadline=80)
        .task("rad.cluster", priority=2, wcet=12, bcet=8)
        .task("rad.fuse", priority=1, wcet=14, bcet=9)
        .chain("watchdog", SporadicModel(640), overload=True)
        .task("wd.check", priority=9, wcet=15)
        .build()
    )


def main() -> None:
    system = build_system()
    paths = [
        Path("acquire->vision", ["acquire", "vision"], deadline=100),
        Path("acquire->radar", ["acquire", "radar"], deadline=100),
    ]

    for path in paths:
        result = analyze_path(system, path)
        print(f"path {path.name} (deadline {path.deadline:g}):")
        for stage in result.stages:
            print(f"  {stage.chain_name:<8} WCL {stage.wcl:6.1f}  "
                  f"input {stage.input_model!r}")
        verdict = ("meets" if result.meets_deadline else "MISSES")
        print(f"  end-to-end WCL {result.wcl:g} -> {verdict}")
        for k in (5, 20):
            print(f"  end-to-end dmm({k}) = "
                  f"{path_dmm(system, path, k, analysis=result)}")
        print()

    # The shared prefix converges to the same verdict in both paths —
    # the fork is consistent.
    left = analyze_path(system, paths[0])
    right = analyze_path(system, paths[1])
    assert left.stages[0].wcl == right.stages[0].wcl
    print(f"shared 'acquire' stage agrees across the fork: "
          f"WCL {left.stages[0].wcl:g}")


if __name__ == "__main__":
    main()
