"""Validate the analytical bounds against discrete-event simulation.

Runs the critical-instant simulation of the case study, renders an ASCII
Gantt chart of the first 600 time units, and compares observed latencies
and miss counts against the Theorem 2 / Theorem 3 bounds.

Run:  python examples/simulation_validation.py
"""

from repro import analyze_latency, analyze_twca
from repro.sim import render_gantt, simulate_worst_case
from repro.synth import figure4_system


def main(horizon: float = 12_000) -> None:
    system = figure4_system()
    result = simulate_worst_case(system, horizon)

    print("=== Critical-instant schedule (first 600 time units) ===")
    print(render_gantt(result, until=600, width=100))
    print()

    print("=== Bounds vs observations ===")
    for name in ("sigma_c", "sigma_d"):
        wcl = analyze_latency(system, system[name]).wcl
        observed = result.max_latency(name)
        tight = "tight!" if observed == wcl else ""
        print(f"{name}: observed worst latency {observed:g} <= "
              f"WCL {wcl:g} {tight}")

        twca = analyze_twca(system, system[name])
        for k in (3, 10):
            empirical = result.empirical_dmm(name, k)
            bound = twca.dmm(k)
            print(f"   misses in any {k} consecutive: "
                  f"observed {empirical} <= dmm({k}) = {bound}")

    print()
    windows = result.busy_windows("sigma_c")
    print(f"sigma_c busy windows observed: {len(windows)}, "
          f"longest {max(e - s for s, e in windows):g} time units")
    misses = result.miss_count("sigma_c")
    total = len(result.latencies("sigma_c"))
    print(f"sigma_c missed {misses} of {total} deadlines in simulation "
          f"(weakly-hard, not broken: the DMM bounds how they cluster)")


if __name__ == "__main__":
    main()
