"""Cross-validation of the ILP backends: branch-and-bound vs DP vs scipy
(exact) and greedy (lower bound)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import (IntegerProgram, scipy_available, solve,
                       solve_branch_bound, solve_dp, solve_greedy,
                       solve_scipy)


def knapsack(objective, rows, rhs, upper=None):
    return IntegerProgram(objective=list(objective),
                          rows=[list(r) for r in rows],
                          rhs=list(rhs),
                          upper_bounds=upper)


class TestHandCrafted:
    def test_single_capacity(self):
        # max x1 + x2 with x1 <= 3, x2 <= 2 via shared rows.
        program = knapsack([1, 1], [[1, 0], [0, 1]], [3, 2])
        solution = solve_branch_bound(program)
        assert solution.objective == 5

    def test_theorem3_shape(self):
        # The case-study packing: one unschedulable combination using
        # both segments, capacities 3 and 3 -> optimum 3.
        program = knapsack([1], [[1], [1]], [3, 3])
        assert solve_branch_bound(program).objective == 3

    def test_fractional_relaxation_needs_branching(self):
        # max x1 + x2 + x3 with pairwise sums <= 1: LP optimum 1.5,
        # ILP optimum 1.
        program = knapsack(
            [1, 1, 1],
            [[1, 1, 0], [0, 1, 1], [1, 0, 1]],
            [1, 1, 1])
        assert solve_branch_bound(program).objective == 1
        assert solve_dp(program).objective == 1

    def test_weighted_objective(self):
        # The heavy item can be taken twice within the shared capacity.
        program = knapsack([5, 2, 2], [[1, 1, 1]], [2])
        solution = solve_branch_bound(program)
        assert solution.objective == 10  # x1 = 2

    def test_weighted_objective_with_unit_bound(self):
        # Cap the heavy item at one copy: heavy + one light wins.
        program = knapsack([5, 2, 2], [[1, 1, 1]], [2], upper=[1, 1, 1])
        solution = solve_branch_bound(program)
        assert solution.objective == 7
        assert solve_dp(program).objective == 7

    def test_empty_program(self):
        program = knapsack([], [], [])
        assert solve_branch_bound(program).objective == 0
        assert solve_dp(program).objective == 0
        assert solve_greedy(program).objective == 0

    def test_unbounded_detection(self):
        program = knapsack([1], [], [])
        assert solve_branch_bound(program).status == "unbounded"
        assert solve_dp(program).status == "unbounded"
        assert solve_greedy(program).status == "unbounded"

    def test_zero_capacity(self):
        program = knapsack([1, 1], [[1, 1]], [0])
        assert solve_branch_bound(program).objective == 0

    def test_explicit_upper_bounds(self):
        program = knapsack([1], [[1]], [100], upper=[4])
        assert solve_branch_bound(program).objective == 4
        assert solve_dp(program).objective == 4

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            solve(knapsack([1], [[1]], [1]), backend="martian")

    def test_cross_check_mode(self):
        program = knapsack([1, 2], [[1, 1]], [3])
        solution = solve(program, backend="branch_bound",
                         cross_check=True)
        assert solution.objective == 6


class TestDpGuards:
    def test_rejects_fractional_rhs(self):
        with pytest.raises(ValueError):
            solve_dp(knapsack([1], [[1]], [1.5]))

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError):
            solve_dp(knapsack([1], [[-1]], [2]))

    def test_rejects_huge_state_space(self):
        program = knapsack([1, 1, 1],
                           [[1, 0, 0], [0, 1, 0], [0, 0, 1]],
                           [500, 500, 500])
        with pytest.raises(ValueError):
            solve_dp(program)


@st.composite
def packing_instances(draw):
    """Random Theorem 3-shaped instances: 0/1 matrix, small capacities."""
    num_vars = draw(st.integers(1, 6))
    num_rows = draw(st.integers(1, 5))
    objective = [draw(st.integers(1, 4)) for _ in range(num_vars)]
    rows = []
    rhs = []
    for _ in range(num_rows):
        row = [draw(st.integers(0, 1)) for _ in range(num_vars)]
        rows.append(row)
        rhs.append(draw(st.integers(0, 6)))
    # Every variable must be covered by at least one row to stay bounded.
    for j in range(num_vars):
        if not any(row[j] for row in rows):
            extra = [0] * num_vars
            extra[j] = 1
            rows.append(extra)
            rhs.append(draw(st.integers(0, 6)))
    return knapsack(objective, rows, rhs)


class TestBackendAgreement:
    @pytest.mark.skipif(
        not scipy_available(), reason="scipy not installed (no-numpy leg)"
    )
    @settings(max_examples=80, deadline=None)
    @given(program=packing_instances())
    def test_branch_bound_equals_scipy(self, program):
        ours = solve_branch_bound(program)
        reference = solve_scipy(program)
        assert ours.status == reference.status == "optimal"
        assert ours.objective == pytest.approx(reference.objective)

    @settings(max_examples=80, deadline=None)
    @given(program=packing_instances())
    def test_branch_bound_equals_dp(self, program):
        ours = solve_branch_bound(program)
        exact = solve_dp(program)
        assert ours.objective == pytest.approx(exact.objective)

    @settings(max_examples=80, deadline=None)
    @given(program=packing_instances())
    def test_greedy_is_feasible_lower_bound(self, program):
        heuristic = solve_greedy(program)
        exact = solve_branch_bound(program)
        assert heuristic.objective <= exact.objective + 1e-9
        assert program.is_feasible(heuristic.values)

    @settings(max_examples=60, deadline=None)
    @given(program=packing_instances())
    def test_solutions_are_integral_and_feasible(self, program):
        solution = solve_branch_bound(program)
        assert program.is_feasible(solution.values)
        for value in solution.values:
            assert value == int(value)
