"""The sharded batch coordinator: merge identity, scheduling, retries.

The load-bearing invariant is the one the ROADMAP promised: because
every job's deterministic export is a pure function of the job, the
coordinator's merged export is byte-identical to the serial runner —
for any shard topology (local processes, remote endpoints, mixed), any
chunk size, and any amount of stealing or retrying along the way.
"""

import io
import random
import threading
import time

import pytest

from repro.runner import (
    NO_RETRY,
    AnalysisJob,
    BatchRunner,
    JobResult,
    LocalShardWorker,
    RemoteShardWorker,
    RetryPolicy,
    ShardCoordinator,
    ShardExecutionError,
    ShardLog,
    WorkerUnavailable,
    execute_job,
    local_shard_workers,
    make_chunks,
    run_sharded,
)
from repro.service import AnalysisService, ServiceClient, ServiceError, start_server
from repro.synth import GeneratorConfig, generate_feasible_system

KS = (1, 10)

#: Immediate-retry policy for tests (no backoff waiting).
FAST_RETRY = RetryPolicy(attempts=4, base_delay=0.0)


def synth_jobs(count=6, seed=20, ks=KS):
    rng = random.Random(seed)
    config = GeneratorConfig(chains=2, overload_chains=1, utilization=0.55)
    systems = [generate_feasible_system(rng, config) for _ in range(count)]
    runner = BatchRunner(workers=1, ks=ks)
    return runner.jobs_for(systems), runner


class InlineWorker:
    """A duck-typed shard worker executing chunks in-process — the
    scheduler tests need controllable workers, not real processes."""

    def __init__(self, name, *, delay=0.0, delay_chunks=()):
        self.name = name
        self.delay = delay
        self.delay_chunks = set(delay_chunks)
        self.ran = []

    def run_chunk(self, chunk):
        if self.delay and (not self.delay_chunks or chunk.index in self.delay_chunks):
            time.sleep(self.delay)
        self.ran.append(chunk.index)
        return [execute_job(job) for job in chunk.jobs]

    def close(self):
        pass


class FlakyWorker(InlineWorker):
    """Raises :class:`WorkerUnavailable` for the first ``failures``
    chunk attempts, then behaves."""

    def __init__(self, name, failures):
        super().__init__(name)
        self.failures = failures

    def run_chunk(self, chunk):
        if self.failures > 0:
            self.failures -= 1
            raise WorkerUnavailable(f"{self.name} injected failure")
        return super().run_chunk(chunk)


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped

    def test_retries_left_counts_total_attempts(self):
        policy = RetryPolicy(attempts=3)
        assert policy.retries_left(1) and policy.retries_left(2)
        assert not policy.retries_left(3)

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.attempts == 1
        assert not NO_RETRY.retries_left(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        policy = RetryPolicy()
        with pytest.raises(ValueError):
            policy.delay(0)

    def test_call_retries_then_reraises(self):
        calls = []

        def flaky():
            calls.append(1)
            raise OSError("down")

        policy = RetryPolicy(attempts=3, base_delay=0.0)
        with pytest.raises(OSError):
            policy.call(flaky, retry_on=(OSError,))
        assert len(calls) == 3

    def test_call_passes_through_non_retryable(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("bug")

        with pytest.raises(ValueError):
            RetryPolicy(attempts=3, base_delay=0.0).call(
                broken, retry_on=(OSError,)
            )
        assert len(calls) == 1


class TestShardLog:
    def test_lines_are_single_writes(self):
        """The interleaving fix: one write() call per logical line."""

        class CallCapture(io.StringIO):
            def __init__(self):
                super().__init__()
                self.writes = []

            def write(self, text):
                self.writes.append(text)
                return super().write(text)

        stream = CallCapture()
        log = ShardLog(stream, verbose=True)
        threads = [
            threading.Thread(
                target=lambda tag=i: [
                    log.line(str(tag), f"event {n}") for n in range(25)
                ]
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(stream.writes) == 100
        for text in stream.writes:
            assert text.startswith("[shard ")
            assert text.endswith("\n")
            assert text.count("\n") == 1  # whole line, exactly one

    def test_quiet_log_is_noop(self):
        stream = io.StringIO()
        log = ShardLog(stream, verbose=False)
        log.line("0", "never seen")
        log.tag("1").line("nor this")
        assert stream.getvalue() == ""

    def test_tagged_view_prefixes(self):
        stream = io.StringIO()
        ShardLog(stream, verbose=True).tag("w1").line("hello")
        assert stream.getvalue().startswith("[shard w1] ")


class TestChunking:
    def test_chunks_cover_jobs_in_order(self):
        jobs, _ = synth_jobs(count=3)
        chunks = make_chunks(jobs, 4)
        flat = [job for chunk in chunks for job in chunk.jobs]
        assert flat == jobs
        assert [chunk.start for chunk in chunks] == list(range(0, len(jobs), 4))
        assert [chunk.index for chunk in chunks] == list(range(len(chunks)))

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            make_chunks([], 0)

    def test_auto_chunk_size_targets_four_per_worker(self):
        coordinator = ShardCoordinator([InlineWorker("a"), InlineWorker("b")])
        assert coordinator._auto_chunk_size(64) == 8
        assert coordinator._auto_chunk_size(3) == 1


class TestJobWireForm:
    def test_roundtrip_preserves_digest(self):
        jobs, _ = synth_jobs(count=1)
        job = jobs[0]
        clone = AnalysisJob.from_dict(job.to_dict())
        assert clone == job
        assert clone.digest == job.digest

    def test_unknown_fields_rejected(self):
        jobs, _ = synth_jobs(count=1)
        wire = jobs[0].to_dict()
        wire["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            AnalysisJob.from_dict(wire)

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ValueError, match="system_json"):
            AnalysisJob.from_dict({"chain_name": "c"})

    def test_result_roundtrip_carries_observability(self):
        jobs, _ = synth_jobs(count=1)
        result = execute_job(jobs[0], cache=None)
        result.cache = {"busy_time": {"hits": 2, "misses": 1}}
        wire = result.to_dict(deterministic=False)
        clone = JobResult.from_dict(wire)
        assert clone.to_dict() == result.to_dict()
        assert clone.cache == result.cache
        assert clone.elapsed == result.elapsed


class TestCoordinatorIdentity:
    def test_local_shards_merge_byte_identical(self, tmp_path):
        jobs, runner = synth_jobs()
        serial = runner.run(jobs).to_json()
        coordinator = ShardCoordinator(
            local_shard_workers(3, cache_dir=str(tmp_path / "cache")),
            chunk_size=2,
            retry=FAST_RETRY,
            own_workers=True,
        )
        assert coordinator.run(jobs).to_json() == serial

    def test_single_shard_identical(self):
        jobs, runner = synth_jobs(count=3)
        serial = runner.run(jobs).to_json()
        sharded = run_sharded(jobs, shards=1, retry=FAST_RETRY)
        assert sharded.to_json() == serial

    def test_chunk_size_one_identical(self):
        jobs, runner = synth_jobs(count=3)
        serial = runner.run(jobs).to_json()
        sharded = run_sharded(jobs, shards=2, chunk_size=1, retry=FAST_RETRY)
        assert sharded.to_json() == serial

    def test_inline_workers_identical(self):
        jobs, runner = synth_jobs(count=4)
        serial = runner.run(jobs).to_json()
        coordinator = ShardCoordinator(
            [InlineWorker("a"), InlineWorker("b")], chunk_size=2
        )
        assert coordinator.run(jobs).to_json() == serial

    def test_empty_job_list(self):
        coordinator = ShardCoordinator([InlineWorker("a")])
        batch = coordinator.run([])
        assert len(batch) == 0
        assert batch.to_dict()["jobs"] == []

    def test_cache_stats_merged_from_workers(self, tmp_path):
        jobs, _ = synth_jobs(count=3)
        batch = run_sharded(
            jobs, shards=2, cache_dir=str(tmp_path / "c"), retry=FAST_RETRY
        )
        assert batch.cache_stats
        assert "busy_time" in batch.cache_stats

    def test_worker_names_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            ShardCoordinator([InlineWorker("a"), InlineWorker("a")])

    def test_needs_a_worker(self):
        with pytest.raises(ValueError):
            ShardCoordinator([])


class TestScheduling:
    def test_straggler_chunk_is_stolen(self):
        jobs, runner = synth_jobs(count=4)
        serial = runner.run(jobs).to_json()
        slow = InlineWorker("slow", delay=0.8, delay_chunks={0})
        fast = InlineWorker("fast")
        coordinator = ShardCoordinator([slow, fast], chunk_size=1)
        start = time.perf_counter()
        batch = coordinator.run(jobs)
        elapsed = time.perf_counter() - start
        assert batch.to_json() == serial
        assert coordinator.last_stats["steals"] >= 1
        # The thief covered chunk 0; the run must not serialize behind
        # the sleeping straggler *plus* the rest of the work.
        assert 0 in fast.ran
        assert elapsed < 10.0

    def test_flaky_worker_chunk_retried(self):
        jobs, runner = synth_jobs(count=3)
        serial = runner.run(jobs).to_json()
        flaky = FlakyWorker("flaky", failures=2)
        coordinator = ShardCoordinator([flaky], chunk_size=2, retry=FAST_RETRY)
        batch = coordinator.run(jobs)
        assert batch.to_json() == serial
        assert coordinator.last_stats["retries"] == 2

    def test_retry_budget_exhaustion_raises(self):
        jobs, _ = synth_jobs(count=2)
        always_down = FlakyWorker("down", failures=10**6)
        coordinator = ShardCoordinator(
            [always_down], chunk_size=2, retry=RetryPolicy(attempts=2, base_delay=0.0)
        )
        with pytest.raises(ShardExecutionError) as info:
            coordinator.run(jobs)
        assert info.value.attempts == 2
        assert isinstance(info.value.cause, WorkerUnavailable)

    def test_non_retryable_failure_is_terminal(self):
        jobs, _ = synth_jobs(count=2)

        class BuggyWorker(InlineWorker):
            def run_chunk(self, chunk):
                raise ValueError("job-level bug")

        coordinator = ShardCoordinator(
            [BuggyWorker("buggy")], chunk_size=2, retry=FAST_RETRY
        )
        with pytest.raises(ShardExecutionError) as info:
            coordinator.run(jobs)
        assert isinstance(info.value.cause, ValueError)
        assert info.value.attempts == 1

    def test_backoff_delays_requeue(self):
        """With a non-zero base delay the retried chunk is not eligible
        immediately — the policy's schedule is respected."""
        jobs, _ = synth_jobs(count=1)
        flaky = FlakyWorker("flaky", failures=1)
        coordinator = ShardCoordinator(
            [flaky],
            chunk_size=len(jobs),
            retry=RetryPolicy(attempts=3, base_delay=0.2, max_delay=0.2),
        )
        start = time.perf_counter()
        coordinator.run(jobs)
        assert time.perf_counter() - start >= 0.2


class TestRemoteWorkers:
    def test_remote_and_mixed_identical(self, tmp_path):
        jobs, runner = synth_jobs(count=4)
        serial = runner.run(jobs).to_json()
        service = AnalysisService(workers=2)
        server = start_server(service)
        try:
            remote_only = ShardCoordinator(
                [RemoteShardWorker(server.url, retry=FAST_RETRY)], chunk_size=3
            )
            assert remote_only.run(jobs).to_json() == serial
            mixed = ShardCoordinator(
                local_shard_workers(1)
                + [RemoteShardWorker(server.url, name="remote")],
                chunk_size=2,
                retry=FAST_RETRY,
                own_workers=True,
            )
            assert mixed.run(jobs).to_json() == serial
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_unreachable_endpoint_is_worker_unavailable(self):
        jobs, _ = synth_jobs(count=1)
        worker = RemoteShardWorker(
            "http://127.0.0.1:1", timeout=0.5, retry=NO_RETRY
        )
        chunks = make_chunks(jobs, len(jobs))
        with pytest.raises(WorkerUnavailable):
            worker.run_chunk(chunks[0])

    def test_malformed_chunk_is_not_retried(self):
        """A 4xx rejection surfaces as a terminal error: re-sending the
        same bad payload cannot succeed."""
        service = AnalysisService()
        server = start_server(service)
        try:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError) as info:
                client._request("POST", "/shard/run", {"jobs": []})
            assert info.value.status == 400
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestServiceClientRetry:
    def test_transport_failures_retried_bounded(self, monkeypatch):
        client = ServiceClient(
            "http://example.invalid",
            retry=RetryPolicy(attempts=3, base_delay=0.0),
        )
        calls = []

        def dying(method, path, payload=None):
            calls.append(path)
            raise ServiceError(0, "connection refused")

        monkeypatch.setattr(client, "_request_once", dying)
        with pytest.raises(ServiceError):
            client.health()
        assert len(calls) == 3

    def test_server_errors_retried_client_errors_not(self, monkeypatch):
        client = ServiceClient(
            "http://example.invalid",
            retry=RetryPolicy(attempts=3, base_delay=0.0),
        )
        calls = []

        def rejecting(method, path, payload=None):
            calls.append(path)
            raise ServiceError(400, "bad request")

        monkeypatch.setattr(client, "_request_once", rejecting)
        with pytest.raises(ServiceError):
            client.health()
        assert len(calls) == 1  # 4xx: no retry

        calls.clear()

        def failing(method, path, payload=None):
            calls.append(path)
            raise ServiceError(500, "boom")

        monkeypatch.setattr(client, "_request_once", failing)
        with pytest.raises(ServiceError):
            client.health()
        assert len(calls) == 3  # 5xx: retried

    def test_default_is_single_attempt(self, monkeypatch):
        client = ServiceClient("http://example.invalid")
        calls = []

        def dying(method, path, payload=None):
            calls.append(path)
            raise ServiceError(0, "down")

        monkeypatch.setattr(client, "_request_once", dying)
        with pytest.raises(ServiceError):
            client.health()
        assert len(calls) == 1

    def test_timeout_validated(self):
        with pytest.raises(ValueError):
            ServiceClient("http://example.invalid", timeout=0.0)

    def test_backoff_slept_between_attempts(self, monkeypatch):
        client = ServiceClient(
            "http://example.invalid",
            retry=RetryPolicy(attempts=3, base_delay=0.05, multiplier=2.0),
        )
        slept = []
        monkeypatch.setattr(
            "repro.service.http.time.sleep", lambda s: slept.append(s)
        )

        def dying(method, path, payload=None):
            raise ServiceError(0, "down")

        monkeypatch.setattr(client, "_request_once", dying)
        with pytest.raises(ServiceError):
            client.health()
        assert slept == pytest.approx([0.05, 0.1])


class TestLocalWorkerLifecycle:
    def test_close_is_idempotent(self):
        worker = LocalShardWorker("w")
        jobs, _ = synth_jobs(count=1)
        chunk = make_chunks(jobs, len(jobs))[0]
        assert worker.run_chunk(chunk)
        worker.close()
        worker.close()

    def test_killed_worker_respawns_for_next_chunk(self):
        jobs, _ = synth_jobs(count=2)
        chunks = make_chunks(jobs, 2)
        worker = LocalShardWorker("w")
        try:
            first = worker.run_chunk(chunks[0])
            assert first
            worker.kill_next_dispatches = 1
            with pytest.raises(WorkerUnavailable):
                worker.run_chunk(chunks[1])
            assert worker.respawns == 1
            # Transparent respawn: the same chunk runs fine afterwards.
            again = worker.run_chunk(chunks[1])
            assert [r.to_dict() for r in again] == [
                r.to_dict() for r in execute_and_collect(chunks[1])
            ]
        finally:
            worker.close()


def execute_and_collect(chunk):
    return [execute_job(job) for job in chunk.jobs]
