"""Property-based tests of the event-model algebra (hypothesis)."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import (ArrivalCurve, PeriodicModel, SporadicBurstModel,
                            SporadicModel)

periodic_models = st.tuples(
    st.integers(min_value=1, max_value=1000),
    st.integers(min_value=0, max_value=500),
).filter(lambda pj: pj[1] < pj[0]).map(
    lambda pj: PeriodicModel(pj[0], jitter=pj[1]))

sporadic_models = st.builds(
    SporadicModel, min_distance=st.integers(min_value=1, max_value=1000))

burst_models = st.builds(
    lambda inner, burst, slack: SporadicBurstModel(
        inner, burst, burst * inner + slack),
    inner=st.integers(min_value=1, max_value=50),
    burst=st.integers(min_value=1, max_value=6),
    slack=st.integers(min_value=0, max_value=500),
)


def staircase_curves(draw):
    increments = draw(st.lists(
        st.integers(min_value=1, max_value=500), min_size=1, max_size=6))
    points = [0, 0]
    for inc in increments:
        points.append(points[-1] + inc)
    tail = draw(st.integers(min_value=1, max_value=500))
    return ArrivalCurve(points, tail_distance=tail)


curve_models = st.composite(staircase_curves)()

any_model = st.one_of(periodic_models, sporadic_models, burst_models,
                      curve_models)


@given(model=any_model, k=st.integers(min_value=0, max_value=64))
def test_delta_minus_monotone_and_nonnegative(model, k):
    assert model.delta_minus(k) >= 0
    assert model.delta_minus(k + 1) >= model.delta_minus(k)


@given(model=any_model, k=st.integers(min_value=0, max_value=32))
def test_delta_minus_below_delta_plus(model, k):
    assert model.delta_minus(k) <= model.delta_plus(k)


@given(model=any_model,
       dt=st.integers(min_value=0, max_value=100_000))
def test_eta_plus_monotone(model, dt):
    assert model.eta_plus(dt) <= model.eta_plus(dt + 1)


@given(model=any_model, k=st.integers(min_value=2, max_value=32))
def test_eta_delta_pseudo_inverse(model, k):
    """Windows shorter than delta_minus(k) hold < k events; slightly
    longer windows hold >= k (when the curve strictly increases)."""
    d = model.delta_minus(k)
    if d > 0:
        assert model.eta_plus(d) <= k - 1
    if model.delta_minus(k + 1) > d:
        assert model.eta_plus(d + 1) >= k


@given(model=any_model,
       dt=st.integers(min_value=1, max_value=10_000))
def test_eta_minus_below_eta_plus(model, dt):
    assert model.eta_minus(dt) <= model.eta_plus(dt)


@settings(max_examples=25)
@given(model=any_model)
def test_validate_accepts_generated_models(model):
    model.validate(up_to=16)


@given(model=st.one_of(periodic_models, sporadic_models, burst_models),
       dt1=st.integers(min_value=0, max_value=5_000),
       dt2=st.integers(min_value=0, max_value=5_000))
def test_eta_plus_subadditive(model, dt1, dt2):
    """eta_plus of the two-parameter models is sub-additive: a long
    window cannot hold more than its split parts combined (one shared
    event allowed at the junction).  Free-form staircase curves need not
    satisfy this — only their super-additive closure does — so they are
    excluded here.
    """
    combined = model.eta_plus(dt1 + dt2)
    parts = model.eta_plus(dt1) + model.eta_plus(dt2)
    assert combined <= parts + 1
