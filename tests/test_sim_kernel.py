"""Kernel parity of the simulation backends.

The numpy event calendar (:mod:`repro.sim.calendar`) promises to be
*bit-identical* to the scalar python event loop: same
``ExecutionSlice`` sequence, same ``InstanceRecord`` values, and
byte-identical exports.  This suite enforces that promise over
hypothesis-randomized feasible systems (synchronous and asynchronous
chains), a hand-built model zoo (periodic with jitter, sporadic,
bursty, explicit arrival curves), the batched activation-stream
builders, the metric helpers, the soak workload and the distributed
simulator.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ChainKind, PeriodicModel, SporadicModel, SystemBuilder
from repro.arrivals import ArrivalCurve, SporadicBurstModel
from repro.distributed import (DistributedChain, DistributedSystem, on,
                               worst_case_distributed_activations)
from repro.distributed.sim import DistributedSimulator
from repro.kernel import HAVE_NUMPY, using_kernel
from repro.model import Task
from repro.sim import (Simulator, busy_window_activation_counts,
                       instances_csv, latency_stats, miss_streaks,
                       random_stream, schedule_csv, trace_json,
                       worst_case_stream)
from repro.synth import (GeneratorConfig, generate_feasible_system,
                         soak_workload)

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="backend parity needs both kernels")

ZOO_MODELS = (
    PeriodicModel(80),
    PeriodicModel(100, jitter=15),
    PeriodicModel(90, jitter=7.5),
    SporadicModel(120),
    SporadicBurstModel(10, burst=3, outer_distance=250),
    ArrivalCurve([0, 0, 10, 200], tail_distance=100),
)


def zoo_system():
    """One chain per arrival-model flavour, alternating chain kinds."""
    builder = SystemBuilder("zoo")
    priority = 3 * len(ZOO_MODELS)
    for index, model in enumerate(ZOO_MODELS):
        kind = ChainKind.SYNCHRONOUS if index % 2 else ChainKind.ASYNCHRONOUS
        builder.chain(f"z{index}", model, deadline=30 + 6 * index, kind=kind)
        for k in range(2):
            builder.task(f"z{index}.t{k}", priority=priority,
                         wcet=4 + 2 * index)
            priority -= 1
    return builder.build()


def run_both(system, activations, horizon):
    with using_kernel("numpy"):
        fast = Simulator(system).run(activations, horizon)
    with using_kernel("python"):
        reference = Simulator(system).run(activations, horizon)
    return fast, reference


def assert_identical(fast, reference):
    assert fast.slices == reference.slices
    assert fast.instances == reference.instances
    assert trace_json(fast) == trace_json(reference)
    assert schedule_csv(fast) == schedule_csv(reference)
    assert instances_csv(fast) == instances_csv(reference)


class TestEngineParity:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_randomized_worst_case_bit_identical(self, seed):
        rng = random.Random(seed)
        system = generate_feasible_system(rng, GeneratorConfig(
            chains=2, overload_chains=1, utilization=0.5,
            overload_utilization=0.05))
        horizon = 3000.0
        activations = {
            chain.name: worst_case_stream(chain.activation, horizon)
            for chain in system.chains
        }
        assert_identical(*run_both(system, activations, horizon))

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_randomized_streams_bit_identical(self, seed):
        rng = random.Random(seed)
        system = generate_feasible_system(rng, GeneratorConfig(
            chains=3, overload_chains=0, utilization=0.6))
        horizon = 3000.0
        activations = {
            chain.name: random_stream(chain.activation, horizon,
                                      random.Random(seed + 1))
            for chain in system.chains
        }
        assert_identical(*run_both(system, activations, horizon))

    def test_model_zoo_bit_identical(self):
        system = zoo_system()
        horizon = 5000.0
        activations = {
            chain.name: worst_case_stream(chain.activation, horizon,
                                          offset=3.7 * index)
            for index, chain in enumerate(system.chains)
        }
        fast, reference = run_both(system, activations, horizon)
        assert_identical(fast, reference)
        # The trace is contended enough to exercise the scalar-stretch
        # path, not just batch retirement.
        assert any(flag for chain in system.chains
                   for flag in reference.miss_flags(chain.name))

    def test_seeded_rerun_is_byte_identical(self):
        system = zoo_system()
        horizon = 4000.0
        activations = {
            chain.name: worst_case_stream(chain.activation, horizon)
            for chain in system.chains
        }
        with using_kernel("numpy"):
            first = trace_json(Simulator(system).run(activations, horizon))
            second = trace_json(Simulator(system).run(activations, horizon))
        assert first == second

    def test_soak_workload_bit_identical(self):
        system, activations, horizon = soak_workload(events=4_000)
        fast, reference = run_both(system, activations, horizon)
        assert_identical(fast, reference)
        for chain in system.chains:
            assert fast.busy_windows(chain.name) == \
                reference.busy_windows(chain.name)


class TestMetricParity:
    def _results(self):
        system, activations, horizon = soak_workload(
            events=3_000, utilization=0.3)
        return system, run_both(system, activations, horizon)

    def test_metric_helpers_agree(self):
        system, (fast, reference) = self._results()
        for chain in system.chains:
            name = chain.name
            assert fast.latencies(name) == reference.latencies(name)
            assert fast.miss_flags(name) == reference.miss_flags(name)
            assert fast.miss_count(name) == reference.miss_count(name)
            assert fast.max_latency(name) == reference.max_latency(name)
            for k in (1, 5, 20):
                assert fast.empirical_dmm(name, k) == \
                    reference.empirical_dmm(name, k)
            assert latency_stats(fast, name) == latency_stats(reference, name)
            assert miss_streaks(fast, name) == miss_streaks(reference, name)
            assert busy_window_activation_counts(fast, name) == \
                busy_window_activation_counts(reference, name)


class TestStreamParity:
    @pytest.mark.parametrize("model", ZOO_MODELS,
                             ids=lambda m: type(m).__name__)
    def test_batched_spacings_match_scalar(self, model):
        ks = list(range(1, 200))
        with using_kernel("numpy"):
            batched_minus = list(model.delta_minus_many(ks))
            batched_plus = list(model.delta_plus_many(ks))
        with using_kernel("python"):
            scalar_minus = list(model.delta_minus_many(ks))
        assert batched_minus == scalar_minus
        assert batched_minus == [model.delta_minus(k) for k in ks]
        assert batched_plus == [model.delta_plus(k) for k in ks]

    @pytest.mark.parametrize("model", ZOO_MODELS,
                             ids=lambda m: type(m).__name__)
    def test_worst_case_stream_identical_across_kernels(self, model):
        with using_kernel("numpy"):
            fast = worst_case_stream(model, 5000.0, offset=1.25)
        with using_kernel("python"):
            reference = worst_case_stream(model, 5000.0, offset=1.25)
        assert fast == reference
        assert all(isinstance(t, float) for t in fast)


class TestDistributedParity:
    def _system(self):
        pipeline = DistributedChain(
            "pipeline",
            [on("cpu0", Task("p.read", priority=2, wcet=10)),
             on("cpu0", Task("p.filter", priority=1, wcet=15)),
             on("cpu1", Task("p.fuse", priority=2, wcet=20)),
             on("cpu1", Task("p.act", priority=1, wcet=10))],
            PeriodicModel(100), deadline=120)
        noise = DistributedChain(
            "noise",
            [on("cpu1", Task("n.irq", priority=3, wcet=25))],
            SporadicModel(400), overload=True)
        local = DistributedChain(
            "local",
            [on("cpu0", Task("l.t", priority=3, wcet=8))],
            PeriodicModel(50), deadline=50,
            kind=ChainKind.ASYNCHRONOUS)
        return DistributedSystem([pipeline, noise, local], name="demo")

    def test_distributed_records_identical(self):
        system = self._system()
        horizon = 4000.0
        streams = worst_case_distributed_activations(system, horizon)
        with using_kernel("numpy"):
            fast = DistributedSimulator(system).run(streams, horizon)
        with using_kernel("python"):
            reference = DistributedSimulator(system).run(streams, horizon)
        assert fast.instances == reference.instances
        for chain in system.chains:
            assert fast.latencies(chain.name) == \
                reference.latencies(chain.name)
            assert fast.empirical_dmm(chain.name, 10) == \
                reference.empirical_dmm(chain.name, 10)
