"""The seeded benchmark corpus: determinism, manifests, verification."""

import json

import pytest

from repro.kernel import HAVE_NUMPY, using_kernel
from repro.model.serialization import canonical_system_json
from repro.synth import CorpusError, CorpusManifest, CorpusSpec, generate_corpus
from repro.synth.corpus import entry_id, entry_relpath, generate_entry

SPEC = CorpusSpec(count=8, seed=42, chains=2, tasks_per_chain=(2, 3))


class TestCorpusSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CorpusSpec(count=0)
        with pytest.raises(ValueError):
            CorpusSpec(count=1, family="martian")
        with pytest.raises(ValueError):
            CorpusSpec(count=1, utilization=(0.8, 0.5))
        with pytest.raises(ValueError):
            CorpusSpec(count=1, utilization=(0.0, 0.5))
        with pytest.raises(ValueError):
            CorpusSpec(count=1, chains=0)
        with pytest.raises(ValueError):
            CorpusSpec(count=1, tasks_per_chain=(3, 2))

    def test_dict_roundtrip(self):
        assert CorpusSpec.from_dict(SPEC.to_dict()) == SPEC

    def test_unknown_fields_rejected(self):
        wire = SPEC.to_dict()
        wire["flavor"] = "vanilla"
        with pytest.raises(ValueError, match="flavor"):
            CorpusSpec.from_dict(wire)

    def test_count_required(self):
        with pytest.raises(ValueError, match="count"):
            CorpusSpec.from_dict({"seed": 1})


class TestEntryGeneration:
    def test_entries_are_deterministic(self):
        first = canonical_system_json(generate_entry(SPEC, 3))
        second = canonical_system_json(generate_entry(SPEC, 3))
        assert first == second

    def test_entries_are_independent(self):
        """Generating entry 5 never requires generating entries 0-4."""
        alone = canonical_system_json(generate_entry(SPEC, 5))
        for index in range(5):
            generate_entry(SPEC, index)
        after_others = canonical_system_json(generate_entry(SPEC, 5))
        assert alone == after_others

    def test_different_indices_differ(self):
        a = canonical_system_json(generate_entry(SPEC, 0))
        b = canonical_system_json(generate_entry(SPEC, 1))
        assert a != b

    def test_seed_changes_population(self):
        other = CorpusSpec(count=8, seed=43, chains=2, tasks_per_chain=(2, 3))
        assert canonical_system_json(
            generate_entry(SPEC, 0)
        ) != canonical_system_json(generate_entry(other, 0))

    def test_entry_named_after_id(self):
        assert generate_entry(SPEC, 7).name == entry_id(7) == "sys-00000007"

    def test_waters_family_generates(self):
        spec = CorpusSpec(count=1, seed=1, family="waters", chains=2)
        system = generate_entry(spec, 0)
        assert system.tasks and system.chains

    def test_grouped_layout(self):
        assert entry_relpath(0).endswith("00000/sys-00000000.json")
        assert entry_relpath(1234).endswith("00001/sys-00001234.json")


class TestGeneratedCorpus:
    def test_same_seed_same_digest(self, tmp_path):
        first = generate_corpus(SPEC, tmp_path / "a")
        second = generate_corpus(SPEC, tmp_path / "b")
        assert first.manifest_digest == second.manifest_digest

    @pytest.mark.skipif(not HAVE_NUMPY, reason="only one kernel available")
    def test_digest_kernel_independent(self, tmp_path):
        digests = {}
        for kernel in ("python", "numpy"):
            with using_kernel(kernel):
                manifest = generate_corpus(SPEC, tmp_path / kernel)
                digests[kernel] = manifest.manifest_digest
        assert len(set(digests.values())) == 1, digests

    def test_load_roundtrip(self, tmp_path):
        generated = generate_corpus(SPEC, tmp_path / "c")
        loaded = CorpusManifest.load(tmp_path / "c")
        assert loaded.spec == SPEC
        assert loaded.count == SPEC.count
        assert loaded.manifest_digest == generated.manifest_digest

    def test_systems_stream_in_order(self, tmp_path):
        generate_corpus(SPEC, tmp_path / "c")
        manifest = CorpusManifest.load(tmp_path / "c")
        systems = list(manifest.systems())
        assert [s.name for s in systems] == [entry_id(i) for i in range(SPEC.count)]
        limited = list(manifest.systems(limit=3))
        assert [s.name for s in limited] == [entry_id(i) for i in range(3)]

    def test_verify_clean_corpus(self, tmp_path):
        generate_corpus(SPEC, tmp_path / "c")
        manifest = CorpusManifest.load(tmp_path / "c")
        assert manifest.verify() == SPEC.count
        assert manifest.verify(limit=2) == 2

    def test_refuses_to_overwrite(self, tmp_path):
        generate_corpus(SPEC, tmp_path / "c")
        with pytest.raises(CorpusError, match="already exists"):
            generate_corpus(SPEC, tmp_path / "c")

    def test_load_missing_corpus(self, tmp_path):
        with pytest.raises(CorpusError, match="no corpus manifest"):
            CorpusManifest.load(tmp_path / "nowhere")


class TestCorpusVerifyCatchesDamage:
    def test_tampered_system_file(self, tmp_path):
        generate_corpus(SPEC, tmp_path / "c")
        manifest = CorpusManifest.load(tmp_path / "c")
        victim = manifest.paths(limit=1)[0]
        with open(victim, "a", encoding="utf-8") as handle:
            handle.write(" ")
        with pytest.raises(CorpusError, match="digest mismatch"):
            manifest.verify()

    def test_missing_system_file(self, tmp_path):
        import os

        generate_corpus(SPEC, tmp_path / "c")
        manifest = CorpusManifest.load(tmp_path / "c")
        os.remove(manifest.paths(limit=1)[0])
        with pytest.raises(CorpusError, match="missing system file"):
            manifest.verify()

    def test_tampered_manifest_lines(self, tmp_path):
        generate_corpus(SPEC, tmp_path / "c")
        manifest = CorpusManifest.load(tmp_path / "c")
        with open(manifest.lines_path, "a", encoding="utf-8") as handle:
            handle.write("\n")
        with pytest.raises(CorpusError, match="manifest digest mismatch"):
            manifest.verify()

    def test_dropped_manifest_line(self, tmp_path):
        generate_corpus(SPEC, tmp_path / "c")
        manifest = CorpusManifest.load(tmp_path / "c")
        with open(manifest.lines_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(manifest.lines_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
        with pytest.raises(CorpusError, match="entries"):
            manifest.verify()

    def test_corrupt_header(self, tmp_path):
        generate_corpus(SPEC, tmp_path / "c")
        header = tmp_path / "c" / "manifest.json"
        header.write_text("{not json", encoding="utf-8")
        with pytest.raises(CorpusError, match="corrupt corpus header"):
            CorpusManifest.load(tmp_path / "c")

    def test_unsupported_format(self, tmp_path):
        generate_corpus(SPEC, tmp_path / "c")
        header = tmp_path / "c" / "manifest.json"
        data = json.loads(header.read_text(encoding="utf-8"))
        data["format"] = 99
        header.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(CorpusError, match="unsupported corpus format"):
            CorpusManifest.load(tmp_path / "c")
