"""Failure-injection tests: every guard rail must actually trip.

Feeds each subsystem deliberately broken inputs and asserts the failure
is caught loudly (specific exception, useful message) rather than
producing silently wrong bounds.
"""

import math

import pytest

from repro import (BusyWindowDivergence, PeriodicModel, SporadicModel,
                   SystemBuilder, analyze_latency)
from repro.arrivals import ArrivalCurve, EventModel
from repro.arrivals.algebra import check_duality
from repro.ilp import IntegerProgram, solve_lp
from repro.sim import Simulator


class BrokenModel(EventModel):
    """An event model violating delta monotonicity."""

    def delta_minus(self, k):
        if k <= 1:
            return 0
        return 100 if k % 2 else 50  # non-monotone

    def delta_plus(self, k):
        return math.inf if k > 1 else 0


class TestArrivalGuards:
    def test_validate_catches_non_monotone_delta(self):
        with pytest.raises(ValueError):
            BrokenModel().validate()

    def test_validate_catches_nonzero_origin(self):
        class ShiftedModel(SporadicModel):
            def delta_minus(self, k):
                return super().delta_minus(k) + 1

        with pytest.raises(ValueError):
            ShiftedModel(10).validate()

    def test_validate_catches_min_above_max(self):
        class CrossedModel(PeriodicModel):
            def delta_plus(self, k):
                return super().delta_minus(k) / 2 if k > 1 else 0

        with pytest.raises(ValueError):
            CrossedModel(10).validate()

    def test_duality_check_catches_undercounting_eta(self):
        class Undercount(PeriodicModel):
            def eta_plus(self, dt):
                return max(0, super().eta_plus(dt) - 1)

        with pytest.raises(AssertionError):
            check_duality(Undercount(10))

    def test_eta_plus_overflow_guard(self):
        curve = ArrivalCurve([0, 0, 1], tail_distance=1)
        with pytest.raises(OverflowError):
            # 10^8 events needed for this window: beyond MAX_EVENTS.
            EventModel.eta_plus(curve, 10**8)


class TestAnalysisGuards:
    def _hot_system(self):
        return (
            SystemBuilder("hot")
            .chain("victim", PeriodicModel(100), deadline=100)
            .task("v.t", priority=1, wcet=1)
            .chain("storm", SporadicModel(10))
            .task("s.t", priority=2, wcet=20)
            .build()
        )

    def test_divergence_is_loud_not_wrong(self):
        system = self._hot_system()
        with pytest.raises(BusyWindowDivergence) as info:
            analyze_latency(system, system["victim"])
        assert "victim" in str(info.value)

    def test_max_q_cap_trips(self):
        # A lone 0.9-utilization chain closes its busy window at q=1
        # (B(1)=9 <= delta(2)=10), so trip the cap with a denser pair.
        dense = (
            SystemBuilder("dense")
            .chain("c", PeriodicModel(10), deadline=10)
            .task("c.t", priority=1, wcet=9)
            .chain("d", PeriodicModel(100), deadline=100)
            .task("d.t", priority=2, wcet=9)
            .build()
        )
        with pytest.raises(BusyWindowDivergence):
            analyze_latency(dense, dense["c"], max_q=1)


class TestIlpGuards:
    def test_branch_bound_node_budget(self, monkeypatch):
        import repro.ilp.branch_bound as bb
        monkeypatch.setattr(bb, "MAX_NODES", 1)
        program = IntegerProgram(
            objective=[1, 1, 1],
            rows=[[1, 1, 0], [0, 1, 1], [1, 0, 1]],
            rhs=[1, 1, 1])
        with pytest.raises(RuntimeError):
            bb.solve_branch_bound(program)

    def test_simplex_handles_contradictory_rows(self):
        # x <= 2 and -x <= -5 (x >= 5): infeasible, not a crash.
        result = solve_lp([1], [[1], [-1]], [2, -5])
        assert result.status == "infeasible"

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError):
            solve_lp([1, 1], [[1]], [1])
        with pytest.raises(ValueError):
            IntegerProgram(objective=[1], rows=[[1, 2]], rhs=[1])

    def test_rhs_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IntegerProgram(objective=[1], rows=[[1]], rhs=[1, 2])


class TestSimulatorGuards:
    def _system(self):
        return (
            SystemBuilder("s")
            .chain("c", PeriodicModel(10), deadline=10)
            .task("c.t", priority=1, wcet=1)
            .build()
        )

    def test_unsorted_activations_rejected(self):
        simulator = Simulator(self._system())
        with pytest.raises(ValueError):
            simulator.run({"c": [5.0, 1.0]}, 100)

    def test_unknown_chain_activations_ignored(self):
        simulator = Simulator(self._system())
        result = simulator.run({"c": [0.0], "ghost": [0.0]}, 100)
        assert result.latencies("c") == [1]

    def test_activations_beyond_horizon_dropped(self):
        simulator = Simulator(self._system())
        result = simulator.run({"c": [0.0, 1_000.0]}, 100)
        assert len(result.instances["c"]) == 1


class TestModelGuards:
    def test_priority_collision_message_names_both_tasks(self):
        with pytest.raises(ValueError) as info:
            (SystemBuilder("x")
             .chain("a", PeriodicModel(10))
             .task("a.t", priority=1, wcet=1)
             .chain("b", PeriodicModel(10))
             .task("b.t", priority=1, wcet=1)
             .build())
        message = str(info.value)
        assert "a.t" in message and "b.t" in message


@pytest.mark.slow
class TestFuzzerSmoke:
    """Opt-in: a short fuzzer sweep as a test (run with -m slow)."""

    def test_fuzzer_clean_on_smoke_seeds(self):
        import importlib.util
        import pathlib
        spec = importlib.util.spec_from_file_location(
            "fuzz_soundness",
            pathlib.Path(__file__).parent.parent / "tools"
            / "fuzz_soundness.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main(iterations=5, base_seed=42) == 0
