"""Failure-injection tests: every guard rail must actually trip.

Feeds each subsystem deliberately broken inputs and asserts the failure
is caught loudly (specific exception, useful message) rather than
producing silently wrong bounds.
"""

import math
import random

import pytest

from repro import (BusyWindowDivergence, PeriodicModel, SporadicModel,
                   SystemBuilder, analyze_latency)
from repro.arrivals import ArrivalCurve, EventModel
from repro.arrivals.algebra import check_duality
from repro.ilp import IntegerProgram, solve_lp
from repro.sim import Simulator


class BrokenModel(EventModel):
    """An event model violating delta monotonicity."""

    def delta_minus(self, k):
        if k <= 1:
            return 0
        return 100 if k % 2 else 50  # non-monotone

    def delta_plus(self, k):
        return math.inf if k > 1 else 0


class TestArrivalGuards:
    def test_validate_catches_non_monotone_delta(self):
        with pytest.raises(ValueError):
            BrokenModel().validate()

    def test_validate_catches_nonzero_origin(self):
        class ShiftedModel(SporadicModel):
            def delta_minus(self, k):
                return super().delta_minus(k) + 1

        with pytest.raises(ValueError):
            ShiftedModel(10).validate()

    def test_validate_catches_min_above_max(self):
        class CrossedModel(PeriodicModel):
            def delta_plus(self, k):
                return super().delta_minus(k) / 2 if k > 1 else 0

        with pytest.raises(ValueError):
            CrossedModel(10).validate()

    def test_duality_check_catches_undercounting_eta(self):
        class Undercount(PeriodicModel):
            def eta_plus(self, dt):
                return max(0, super().eta_plus(dt) - 1)

        with pytest.raises(AssertionError):
            check_duality(Undercount(10))

    def test_eta_plus_overflow_guard(self):
        curve = ArrivalCurve([0, 0, 1], tail_distance=1)
        with pytest.raises(OverflowError):
            # 10^8 events needed for this window: beyond MAX_EVENTS.
            EventModel.eta_plus(curve, 10**8)


class TestAnalysisGuards:
    def _hot_system(self):
        return (
            SystemBuilder("hot")
            .chain("victim", PeriodicModel(100), deadline=100)
            .task("v.t", priority=1, wcet=1)
            .chain("storm", SporadicModel(10))
            .task("s.t", priority=2, wcet=20)
            .build()
        )

    def test_divergence_is_loud_not_wrong(self):
        system = self._hot_system()
        with pytest.raises(BusyWindowDivergence) as info:
            analyze_latency(system, system["victim"])
        assert "victim" in str(info.value)

    def test_max_q_cap_trips(self):
        # A lone 0.9-utilization chain closes its busy window at q=1
        # (B(1)=9 <= delta(2)=10), so trip the cap with a denser pair.
        dense = (
            SystemBuilder("dense")
            .chain("c", PeriodicModel(10), deadline=10)
            .task("c.t", priority=1, wcet=9)
            .chain("d", PeriodicModel(100), deadline=100)
            .task("d.t", priority=2, wcet=9)
            .build()
        )
        with pytest.raises(BusyWindowDivergence):
            analyze_latency(dense, dense["c"], max_q=1)


class TestIlpGuards:
    def test_branch_bound_node_budget(self, monkeypatch):
        import repro.ilp.branch_bound as bb
        monkeypatch.setattr(bb, "MAX_NODES", 1)
        program = IntegerProgram(
            objective=[1, 1, 1],
            rows=[[1, 1, 0], [0, 1, 1], [1, 0, 1]],
            rhs=[1, 1, 1])
        with pytest.raises(RuntimeError):
            bb.solve_branch_bound(program)

    def test_simplex_handles_contradictory_rows(self):
        # x <= 2 and -x <= -5 (x >= 5): infeasible, not a crash.
        result = solve_lp([1], [[1], [-1]], [2, -5])
        assert result.status == "infeasible"

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError):
            solve_lp([1, 1], [[1]], [1])
        with pytest.raises(ValueError):
            IntegerProgram(objective=[1], rows=[[1, 2]], rhs=[1])

    def test_rhs_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IntegerProgram(objective=[1], rows=[[1]], rhs=[1, 2])


class TestSimulatorGuards:
    def _system(self):
        return (
            SystemBuilder("s")
            .chain("c", PeriodicModel(10), deadline=10)
            .task("c.t", priority=1, wcet=1)
            .build()
        )

    def test_unsorted_activations_rejected(self):
        simulator = Simulator(self._system())
        with pytest.raises(ValueError):
            simulator.run({"c": [5.0, 1.0]}, 100)

    def test_unknown_chain_activations_ignored(self):
        simulator = Simulator(self._system())
        result = simulator.run({"c": [0.0], "ghost": [0.0]}, 100)
        assert result.latencies("c") == [1]

    def test_activations_beyond_horizon_dropped(self):
        simulator = Simulator(self._system())
        result = simulator.run({"c": [0.0, 1_000.0]}, 100)
        assert len(result.instances["c"]) == 1


class TestModelGuards:
    def test_priority_collision_message_names_both_tasks(self):
        with pytest.raises(ValueError) as info:
            (SystemBuilder("x")
             .chain("a", PeriodicModel(10))
             .task("a.t", priority=1, wcet=1)
             .chain("b", PeriodicModel(10))
             .task("b.t", priority=1, wcet=1)
             .build())
        message = str(info.value)
        assert "a.t" in message and "b.t" in message


class TestShardFailureRecovery:
    """Shard workers must die loudly and recover losslessly: the
    coordinator retries killed workers' chunks, persistent-cache
    corruption is dropped (and accounted), and the merged export stays
    byte-identical to a serial run through every injected failure."""

    def _jobs(self, count=6):
        from repro.runner import BatchRunner
        from repro.synth import GeneratorConfig, generate_feasible_system

        rng = random.Random(1719)
        config = GeneratorConfig(chains=2, overload_chains=1, utilization=0.55)
        systems = [generate_feasible_system(rng, config) for _ in range(count)]
        runner = BatchRunner(workers=1, ks=(1, 10))
        return runner.jobs_for(systems), runner

    @staticmethod
    def _corrupt_entries(root):
        """Damage every persistent-cache entry file, cycling through
        truncation-to-empty, mid-file truncation, and a bit flip."""
        damaged = 0
        for i, path in enumerate(sorted(root.glob("*/??/*.bin"))):
            data = path.read_bytes()
            if i % 3 == 0:
                path.write_bytes(b"")
            elif i % 3 == 1:
                path.write_bytes(data[:-7])
            else:
                path.write_bytes(data[:-1] + bytes([data[-1] ^ 0x40]))
            damaged += 1
        return damaged

    def test_worker_killed_mid_run_is_retried(self):
        from repro.runner import RetryPolicy, ShardCoordinator, local_shard_workers

        jobs, runner = self._jobs()
        serial = runner.run(jobs).to_json()
        workers = local_shard_workers(2, use_cache=True)
        # Kill worker 0's process right after its next dispatch: the
        # chunk is lost mid-run, deterministically.
        workers[0].kill_next_dispatches = 1
        coordinator = ShardCoordinator(
            workers,
            chunk_size=2,
            retry=RetryPolicy(attempts=3, base_delay=0.0),
            own_workers=True,
        )
        batch = coordinator.run(jobs)
        stats = coordinator.last_stats
        assert stats["respawns"] >= 1
        # The lost chunk was re-run — via requeue or a steal that was
        # already covering it when the death was noticed.
        assert stats["retries"] + stats["steals"] >= 1
        assert batch.to_json() == serial

    def test_repeated_kills_exhaust_retry_budget(self):
        from repro.runner import (RetryPolicy, ShardCoordinator,
                                  ShardExecutionError, WorkerUnavailable,
                                  local_shard_workers)

        jobs, _ = self._jobs(count=2)
        workers = local_shard_workers(1, use_cache=False)
        workers[0].kill_next_dispatches = 10
        coordinator = ShardCoordinator(
            workers,
            chunk_size=len(jobs),
            retry=RetryPolicy(attempts=2, base_delay=0.0),
            own_workers=True,
        )
        with pytest.raises(ShardExecutionError) as info:
            coordinator.run(jobs)
        assert info.value.attempts == 2
        assert isinstance(info.value.cause, WorkerUnavailable)

    def test_corrupt_shared_cache_under_concurrent_shards(self, tmp_path):
        from repro.runner import RetryPolicy, run_sharded

        jobs, runner = self._jobs()
        serial = runner.run(jobs).to_json()
        cache_root = tmp_path / "shared-cache"
        warm = run_sharded(
            jobs,
            shards=2,
            cache_dir=str(cache_root),
            retry=RetryPolicy(attempts=2, base_delay=0.0),
        )
        assert warm.to_json() == serial
        damaged = self._corrupt_entries(cache_root)
        assert damaged > 0
        cold = run_sharded(
            jobs,
            shards=2,
            cache_dir=str(cache_root),
            retry=RetryPolicy(attempts=2, base_delay=0.0),
        )
        # Corruption is swallowed but never silent: the dropped-entry
        # count rides back from the worker processes, stays balanced
        # against the number of damaged files, and the recomputed
        # export is still byte-identical.
        # (run_sharded exposes no coordinator, so re-check via the
        # explicit coordinator below; the export identity is the
        # user-facing guarantee.)
        assert cold.to_json() == serial

    def test_corrupt_dropped_accounting_balances(self, tmp_path):
        from repro.runner import (RetryPolicy, ShardCoordinator,
                                  local_shard_workers)

        jobs, runner = self._jobs()
        serial = runner.run(jobs).to_json()
        cache_root = tmp_path / "shared-cache"
        warm = ShardCoordinator(
            local_shard_workers(2, cache_dir=str(cache_root)),
            chunk_size=2,
            retry=RetryPolicy(attempts=2, base_delay=0.0),
            own_workers=True,
        )
        assert warm.run(jobs).to_json() == serial
        assert warm.last_stats["corrupt_dropped"] == 0
        damaged = self._corrupt_entries(cache_root)
        assert damaged > 0
        cold = ShardCoordinator(
            local_shard_workers(2, cache_dir=str(cache_root)),
            chunk_size=2,
            retry=RetryPolicy(attempts=2, base_delay=0.0),
            own_workers=True,
        )
        batch = cold.run(jobs)
        dropped = cold.last_stats["corrupt_dropped"]
        # Each of the two shard processes may independently read (and
        # count) the same damaged file before either unlinks it, so the
        # balance bound is per-shard, not global.
        assert 0 < dropped <= damaged * 2
        assert batch.to_json() == serial


@pytest.mark.slow
class TestFuzzerSmoke:
    """Opt-in: a short fuzzer sweep as a test (run with -m slow)."""

    def test_fuzzer_clean_on_smoke_seeds(self):
        import importlib.util
        import pathlib
        spec = importlib.util.spec_from_file_location(
            "fuzz_soundness",
            pathlib.Path(__file__).parent.parent / "tools"
            / "fuzz_soundness.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main(iterations=5, base_seed=42) == 0
