"""Unit tests for the periodic event model."""

import math

import pytest

from repro.arrivals import PeriodicModel


class TestConstruction:
    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            PeriodicModel(0)
        with pytest.raises(ValueError):
            PeriodicModel(-5)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            PeriodicModel(10, jitter=-1)

    def test_rejects_min_distance_above_period(self):
        with pytest.raises(ValueError):
            PeriodicModel(10, min_distance=11)

    def test_rejects_jitter_ge_period_without_min_distance(self):
        with pytest.raises(ValueError):
            PeriodicModel(10, jitter=10)

    def test_jitter_ge_period_with_min_distance_allowed(self):
        model = PeriodicModel(10, jitter=25, min_distance=1)
        assert model.eta_plus(1) == 1

    def test_equality_and_hash(self):
        assert PeriodicModel(10) == PeriodicModel(10)
        assert PeriodicModel(10) != PeriodicModel(10, jitter=1)
        assert hash(PeriodicModel(10, 2, 1)) == hash(PeriodicModel(10, 2, 1))


class TestStrictlyPeriodic:
    def test_delta_minus_is_linear(self):
        model = PeriodicModel(200)
        assert [model.delta_minus(k) for k in range(6)] == [
            0, 0, 200, 400, 600, 800]

    def test_delta_plus_equals_delta_minus(self):
        model = PeriodicModel(200)
        for k in range(8):
            assert model.delta_plus(k) == model.delta_minus(k)

    def test_eta_plus_is_ceil(self):
        model = PeriodicModel(200)
        assert model.eta_plus(0) == 0
        assert model.eta_plus(1) == 1
        assert model.eta_plus(200) == 1
        assert model.eta_plus(201) == 2
        assert model.eta_plus(400) == 2
        assert model.eta_plus(401) == 3

    def test_eta_minus_is_floor(self):
        model = PeriodicModel(200)
        assert model.eta_minus(199) == 0
        assert model.eta_minus(200) == 1
        assert model.eta_minus(999) == 4

    def test_eta_plus_of_negative_window_is_zero(self):
        assert PeriodicModel(200).eta_plus(-3) == 0

    def test_eta_plus_of_infinite_window_raises(self):
        with pytest.raises(OverflowError):
            PeriodicModel(200).eta_plus(math.inf)

    def test_rate(self):
        assert PeriodicModel(200).rate() == pytest.approx(1 / 200)

    def test_validate_passes(self):
        PeriodicModel(200).validate()


class TestWithJitter:
    def test_delta_minus_shrinks_by_jitter(self):
        model = PeriodicModel(100, jitter=30)
        assert model.delta_minus(2) == 70
        assert model.delta_minus(3) == 170

    def test_delta_minus_never_negative(self):
        model = PeriodicModel(100, jitter=90)
        assert model.delta_minus(2) == 10

    def test_delta_plus_grows_by_jitter(self):
        model = PeriodicModel(100, jitter=30)
        assert model.delta_plus(2) == 130

    def test_eta_plus_includes_jitter(self):
        model = PeriodicModel(100, jitter=30)
        # ceil((dt + 30) / 100)
        assert model.eta_plus(1) == 1
        assert model.eta_plus(70) == 1
        assert model.eta_plus(71) == 2
        assert model.eta_plus(171) == 3

    def test_min_distance_caps_burst(self):
        model = PeriodicModel(100, jitter=250, min_distance=10)
        # Without the cap eta_plus(5) would be ceil(255/100) = 3; the
        # minimum distance only allows 1 event per started 10 units.
        assert model.eta_plus(5) == 1
        assert model.eta_plus(15) == 2

    def test_delta_minus_respects_min_distance_floor(self):
        model = PeriodicModel(100, jitter=250, min_distance=10)
        assert model.delta_minus(2) == 10
        assert model.delta_minus(3) == 20
        # At k = 4 the periodic term takes over: max(300 - 250, 30).
        assert model.delta_minus(4) == 50

    def test_validate_passes_with_jitter(self):
        PeriodicModel(100, jitter=30, min_distance=5).validate()


class TestDuality:
    @pytest.mark.parametrize("period,jitter,dmin", [
        (200, 0, 0), (100, 30, 0), (100, 90, 0), (100, 250, 10), (7, 3, 2),
    ])
    def test_eta_delta_duality(self, period, jitter, dmin):
        from repro.arrivals.algebra import check_duality
        check_duality(PeriodicModel(period, jitter, dmin))

    def test_generic_eta_agrees_with_closed_form(self):
        from repro.arrivals.base import EventModel
        model = PeriodicModel(100, jitter=30)
        for dt in (1, 50, 70, 71, 100, 170, 171, 999):
            assert EventModel.eta_plus(model, dt) == model.eta_plus(dt)
