"""Structural invariants of the simulator, checked on random systems:

* slices never overlap (one processor);
* the schedule is work-conserving: the processor cannot idle while a
  released, unblocked job exists;
* per-task FIFO: slices of one task are ordered by instance;
* SPP: whenever a job runs, no ready higher-priority job exists —
  verified indirectly: a preemption only happens at an activation or a
  completion boundary;
* every activated instance eventually finishes with non-negative
  latency, and its task finish times are ordered along the chain.
"""

import random

import pytest

from repro.sim import Simulator, randomized_activations, \
    worst_case_activations
from repro.synth import GeneratorConfig, generate_feasible_system


def _simulate(seed: int, randomize: bool):
    rng = random.Random(seed)
    system = generate_feasible_system(rng, GeneratorConfig(
        chains=3, overload_chains=1, utilization=0.6,
        tasks_per_chain=(2, 5),
        asynchronous_fraction=0.5 if seed % 2 else 0.0))
    horizon = 5000
    if randomize:
        streams = randomized_activations(system, horizon, rng, 0.4)
    else:
        streams = worst_case_activations(system, horizon)
    return system, Simulator(system).run(streams, horizon)


SEEDS = list(range(6))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("randomize", [False, True])
def test_slices_disjoint_and_ordered(seed, randomize):
    _, result = _simulate(seed, randomize)
    slices = sorted(result.slices, key=lambda s: s.start)
    for left, right in zip(slices, slices[1:]):
        assert left.end <= right.start + 1e-9


@pytest.mark.parametrize("seed", SEEDS)
def test_work_conservation(seed):
    """During any gap between slices, no instance may be pending with a
    runnable job.  We check the weaker but fully observable variant: a
    gap implies every pending instance at that time is blocked by chain
    semantics (sync backlog), which cannot happen for the instance that
    opened the busy period — so no instance may span a gap entirely."""
    system, result = _simulate(seed, False)
    slices = sorted(result.slices, key=lambda s: s.start)
    gaps = []
    for left, right in zip(slices, slices[1:]):
        if right.start - left.end > 1e-9:
            gaps.append((left.end, right.start))
    for chain in system.chains:
        for record in result.instances[chain.name]:
            if record.finish is None:
                continue
            for gap_start, gap_end in gaps:
                inside = (record.activation <= gap_start + 1e-9
                          and record.finish >= gap_end - 1e-9)
                assert not inside, (
                    f"{chain.name}#{record.index} pending through idle "
                    f"gap [{gap_start}, {gap_end}]")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("randomize", [False, True])
def test_per_task_fifo(seed, randomize):
    _, result = _simulate(seed, randomize)
    last_done = {}
    for piece in sorted(result.slices, key=lambda s: s.start):
        key = piece.task
        if key in last_done:
            assert piece.instance >= last_done[key] - 0, (
                f"task {key}: instance {piece.instance} ran after "
                f"instance {last_done[key]} finished later")
    # Stronger check via finish times.
    for chain_records in result.instances.values():
        by_task = {}
        for record in chain_records:
            for task, finish in record.task_finishes.items():
                by_task.setdefault(task, []).append(
                    (record.index, finish))
        for task, entries in by_task.items():
            ordered = sorted(entries)
            finishes = [finish for _, finish in ordered]
            assert finishes == sorted(finishes), (
                f"task {task} finished out of instance order")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("randomize", [False, True])
def test_instances_complete_in_chain_order(seed, randomize):
    system, result = _simulate(seed, randomize)
    for chain in system.chains:
        for record in result.instances[chain.name]:
            if record.finish is None:
                continue
            assert record.latency >= 0
            finishes = [record.task_finishes[t.name]
                        for t in chain.tasks
                        if t.name in record.task_finishes]
            assert finishes == sorted(finishes)
            assert record.finish == finishes[-1]


@pytest.mark.parametrize("seed", SEEDS)
def test_total_execution_matches_demand(seed):
    """Every finished instance received exactly its tasks' execution
    time on the processor."""
    system, result = _simulate(seed, False)
    executed = {}
    for piece in result.slices:
        key = (piece.chain, piece.instance)
        executed[key] = executed.get(key, 0.0) + (piece.end - piece.start)
    for chain in system.chains:
        demand = sum(t.wcet for t in chain.tasks)
        for record in result.instances[chain.name]:
            if record.finish is None:
                continue
            key = (chain.name, record.index)
            assert executed.get(key, 0.0) == pytest.approx(demand), (
                f"{key} executed {executed.get(key)} != demand {demand}")


@pytest.mark.parametrize("seed", SEEDS)
def test_sync_chains_serialize(seed):
    system, result = _simulate(seed, False)
    for chain in system.chains:
        if not chain.is_synchronous:
            continue
        records = [r for r in result.instances[chain.name]
                   if r.finish is not None]
        for earlier, later in zip(records, records[1:]):
            assert later.start >= earlier.finish - 1e-9, (
                f"sync chain {chain.name}: instance {later.index} "
                "started before its predecessor finished")
