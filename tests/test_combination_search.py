"""Differential tests for the lazy dominance-pruned combination
pipeline and the warm-started fixed points.

The contracts under test:

* the pruned frontier search classifies exactly the set the exhaustive
  pipeline classifies — same counts, same unschedulable set, same
  inclusion-minimal representatives, same DMM curves — on randomized
  systems, for serial and parallel runners, with and without a
  persistent cache directory;
* the streaming iterators enumerate the same multiset as the classic
  materializing enumeration (cost-ordered for the best-first variant);
* warm-started Kleene iterations land on the bit-identical busy-time
  breakdown (``iterations`` is the one diagnostic allowed to differ).
"""

import math
import random

import pytest

from repro import PeriodicModel, SporadicModel, SystemBuilder, analyze_twca
from repro.analysis import (
    busy_time,
    count_combinations,
    enumerate_combinations,
    iter_combinations,
    iter_combinations_by_cost,
    overload_active_segments,
    search_combinations,
)
from repro.runner import BatchRunner, PersistentAnalysisCache
from repro.synth import GeneratorConfig, generate_feasible_system

KS = (1, 3, 5, 10)


def random_system(seed, overload_chains=2):
    rng = random.Random(seed)
    return generate_feasible_system(
        rng,
        GeneratorConfig(
            chains=2,
            overload_chains=overload_chains,
            utilization=0.5,
            overload_utilization=0.06,
            tasks_per_chain=(2, 4),
        ),
    )


def combo_key_sets(combos):
    return {frozenset(c.keys) for c in combos}


class TestPrunedMatchesExhaustive:
    """The acceptance differential: both modes classify identically."""

    @pytest.mark.parametrize("seed", range(0, 40, 4))
    def test_counts_sets_and_dmm_curves(self, seed):
        system = random_system(seed, overload_chains=1 + seed % 3)
        for chain in system.typical_chains:
            if not chain.has_deadline:
                continue
            pruned = analyze_twca(system, chain)
            eager = analyze_twca(system, chain, enumeration="exhaustive")
            assert pruned.status is eager.status
            assert pruned.combination_count == eager.combination_count
            assert pruned.unschedulable_count == eager.unschedulable_count
            assert combo_key_sets(pruned.unschedulable) == combo_key_sets(
                eager.unschedulable
            )
            assert combo_key_sets(pruned.minimal_unschedulable()) == combo_key_sets(
                eager.minimal_unschedulable()
            )
            assert pruned.dmm_curve(KS) == eager.dmm_curve(KS)

    @pytest.mark.parametrize("seed", (3, 11, 27))
    def test_eq5_only_mode_agrees_too(self, seed):
        system = random_system(seed)
        for chain in system.typical_chains:
            if not chain.has_deadline:
                continue
            pruned = analyze_twca(system, chain, exact_criterion=False)
            eager = analyze_twca(
                system, chain, exact_criterion=False, enumeration="exhaustive"
            )
            assert pruned.unschedulable_count == eager.unschedulable_count
            assert pruned.dmm_curve(KS) == eager.dmm_curve(KS)

    def test_case_study_counts_survive_the_rewrite(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        assert result.combination_count == 3
        assert result.unschedulable_count == 1
        assert result.minimal_unschedulable()[0].cost == 50
        # Lazy materialization serves the historic list views.
        assert len(result.combinations) == 3
        assert len(result.unschedulable) == 1

    def test_rejects_unknown_enumeration_mode(self, figure4):
        with pytest.raises(ValueError):
            analyze_twca(figure4, figure4["sigma_c"], enumeration="psychic")

    def test_results_stay_picklable(self, figure4):
        """The signature-verdict closure must not break pickling of
        weakly-hard results, and the lazy views must survive the round
        trip (the verdict is rebuilt from retained state, so the
        unschedulable list is identical, not silently empty)."""
        import pickle

        result = analyze_twca(figure4, figure4["sigma_c"])
        clone = pickle.loads(pickle.dumps(result))
        assert clone.combination_count == result.combination_count
        assert clone.unschedulable_count == result.unschedulable_count
        assert combo_key_sets(clone.minimal_unschedulable()) == combo_key_sets(
            result.minimal_unschedulable()
        )
        assert clone.dmm_curve(KS) == result.dmm_curve(KS)
        assert combo_key_sets(clone.unschedulable) == combo_key_sets(
            result.unschedulable
        )
        assert len(clone.unschedulable) == clone.unschedulable_count

    @pytest.mark.parametrize("seed", (1, 9, 23))
    def test_pickled_lazy_views_match_originals(self, seed):
        import pickle

        system = random_system(seed)
        for chain in system.typical_chains:
            if not chain.has_deadline:
                continue
            result = analyze_twca(system, chain)
            clone = pickle.loads(pickle.dumps(result))
            assert combo_key_sets(clone.unschedulable) == combo_key_sets(
                result.unschedulable
            )
            assert clone.dmm_curve(KS) == result.dmm_curve(KS)


class TestSearchAgainstBruteForce:
    """search_combinations vs literal filtering, under synthetic
    monotone predicates over randomized segment structures."""

    def _threshold_predicate(self, weights, threshold):
        def flagged(signature):
            return (
                sum(cost * weights.get(name, 1.0) for name, cost in signature)
                > threshold
            )

        return flagged

    @pytest.mark.parametrize("seed", range(12))
    def test_counts_and_minimal_sets_match(self, seed):
        system = random_system(seed, overload_chains=1 + seed % 4)
        target = system.typical_chains[0]
        segments = overload_active_segments(system, target)
        combos = enumerate_combinations(segments)
        rng = random.Random(seed * 101)
        weights = {name: rng.choice([0.5, 1.0, 2.0]) for name in segments}
        costs = sorted(
            sum(w * weights.get(n, 1.0) for n, w in c.signature) for c in combos
        )
        for threshold in (-1.0, 0.0, *costs[:: max(1, len(costs) // 5)], 1e9):
            flagged = self._threshold_predicate(weights, threshold)
            result = search_combinations(segments, flagged)
            expected = [c for c in combos if flagged(c.signature)]
            assert result.total == len(combos)
            assert result.unschedulable == len(expected)
            expected_sets = combo_key_sets(expected)
            expected_minimal = {
                keys
                for keys in expected_sets
                if not any(other < keys for other in expected_sets)
            }
            assert combo_key_sets(result.minimal) == expected_minimal

    def test_everything_flagged_yields_singleton_minimals(self):
        system = random_system(5, overload_chains=3)
        target = system.typical_chains[0]
        segments = overload_active_segments(system, target)
        result = search_combinations(segments, lambda signature: True)
        assert result.unschedulable == result.total == count_combinations(segments)
        assert all(len(combo) == 1 for combo in result.minimal)

    def test_nothing_flagged_is_cheap(self):
        system = random_system(7, overload_chains=4)
        target = system.typical_chains[0]
        segments = overload_active_segments(system, target)
        result = search_combinations(segments, lambda signature: False)
        assert result.unschedulable == 0
        assert result.minimal == []
        # One cone evaluation settles the whole lattice.
        assert result.nodes == 1


class TestStreamingIterators:
    @pytest.mark.parametrize("seed", (0, 4, 9))
    def test_lazy_iterator_matches_eager_enumeration(self, seed):
        system = random_system(seed, overload_chains=2)
        target = system.typical_chains[0]
        segments = overload_active_segments(system, target)
        eager = enumerate_combinations(segments)
        lazy = list(iter_combinations(segments))
        assert [c.keys for c in lazy] == [c.keys for c in eager]
        assert count_combinations(segments) == len(eager)

    @pytest.mark.parametrize("seed", (1, 6, 13))
    def test_best_first_stream_is_cost_ordered_and_complete(self, seed):
        system = random_system(seed, overload_chains=3)
        target = system.typical_chains[0]
        segments = overload_active_segments(system, target)
        streamed = list(iter_combinations_by_cost(segments))
        costs = [c.cost for c in streamed]
        assert costs == sorted(costs)
        assert combo_key_sets(streamed) == combo_key_sets(
            enumerate_combinations(segments)
        )
        assert len(streamed) == count_combinations(segments)

    def test_streams_are_lazy(self, figure4):
        segments = overload_active_segments(figure4, figure4["sigma_c"])
        first = next(iter_combinations_by_cost(segments))
        assert first.cost == min(
            c.cost for c in enumerate_combinations(segments)
        )


class TestRunnerDifferential:
    """Pruned and exhaustive pipelines export byte-identically through
    the batch runner, serial and parallel, cached and uncached."""

    def _systems(self):
        return [random_system(seed) for seed in (201, 202, 203)]

    def test_exports_identical_across_modes(self, tmp_path):
        systems = self._systems()
        reference = (
            BatchRunner(workers=1, use_cache=False, ks=KS)
            .run_systems(systems)
            .to_json()
        )
        for workers in (1, 2):
            for cache_dir in (None, tmp_path / f"cache-{workers}"):
                for enumeration in ("pruned", "exhaustive"):
                    runner = BatchRunner(
                        workers=workers,
                        ks=KS,
                        enumeration=enumeration,
                        cache_dir=None if cache_dir is None else str(cache_dir),
                    )
                    exported = runner.run_systems(systems).to_json()
                    assert exported == reference, (workers, cache_dir, enumeration)

    def test_modes_do_not_share_job_results(self, tmp_path):
        """The jobs category keys on the enumeration mode, so a warm
        pruned run never serves an exhaustive request (identical
        payloads, but the key must be honest about parameters)."""
        systems = self._systems()[:1]
        cache_dir = tmp_path / "cache"
        pruned = BatchRunner(workers=1, ks=KS, cache_dir=str(cache_dir))
        pruned.run_systems(systems)
        eager = BatchRunner(
            workers=1, ks=KS, cache_dir=str(cache_dir), enumeration="exhaustive"
        )
        batch = eager.run_systems(systems)
        assert batch.job_hits == 0


class TestWarmStartedFixedPoints:
    """Warm starts change iteration counts, never results."""

    def _breakdown_fields(self, breakdown):
        return (
            breakdown.q,
            breakdown.base,
            breakdown.self_interference,
            breakdown.arbitrary,
            breakdown.deferred_async,
            breakdown.deferred_sync,
            breakdown.combination,
            breakdown.total,
        )

    @pytest.mark.parametrize("seed", range(0, 30, 3))
    def test_seeded_iteration_bit_identical(self, seed):
        system = random_system(seed)
        for chain in system.chains:
            previous = None
            for q in range(1, 5):
                cold = busy_time(system, chain, q)
                if previous is not None:
                    warm = busy_time(system, chain, q, seed=previous)
                    assert self._breakdown_fields(warm) == self._breakdown_fields(
                        cold
                    )
                    assert warm.iterations <= cold.iterations
                # Seeding with the fixed point itself converges in one
                # evaluation and still reproduces the exact breakdown.
                pinned = busy_time(system, chain, q, seed=cold.total)
                assert self._breakdown_fields(pinned) == self._breakdown_fields(cold)
                assert pinned.iterations == 1
                previous = cold.total

    @pytest.mark.parametrize("seed", (2, 8, 21))
    def test_cache_warm_start_probes_are_counter_neutral(self, tmp_path, seed):
        system = random_system(seed)
        chain = system.typical_chains[0]
        cold = busy_time(system, chain, 3)
        cache = PersistentAnalysisCache(tmp_path / "cache")
        with cache.activate():
            for q in (1, 2, 3):
                busy_time(system, chain, q, include_overload=False)
            warm = busy_time(system, chain, 3)
        assert self._breakdown_fields(warm) == self._breakdown_fields(cold)
        stats = cache.stats()["busy_time"]
        # Four fixed points computed, four misses — the q-1 and typical
        # warm-start probes peek without touching the counters.
        assert stats.misses == 4
        assert stats.hits == 0

    def test_full_latency_unaffected_by_warm_starts(self, figure4):
        from repro.analysis import analyze_latency

        result = analyze_latency(figure4, figure4["sigma_c"])
        assert result.wcl == 331
        assert result.critical_q == 1


class TestHandBuiltFrontier:
    """A hand-checkable many-chain system: the pruned search must agree
    with exhaustive enumeration while evaluating far fewer members."""

    def _system(self, overload_count=10):
        builder = SystemBuilder("frontier")
        builder.chain("victim", PeriodicModel(200), deadline=185)
        builder.task("victim.a", priority=2, wcet=40)
        builder.chain("noise", PeriodicModel(400), deadline=400)
        builder.task("noise.a", priority=3, wcet=30)
        priority = 10
        for index in range(overload_count):
            builder.chain(
                f"isr{index:02d}", SporadicModel(6000 + 100 * index), overload=True
            )
            builder.task(f"isr{index:02d}.t", priority=priority, wcet=9 + index)
            priority += 1
        return builder.build()

    def test_agreement_and_pruning_on_1k_combination_system(self):
        system = self._system(10)
        chain = system["victim"]
        pruned = analyze_twca(system, chain)
        eager = analyze_twca(
            system, chain, enumeration="exhaustive", max_combinations=2**11
        )
        assert pruned.combination_count == 2**10 - 1
        assert pruned.combination_count == eager.combination_count
        assert pruned.unschedulable_count == eager.unschedulable_count
        assert combo_key_sets(pruned.minimal_unschedulable()) == combo_key_sets(
            eager.minimal_unschedulable()
        )
        assert pruned.dmm_curve(KS) == eager.dmm_curve(KS)
        # The point of the frontier search: membership is settled by
        # signature checks, not per-member tests.
        assert pruned.search_checks < pruned.combination_count / 4

    def test_pruned_mode_ignores_max_combinations(self):
        system = self._system(12)
        chain = system["victim"]
        with pytest.raises(ValueError):
            analyze_twca(
                system, chain, enumeration="exhaustive", max_combinations=100
            )
        result = analyze_twca(system, chain, max_combinations=100)
        assert result.combination_count == 2**12 - 1
        assert math.isfinite(result.min_slack)
