"""Property-based tests of analysis-level invariants over random
systems."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import GuaranteeStatus, analyze_latency, analyze_twca
from repro.analysis import busy_time
from repro.synth import GeneratorConfig, generate_feasible_system


def small_system(seed: int):
    rng = random.Random(seed)
    return generate_feasible_system(rng, GeneratorConfig(
        chains=2, overload_chains=1, utilization=0.5,
        overload_utilization=0.05, tasks_per_chain=(2, 4)))


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_busy_time_superlinear_in_q(seed):
    """B(q+1) - B(q) >= C_b: each extra activation costs at least the
    chain's own demand."""
    system = small_system(seed)
    chain = system.typical_chains[0]
    previous = busy_time(system, chain, 1).total
    for q in range(2, 5):
        current = busy_time(system, chain, q).total
        assert current - previous >= chain.total_wcet - 1e-9
        previous = current


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_typical_bound_below_full(seed):
    system = small_system(seed)
    for chain in system.typical_chains:
        full = analyze_latency(system, chain, include_overload=True)
        typical = analyze_latency(system, chain, include_overload=False)
        assert typical.wcl <= full.wcl + 1e-9


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_dmm_monotone_and_clamped(seed):
    system = small_system(seed)
    chain = system.typical_chains[0]
    result = analyze_twca(system, chain)
    previous = 0
    for k in range(1, 15):
        value = result.dmm(k)
        assert 0 <= value <= k
        assert value >= previous
        previous = value


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_schedulable_iff_zero_dmm(seed):
    system = small_system(seed)
    for chain in system.typical_chains:
        result = analyze_twca(system, chain)
        if result.status is GuaranteeStatus.SCHEDULABLE:
            assert all(result.dmm(k) == 0 for k in (1, 5, 10))
        elif result.status is GuaranteeStatus.WEAKLY_HARD:
            assert result.wcl > chain.deadline


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), factor=st.sampled_from([2, 4, 8]))
def test_scaling_overload_period_never_hurts(seed, factor):
    """Making the overload rarer (scaling its inter-arrival up) never
    increases the dmm."""
    from repro.arrivals.algebra import scaled
    from repro.model import System

    system = small_system(seed)
    chain = system.typical_chains[0]
    base = analyze_twca(system, chain)

    rarer_chains = []
    for c in system.chains:
        if c.overload:
            rarer_chains.append(
                c.with_activation(scaled(c.activation, factor)))
        else:
            rarer_chains.append(c)
    rarer = System(rarer_chains, name="rarer",
                   allow_shared_priorities=True)
    relaxed = analyze_twca(rarer, rarer[chain.name])
    for k in (1, 5, 10):
        assert relaxed.dmm(k) <= base.dmm(k)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_wcl_bounded_below_by_isolation(seed):
    """The latency bound is at least the chain's isolated execution."""
    system = small_system(seed)
    for chain in system.chains:
        result = analyze_latency(system, chain)
        assert result.wcl >= chain.total_wcet - 1e-9


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_omega_monotone_in_k(seed):
    system = small_system(seed)
    chain = system.typical_chains[0]
    result = analyze_twca(system, chain)
    if result.status is not GuaranteeStatus.WEAKLY_HARD:
        return
    for overload in result.active_segments:
        previous = 0
        for k in (1, 2, 5, 10, 20):
            omega = result.omega(overload, k)
            assert omega >= previous
            previous = omega
