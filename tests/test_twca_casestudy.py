"""End-to-end TWCA on the case study: Experiment 1 and Table II."""


import pytest

from repro import GuaranteeStatus, analyze_twca
from repro.ilp import scipy_available
from repro.analysis import NotAnalyzable, analyze_all


class TestExperiment1:
    """The in-text facts of Sec. VI, Experiment 1."""

    @pytest.fixture(scope="class")
    def result_c(self, figure4):
        return analyze_twca(figure4, figure4["sigma_c"])

    def test_sigma_c_is_weakly_hard(self, result_c):
        assert result_c.status is GuaranteeStatus.WEAKLY_HARD

    def test_sigma_d_is_schedulable_needs_no_dmm(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_d"])
        assert result.status is GuaranteeStatus.SCHEDULABLE
        assert result.dmm(10) == 0

    def test_three_combinations(self, result_c):
        # c1 = {(a1,a2)}, c2 = {(b1,b2,b3)}, c3 = both.
        assert len(result_c.combinations) == 3
        costs = sorted(c.cost for c in result_c.combinations)
        assert costs == [20, 30, 50]

    def test_only_c3_unschedulable(self, result_c):
        assert len(result_c.unschedulable) == 1
        combo = result_c.unschedulable[0]
        assert combo.cost == 50
        chains = {seg.chain_name for seg in combo.segments}
        assert chains == {"sigma_a", "sigma_b"}

    def test_slack_is_34(self, result_c):
        # S* = min_q (delta(q) + D - L(q)) = 200 - 166 = 34 at q=1.
        assert result_c.min_slack == 34

    def test_n_b_is_1(self, result_c):
        assert result_c.n_b == 1

    def test_active_segments_whole_chains(self, result_c):
        # Overload chains have one active segment each (tail priority of
        # sigma_c is 1, below all overload priorities).
        assert [s.task_names for s in
                result_c.active_segments["sigma_a"]] == [
            ("tau_a^1", "tau_a^2")]
        assert [s.task_names for s in
                result_c.active_segments["sigma_b"]] == [
            ("tau_b^1", "tau_b^2", "tau_b^3")]


class TestTableII:
    def test_printed_parameters_dmm3(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        assert result.dmm(3) == 3

    def test_printed_parameters_staircase(self, figure4):
        """With the printed sporadic models the staircase transitions
        land at k=7 and k=10 (documented deviation, DESIGN.md §4)."""
        result = analyze_twca(figure4, figure4["sigma_c"])
        assert result.dmm(6) == 3
        assert result.dmm(7) == 4
        assert result.dmm(9) == 4
        assert result.dmm(10) == 5

    def test_calibrated_reproduces_table2_exactly(self, figure4_calibrated):
        result = analyze_twca(figure4_calibrated,
                              figure4_calibrated["sigma_c"])
        assert result.dmm(3) == 3
        assert result.dmm(76) == 4
        assert result.dmm(250) == 5

    def test_calibrated_transition_points(self, figure4_calibrated):
        result = analyze_twca(figure4_calibrated,
                              figure4_calibrated["sigma_c"])
        assert result.dmm(75) == 3
        assert result.dmm(249) == 4

    def test_omega_lemma4(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        # Omega = eta_plus(delta_plus(3) + 331) + 1 = eta(731) + 1 = 3.
        assert result.omega("sigma_a", 3) == 3
        assert result.omega("sigma_b", 3) == 3

    def test_dmm_monotone_in_k(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        values = [result.dmm(k) for k in range(1, 40)]
        assert values == sorted(values)

    def test_dmm_never_exceeds_k(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        for k in (1, 2, 3, 5, 8, 13):
            assert result.dmm(k) <= k

    def test_dmm_curve_helper(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        assert result.dmm_curve([3, 7]) == {3: 3, 7: 4}


class TestGuards:
    def test_overload_chain_not_analyzable(self, figure4):
        with pytest.raises(NotAnalyzable):
            analyze_twca(figure4, figure4["sigma_a"])

    def test_infinite_deadline_not_analyzable(self, figure1):
        # figure1 chains have deadlines; build one without.
        from repro import PeriodicModel, SystemBuilder
        system = (
            SystemBuilder("nodl")
            .chain("c", PeriodicModel(10))
            .task("c.t", priority=1, wcet=1)
            .build()
        )
        with pytest.raises(NotAnalyzable):
            analyze_twca(system, system["c"])

    def test_analyze_all_covers_typical_chains(self, figure4):
        results = analyze_all(figure4)
        assert set(results) == {"sigma_c", "sigma_d"}

    def test_backends_agree(self, figure4):
        backends = ["branch_bound", "dp"]
        if scipy_available():
            backends.append("scipy")
        for backend in backends:
            result = analyze_twca(figure4, figure4["sigma_c"],
                                  backend=backend)
            assert result.dmm(3) == 3
            assert result.dmm(10) == 5


class TestNoGuaranteePath:
    def test_typically_unschedulable_system(self):
        from repro import PeriodicModel, SporadicModel, SystemBuilder
        system = (
            SystemBuilder("doomed")
            .chain("victim", PeriodicModel(100), deadline=20)
            .task("victim.a", priority=1, wcet=30)
            .chain("isr", SporadicModel(1000), overload=True)
            .task("isr.t", priority=2, wcet=5)
            .build()
        )
        result = analyze_twca(system, system["victim"])
        assert result.status is GuaranteeStatus.NO_GUARANTEE
        assert result.dmm(10) == 10  # vacuous

    def test_vacuous_dmm_equals_k(self):
        from repro import PeriodicModel, SporadicModel, SystemBuilder
        system = (
            SystemBuilder("doomed")
            .chain("victim", PeriodicModel(100), deadline=20)
            .task("victim.a", priority=1, wcet=30)
            .chain("isr", SporadicModel(1000), overload=True)
            .task("isr.t", priority=2, wcet=5)
            .build()
        )
        result = analyze_twca(system, system["victim"])
        for k in (1, 5, 100):
            assert result.dmm(k) == k


class TestExplain:
    def test_explain_contains_key_facts(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        text = result.explain((3, 10))
        assert "weakly-hard" in text
        assert "WCL = 331" in text
        assert "dmm(3) = 3" in text
        assert "Omega" in text

    def test_explain_schedulable(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_d"])
        text = result.explain((10,))
        assert "schedulable" in text
        assert "dmm(10) = 0" in text
