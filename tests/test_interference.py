"""Tests for the deferred / arbitrarily-interfering classification
(Def. 2), pinned against the paper's two examples."""

from repro.analysis import (deferred_chains, interfering_chains,
                            is_arbitrarily_interfering, is_deferred)


class TestFigure1:
    def test_sigma_a_deferred_by_sigma_b(self, figure1):
        # tau_a^4 (prio 2) and tau_a^6 (prio 1) are below all of
        # sigma_b's priorities (min 3).
        assert is_deferred(figure1["sigma_a"], figure1["sigma_b"])

    def test_sigma_b_deferred_by_sigma_a(self, figure1):
        # tau_b^2 has priority 3 > 1 = min(sigma_a)?  No: deferral needs
        # a task *below* all of sigma_a; sigma_a's minimum is 1 and no
        # sigma_b task is below 1.
        assert is_arbitrarily_interfering(figure1["sigma_b"],
                                          figure1["sigma_a"])


class TestFigure4:
    """The in-text Experiment 1 facts."""

    def test_overload_chains_arbitrarily_interfere_with_sigma_c(
            self, figure4):
        # "Both chains sigma_a and sigma_b arbitrarily interfere with
        # sigma_c because neither has a task with a priority lower
        # than 1."
        sigma_c = figure4["sigma_c"]
        assert is_arbitrarily_interfering(figure4["sigma_a"], sigma_c)
        assert is_arbitrarily_interfering(figure4["sigma_b"], sigma_c)

    def test_sigma_d_arbitrarily_interferes_with_sigma_c(self, figure4):
        assert is_arbitrarily_interfering(figure4["sigma_d"],
                                          figure4["sigma_c"])

    def test_sigma_c_deferred_by_sigma_d(self, figure4):
        # tau_c^3 has priority 1 < 2 = min(sigma_d).
        assert is_deferred(figure4["sigma_c"], figure4["sigma_d"])

    def test_partition_helpers(self, figure4):
        sigma_d = figure4["sigma_d"]
        deferred = {c.name for c in deferred_chains(figure4, sigma_d)}
        arbitrary = {c.name for c in interfering_chains(figure4, sigma_d)}
        assert deferred == {"sigma_c"}
        assert arbitrary == {"sigma_a", "sigma_b"}
        assert "sigma_d" not in deferred | arbitrary

    def test_classification_is_exhaustive_and_disjoint(self, figure4):
        for target in figure4.chains:
            deferred = {c.name for c in deferred_chains(figure4, target)}
            arbitrary = {c.name
                         for c in interfering_chains(figure4, target)}
            assert deferred & arbitrary == set()
            assert deferred | arbitrary == {
                c.name for c in figure4.others(target)}
