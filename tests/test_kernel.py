"""Kernel parity: numpy and pure-Python numeric kernels are bit-identical.

The contracts under test:

* ``eta_plus_many`` equals the scalar ``eta_plus`` pointwise, and both
  equal the generic galloping pseudo-inverse search, for every shipped
  event model under either kernel (hypothesis property test);
* the batched multi-q Kleene iteration (``busy_times``, the block-mode
  latency scan, the multi-q Def. 10 exact check) lands on the
  bit-identical fixed points and verdicts as the scalar reference, on
  randomized systems, serial and parallel, cold and cached;
* the numpy simplex tableau pivots exactly like the pure-Python one on
  randomized LPs: same statuses, same objectives, same values, same
  pivot counts, for cold solves and warm rhs-only re-solve schedules;
* deterministic batch exports are byte-identical under both kernels.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PeriodicModel, SporadicModel, SystemBuilder, analyze_twca
from repro.analysis import analyze_latency, busy_time, criterion_loads
from repro.analysis.busy_window import busy_times
from repro.analysis.combinations import (
    iter_combinations,
    overload_active_segments,
)
from repro.analysis.exceptions import BusyWindowDivergence
from repro.analysis.twca import _build_verdict
from repro.arrivals import ArrivalCurve, SporadicBurstModel, StaircaseKernel
from repro.arrivals.algebra import scaled, tightest
from repro.ilp.simplex import IncrementalLp, solve_lp
from repro.kernel import (
    HAVE_NUMPY,
    KernelUnavailable,
    kernel_name,
    set_kernel,
    using_kernel,
)
from repro.runner import AnalysisCache, BatchRunner
from repro.synth import GeneratorConfig, generate_feasible_system

KERNELS = ("python", "numpy") if HAVE_NUMPY else ("python",)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def random_system(seed, overload_chains=2):
    rng = random.Random(seed)
    return generate_feasible_system(
        rng,
        GeneratorConfig(
            chains=2,
            overload_chains=overload_chains,
            utilization=0.5,
            overload_utilization=0.06,
            tasks_per_chain=(2, 4),
        ),
    )


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------
class TestKernelSwitch:
    def test_resolves_to_a_concrete_kernel(self):
        assert kernel_name() in ("numpy", "python")

    def test_using_kernel_restores(self):
        before = kernel_name()
        with using_kernel("python") as active:
            assert active == "python"
            assert kernel_name() == "python"
        assert kernel_name() == before

    def test_set_kernel_rejects_junk(self):
        with pytest.raises(ValueError):
            set_kernel("fortran")

    def test_auto_resolves_by_availability(self):
        with using_kernel("auto") as active:
            assert active == ("numpy" if HAVE_NUMPY else "python")

    @pytest.mark.skipif(HAVE_NUMPY, reason="needs a numpy-free interpreter")
    def test_numpy_request_fails_loud_without_numpy(self):
        with pytest.raises(KernelUnavailable):
            set_kernel("numpy")


# ----------------------------------------------------------------------
# Staircase kernel: eta_plus_many == scalar eta_plus pointwise
# ----------------------------------------------------------------------
periodic_models = (
    st.tuples(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=50),
    )
    .filter(lambda pjd: pjd[1] < pjd[0] and pjd[2] <= pjd[0])
    .map(lambda pjd: PeriodicModel(pjd[0], jitter=pjd[1], min_distance=pjd[2]))
)

sporadic_models = st.builds(
    SporadicModel, min_distance=st.integers(min_value=1, max_value=1000)
)

burst_models = st.builds(
    lambda inner, burst, slack: SporadicBurstModel(
        inner, burst, burst * inner + slack
    ),
    inner=st.integers(min_value=1, max_value=50),
    burst=st.integers(min_value=1, max_value=6),
    slack=st.integers(min_value=0, max_value=500),
)


@st.composite
def curve_models(draw):
    increments = draw(
        st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=6)
    )
    points = [0, 0]
    for inc in increments:
        points.append(points[-1] + inc)
    tail = draw(st.integers(min_value=1, max_value=500))
    return ArrivalCurve(points, tail_distance=tail)


@st.composite
def algebra_models(draw):
    base = draw(st.one_of(periodic_models, sporadic_models, burst_models))
    if draw(st.booleans()):
        return scaled(base, draw(st.integers(min_value=1, max_value=5)))
    other = draw(st.one_of(periodic_models, sporadic_models))
    return tightest(base, other)


any_model = st.one_of(
    periodic_models, sporadic_models, burst_models, curve_models(), algebra_models()
)

windows = st.lists(
    st.one_of(
        st.integers(min_value=-5, max_value=100_000),
        st.floats(
            min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False
        ),
    ),
    min_size=1,
    max_size=20,
)


class TestEtaParity:
    @settings(max_examples=120, deadline=None)
    @given(model=any_model, dts=windows)
    def test_batched_equals_scalar_equals_search(self, model, dts):
        reference = [
            model._eta_plus_search(dt) if dt > 0 else 0 for dt in dts
        ]
        for kernel in KERNELS:
            with using_kernel(kernel):
                assert [model.eta_plus(dt) for dt in dts] == reference
                assert [int(v) for v in model.eta_plus_many(dts)] == reference

    @settings(max_examples=60, deadline=None)
    @given(model=any_model, k=st.integers(min_value=2, max_value=48))
    def test_kernel_delta_matches_model_delta(self, model, k):
        kernel = model.staircase_kernel()
        if kernel is None:
            return
        assert kernel.delta(k) == model.delta_minus(k)

    def test_float_jittered_periodic_keeps_the_pseudo_inverse_contract(self):
        """Non-integral jittered periodic models must not compile a
        kernel: the tail's ``breaks[L-1] + c*P`` associates differently
        from ``(k-1)*P - J`` and an ulp drift across a boundary
        *under*-counts an interfering activation (unsound)."""
        model = PeriodicModel(0.1, 0.31000000000000005, 0.010000000000000002)
        assert model.staircase_kernel() is None
        dt = 38.790000000000006
        assert model.delta_minus(392) < dt  # 392 events fit strictly below
        for kernel in KERNELS:
            with using_kernel(kernel):
                assert model.eta_plus(dt) == 392
                assert [int(v) for v in model.eta_plus_many([dt])] == [392]

    def test_zero_jitter_float_periodic_still_compiles(self):
        model = PeriodicModel(0.30000000000000004)
        kernel = model.staircase_kernel()
        assert kernel is not None  # exact: tail is float-identical
        for k in range(2, 64):
            assert kernel.delta(k) == model.delta_minus(k)

    def test_float_scaled_models_keep_the_pseudo_inverse_contract(self):
        """Fractional scale factors must not compile a composed kernel:
        kernel tail arithmetic associates differently from the scaled
        model's own ``delta_minus`` and can drift an ulp across a
        staircase boundary.  The model falls back to the authoritative
        galloping search instead."""
        model = scaled(SporadicModel(9.48126033806018), 1.214729314448362)
        assert model.staircase_kernel() is None
        for k in range(2, 40):
            boundary = model.delta_minus(k)
            for kernel in KERNELS:
                with using_kernel(kernel):
                    assert model.eta_plus(boundary) <= k - 1
                    assert model.eta_plus(boundary + 1) >= k
                    assert [int(v) for v in model.eta_plus_many([boundary])] == [
                        model.eta_plus(boundary)
                    ]

    def test_integer_scaled_models_compose_exactly(self):
        model = scaled(SporadicModel(700), 3)
        kernel = model.staircase_kernel()
        assert kernel is not None
        for k in range(2, 64):
            assert kernel.delta(k) == model.delta_minus(k)

    def test_too_dense_curve_overflows_like_before(self):
        curve = ArrivalCurve([0, 0])  # zero tail: infinitely dense
        with pytest.raises(OverflowError):
            curve.eta_plus(1)
        for kernel in KERNELS:
            with using_kernel(kernel):
                with pytest.raises(OverflowError):
                    curve.eta_plus_many([1.0])

    def test_kernel_validates_breaks(self):
        with pytest.raises(ValueError):
            StaircaseKernel([0, 1], 1, 1.0)  # delta_minus(1) must be 0
        with pytest.raises(ValueError):
            StaircaseKernel([0, 0, 5, 3], 1, 1.0)  # not monotone
        with pytest.raises(ValueError):
            StaircaseKernel([0, 0], 5, 1.0)  # tail period exceeds prefix


# ----------------------------------------------------------------------
# Batched multi-q Kleene bit-identity
# ----------------------------------------------------------------------
def strip(breakdown):
    """Every breakdown field except the ``iterations`` diagnostic."""
    return (
        breakdown.q,
        breakdown.base,
        breakdown.self_interference,
        breakdown.arbitrary,
        breakdown.deferred_async,
        breakdown.deferred_sync,
        breakdown.combination,
        breakdown.total,
    )


class TestBatchedKleene:
    @pytest.mark.parametrize("seed", range(0, 30, 3))
    def test_busy_times_matches_scalar(self, seed):
        system = random_system(seed, overload_chains=1 + seed % 3)
        for chain in system.typical_chains:
            qs = (1, 2, 3, 5)
            try:
                scalar = {q: busy_time(system, chain, q) for q in qs}
            except BusyWindowDivergence:
                continue
            per_kernel = {}
            for kernel in KERNELS:
                with using_kernel(kernel):
                    batched = busy_times(system, chain, qs)
                per_kernel[kernel] = {q: strip(b) for q, b in batched.items()}
                assert per_kernel[kernel] == {
                    q: strip(b) for q, b in scalar.items()
                }
            assert len(set(map(str, per_kernel.values()))) == 1

    @pytest.mark.parametrize("seed", (1, 7, 13))
    def test_busy_times_under_cache_matches_and_hits(self, seed):
        system = random_system(seed)
        chain = next(iter(system.typical_chains))
        qs = (1, 2, 4)
        cold = {q: busy_time(system, chain, q) for q in qs}
        cache = AnalysisCache()
        with cache.activate():
            first = busy_times(system, chain, qs)
            second = busy_times(system, chain, qs)
        assert {q: strip(b) for q, b in first.items()} == {
            q: strip(b) for q, b in cold.items()
        }
        # The second batch is served entirely from the cache — the
        # batched path stores under exactly the scalar keys.
        assert {q: strip(b) for q, b in second.items()} == {
            q: strip(b) for q, b in first.items()
        }
        assert cache.stats()["busy_time"].hits >= len(qs)

    @pytest.mark.parametrize("seed", range(0, 24, 5))
    def test_latency_scan_matches_across_kernels(self, seed):
        system = random_system(seed, overload_chains=1 + seed % 2)
        for chain in system.typical_chains:
            outcomes = {}
            for kernel in KERNELS:
                with using_kernel(kernel):
                    try:
                        result = analyze_latency(system, chain)
                        outcomes[kernel] = (
                            result.max_queue,
                            result.wcl,
                            result.critical_q,
                            tuple(result.latencies),
                            tuple(strip(b) for b in result.busy_times),
                        )
                    except BusyWindowDivergence:
                        outcomes[kernel] = "diverged"
            values = list(outcomes.values())
            assert all(v == values[0] for v in values)

    @pytest.mark.parametrize("seed", range(0, 36, 4))
    def test_multi_q_exact_check_matches_scalar_reference(self, seed):
        system = random_system(seed, overload_chains=1 + seed % 3)
        for chain in system.typical_chains:
            try:
                full = analyze_latency(system, chain, include_overload=True)
            except BusyWindowDivergence:
                continue
            if full.wcl <= chain.deadline:
                continue  # schedulable: no Def. 10 stage
            deltas = {
                q: chain.activation.delta_minus(q)
                for q in range(1, full.max_queue + 1)
            }
            loads = criterion_loads(system, chain, tuple(deltas))
            segments = overload_active_segments(system, chain)
            multi = _build_verdict(
                system, chain, deltas, loads, segments,
                exact_criterion=True, multi_q=True,
            )
            scalar = _build_verdict(
                system, chain, deltas, loads, segments,
                exact_criterion=True, multi_q=False,
            )
            for combo in iter_combinations(segments):
                assert multi(combo.signature) == scalar(combo.signature)

    @pytest.mark.parametrize("seed", (2, 9, 21))
    def test_analyze_twca_identical_across_kernels(self, seed):
        system = random_system(seed, overload_chains=2)
        for chain in system.typical_chains:
            per_kernel = []
            for kernel in KERNELS:
                with using_kernel(kernel):
                    result = analyze_twca(system, chain)
                    per_kernel.append(
                        (
                            result.status,
                            result.n_b,
                            result.min_slack,
                            result.combination_count,
                            result.unschedulable_count,
                            result.dmm_curve((1, 3, 10, 50)),
                        )
                    )
            assert all(entry == per_kernel[0] for entry in per_kernel)


# ----------------------------------------------------------------------
# Simplex tableau parity
# ----------------------------------------------------------------------
def random_lp(rng, num_vars, num_rows):
    objective = [rng.randint(0, 5) + rng.choice([0.0, rng.random()]) for _ in range(num_vars)]
    rows = [
        [rng.choice([0.0, 0.0, 1.0, 2.0, rng.random() * 3]) for _ in range(num_vars)]
        for _ in range(num_rows)
    ]
    rhs = [rng.choice([rng.randint(-2, 10), rng.random() * 8]) for _ in range(num_rows)]
    return objective, rows, rhs


@needs_numpy
class TestTableauParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_cold_solves_pivot_identically(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            objective, rows, rhs = random_lp(
                rng, rng.randint(1, 12), rng.randint(1, 10)
            )
            outcomes = {}
            for kernel in KERNELS:
                with using_kernel(kernel):
                    result = solve_lp(objective, rows, rhs)
                    outcomes[kernel] = (
                        result.status,
                        result.objective,
                        result.values,
                        result.pivots,
                    )
            assert outcomes["python"] == outcomes["numpy"]

    @pytest.mark.parametrize("seed", range(8))
    def test_warm_rhs_schedules_pivot_identically(self, seed):
        rng = random.Random(1000 + seed)
        objective, rows, _ = random_lp(rng, rng.randint(1, 10), rng.randint(1, 8))
        schedule = [
            [float(rng.randint(0, 8)) for _ in rows] for _ in range(15)
        ]
        outcomes = {}
        for kernel in KERNELS:
            with using_kernel(kernel):
                lp = IncrementalLp(objective, rows)
                runs = [
                    (r.status, r.objective, r.values, r.pivots)
                    for r in (lp.solve(rhs) for rhs in schedule)
                ]
                outcomes[kernel] = (runs, lp.warm_solves, lp.cold_solves)
        assert outcomes["python"] == outcomes["numpy"]


# ----------------------------------------------------------------------
# End to end: byte-identical exports
# ----------------------------------------------------------------------
class TestExportIdentity:
    def hotpath_system(self):
        builder = SystemBuilder("kernel-export", allow_shared_priorities=True)
        builder.chain("victim", PeriodicModel(200), deadline=233)
        builder.task("victim.a", priority=2, wcet=25)
        builder.task("victim.b", priority=3, wcet=15)
        for index in range(4):
            name = f"isr{index}"
            builder.chain(name, SporadicModel(5000 + 100 * index), overload=True)
            builder.task(f"{name}.t", priority=10 + index, wcet=9 + index)
        return builder.build()

    def test_serial_export_identical_across_kernels(self, tmp_path):
        system = self.hotpath_system()
        exports = {}
        for kernel in KERNELS:
            with using_kernel(kernel):
                cache_dir = str(tmp_path / f"cache-{kernel}")
                batch = BatchRunner(
                    workers=1, ks=(1, 5, 25), cache_dir=cache_dir
                ).run_systems([system])
                exports[kernel] = batch.to_json()
        assert len(set(exports.values())) == 1

    @needs_numpy
    def test_parallel_export_identical_across_kernels(self):
        system = self.hotpath_system()
        exports = {}
        for kernel in KERNELS:
            with using_kernel(kernel):
                batch = BatchRunner(
                    workers=2, ks=(1, 10), use_cache=False
                ).run_systems([system])
                exports[kernel] = batch.to_json()
        assert len(set(exports.values())) == 1

    def test_timing_export_names_the_kernel(self):
        system = self.hotpath_system()
        with using_kernel("python"):
            batch = BatchRunner(workers=1, use_cache=False).run_systems([system])
            payload = batch.jobs[0].to_dict(deterministic=False)
        assert payload["kernel"] == "python"
        deterministic = batch.jobs[0].to_dict()
        assert "kernel" not in deterministic
