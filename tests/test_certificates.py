"""Tests for certificate extraction and independent checking."""

import dataclasses

import pytest

from repro import analyze_latency, analyze_twca
from repro.analysis.certificates import (CertificateError,
                                         check_dmm_certificate,
                                         check_latency_certificate,
                                         dmm_certificate,
                                         latency_certificate)


class TestLatencyCertificates:
    def test_case_study_certificates_verify(self, figure4):
        for name in ("sigma_c", "sigma_d"):
            result = analyze_latency(figure4, figure4[name])
            certificate = latency_certificate(result)
            check_latency_certificate(figure4, certificate)

    def test_tampered_wcl_rejected(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_c"])
        certificate = latency_certificate(result)
        forged = dataclasses.replace(certificate, wcl=300)
        with pytest.raises(CertificateError):
            check_latency_certificate(figure4, forged)

    def test_tampered_busy_time_rejected(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_c"])
        certificate = latency_certificate(result)
        forged = dataclasses.replace(
            certificate, busy_times=(300.0,) + certificate.busy_times[1:])
        with pytest.raises(CertificateError):
            check_latency_certificate(figure4, forged)

    def test_truncated_queue_rejected(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_c"])
        certificate = latency_certificate(result)
        forged = dataclasses.replace(
            certificate, busy_times=certificate.busy_times[:1],
            max_queue=1)
        with pytest.raises(CertificateError):
            check_latency_certificate(figure4, forged)

    def test_random_system_certificates_verify(self):
        import random
        from repro.synth import GeneratorConfig, generate_feasible_system
        rng = random.Random(17)
        for _ in range(5):
            system = generate_feasible_system(rng, GeneratorConfig(
                chains=3, overload_chains=1, utilization=0.5))
            for chain in system.typical_chains:
                result = analyze_latency(system, chain)
                check_latency_certificate(
                    system, latency_certificate(result))


class TestDmmCertificates:
    def test_case_study_certificate_verifies(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        for k in (1, 3, 7, 10):
            certificate = dmm_certificate(result, k)
            check_dmm_certificate(figure4, certificate)

    def test_schedulable_certificate(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_d"])
        certificate = dmm_certificate(result, 10)
        assert certificate.status == "schedulable"
        check_dmm_certificate(figure4, certificate)

    def test_tampered_bound_rejected(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        certificate = dmm_certificate(result, 10)
        forged = dataclasses.replace(certificate,
                                     bound=certificate.bound + 1)
        with pytest.raises(CertificateError):
            check_dmm_certificate(figure4, forged)

    def test_tampered_capacity_rejected(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        certificate = dmm_certificate(result, 10)
        name, omega, keys = certificate.capacities[0]
        forged = dataclasses.replace(
            certificate,
            capacities=((name, omega + 1, keys),)
            + certificate.capacities[1:])
        with pytest.raises(CertificateError):
            check_dmm_certificate(figure4, forged)

    def test_overpacked_witness_rejected(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        certificate = dmm_certificate(result, 10)
        keys, cost, value = certificate.packing[0]
        forged = dataclasses.replace(
            certificate,
            packing=((keys, cost, value + 100),)
            + certificate.packing[1:])
        with pytest.raises(CertificateError):
            check_dmm_certificate(figure4, forged)

    def test_vacuous_certificate(self):
        from repro import PeriodicModel, SporadicModel, SystemBuilder
        system = (
            SystemBuilder("doomed")
            .chain("victim", PeriodicModel(100), deadline=20)
            .task("victim.a", priority=1, wcet=30)
            .chain("isr", SporadicModel(1000), overload=True)
            .task("isr.t", priority=2, wcet=5)
            .build()
        )
        result = analyze_twca(system, system["victim"])
        certificate = dmm_certificate(result, 10)
        assert certificate.status == "no-guarantee"
        check_dmm_certificate(system, certificate)
        forged = dataclasses.replace(certificate, bound=3)
        with pytest.raises(CertificateError):
            check_dmm_certificate(system, forged)


class TestJsonRoundTrip:
    def test_round_trip_preserves_verification(self, figure4):
        import json
        from repro.analysis.certificates import (
            dmm_certificate_from_dict, dmm_certificate_to_dict)
        result = analyze_twca(figure4, figure4["sigma_c"])
        certificate = dmm_certificate(result, 10)
        payload = json.dumps(dmm_certificate_to_dict(certificate))
        restored = dmm_certificate_from_dict(json.loads(payload))
        assert restored == certificate
        check_dmm_certificate(figure4, restored)

    def test_round_trip_vacuous(self):
        import json
        from repro import PeriodicModel, SporadicModel, SystemBuilder
        from repro.analysis.certificates import (
            dmm_certificate_from_dict, dmm_certificate_to_dict)
        system = (
            SystemBuilder("doomed")
            .chain("victim", PeriodicModel(100), deadline=20)
            .task("victim.a", priority=1, wcet=30)
            .chain("isr", SporadicModel(1000), overload=True)
            .task("isr.t", priority=2, wcet=5)
            .build()
        )
        result = analyze_twca(system, system["victim"])
        certificate = dmm_certificate(result, 7)
        data = json.loads(json.dumps(
            dmm_certificate_to_dict(certificate)))
        restored = dmm_certificate_from_dict(data)
        check_dmm_certificate(system, restored)
