"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.model.serialization import system_to_json
from repro.synth import figure4_system


class TestAnalyze:
    def test_default_system(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "sigma_c" in out and "sigma_d" in out
        assert "weakly-hard" in out

    def test_single_chain_with_dmm(self, capsys):
        assert main(["analyze", "--chain", "sigma_c", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "dmm(3) = 3" in out

    def test_system_from_file(self, tmp_path, capsys):
        path = tmp_path / "system.json"
        path.write_text(system_to_json(figure4_system()))
        assert main(["analyze", "--system", str(path),
                     "--chain", "sigma_d"]) == 0
        assert "schedulable" in capsys.readouterr().out


class TestSimulate:
    def test_runs_and_prints_gantt(self, capsys):
        assert main(["simulate", "--horizon", "1000"]) == 0
        out = capsys.readouterr().out
        assert "max latency" in out
        assert "tau_c^3" in out  # gantt row labels


class TestExperiments:
    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "331" in out and "175" in out

    def test_table2_shows_both_modes(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "printed parameters" in out
        assert "calibrated" in out
        assert "dmm(76) = 4" in out
        assert "dmm(250) = 5" in out

    def test_figure5_small_sample(self, capsys):
        assert main(["--calibrated", "experiment", "figure5",
                     "--samples", "12", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "dmm_sigma_c(10) over 12 priority assignments" in out
        assert "dmm_sigma_d(10)" in out


class TestBatch:
    def test_summary_table(self, capsys):
        assert main(["batch", "--random", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "sample-0000" in out
        assert "cache hit rate" in out

    def test_json_deterministic_across_workers(self, capsys):
        """Acceptance: a 50-system random sweep exports identical JSON
        with --workers 1 and --workers 2."""
        args = ["--calibrated", "batch", "--random", "50", "--seed",
                "2017", "--json"]
        assert main(args + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        payload = json.loads(serial)
        assert payload["job_count"] == 100  # 50 systems x 2 chains
        assert set(payload["status_counts"]) <= {
            "schedulable", "weakly-hard", "no-guarantee", "error"}

    def test_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "batch.json"
        assert main(["batch", "--random", "3", "--json",
                     "--output", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["job_count"] == 6

    def test_system_files(self, tmp_path, capsys):
        path = tmp_path / "system.json"
        path.write_text(system_to_json(figure4_system()))
        assert main(["batch", "--system", str(path),
                     "--chain", "sigma_c", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "dmm(3)=3" in out

    def test_timings_variant_includes_workers(self, capsys):
        assert main(["batch", "--random", "2", "--json",
                     "--timings"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == 1
        assert "cache" in payload

    def test_timings_stderr_tagged_with_job_ids(self, capsys):
        """Per-job timing lines come from the parent, in submission
        order, tagged with the job id — attributable and never
        interleaved, whatever the worker count."""
        assert main(["batch", "--random", "3", "--seed", "5", "--json",
                     "--timings", "--workers", "2"]) == 0
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines()
                 if line.startswith("[job ")]
        assert len(lines) == 6  # 3 systems x 2 chains
        for index, line in enumerate(lines):
            assert line.startswith(f"[job {index:04d}] ")
            assert line.rstrip().endswith("s") and "/" in line
        # The summary line carries the merged per-category counters,
        # followed by the aggregated packing-engine solver counters.
        assert "busy_time" in err.splitlines()[-2]
        assert err.splitlines()[-1].startswith("packing engine: ")
        assert "resolves" in err.splitlines()[-1]

    def test_cache_dir_warm_parallel_rerun_identical(self, tmp_path,
                                                     capsys):
        cache = tmp_path / "cache"
        args = ["batch", "--random", "4", "--seed", "3", "--json",
                "--cache-dir", str(cache)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert list(cache.rglob("*.bin"))

    def test_no_cache_export_identical(self, capsys):
        args = ["batch", "--random", "3", "--seed", "9", "--json"]
        assert main(args) == 0
        cached = capsys.readouterr().out
        assert main(args + ["--no-cache"]) == 0
        assert capsys.readouterr().out == cached

    def test_exhaustive_export_identical(self, capsys):
        args = ["batch", "--random", "3", "--seed", "17", "--json"]
        assert main(args) == 0
        pruned = capsys.readouterr().out
        assert main(args + ["--exhaustive"]) == 0
        assert capsys.readouterr().out == pruned

    def test_system_files_load_in_workers(self, tmp_path, capsys):
        """--system files are parsed worker-side; exports stay
        identical to the serial reference and labeled by path."""
        paths = []
        for index, calibrated in enumerate((False, True)):
            path = tmp_path / f"sys{index}.json"
            path.write_text(system_to_json(
                figure4_system(calibrated=calibrated)))
            paths.append(str(path))
        args = (["batch", "--system"] + paths +
                ["--json", "--cache-dir", str(tmp_path / "cache")])
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial
        payload = json.loads(serial)
        assert payload["job_count"] == 4
        assert payload["jobs"][0]["label"] == paths[0]


class TestCacheCommand:
    def _warm_cache(self, tmp_path):
        cache = tmp_path / "cache"
        assert main(["batch", "--random", "2", "--seed", "5", "--json",
                     "--cache-dir", str(cache)]) == 0
        return cache

    def test_reports_per_category_sizes(self, tmp_path, capsys):
        cache = self._warm_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", str(cache)]) == 0
        out = capsys.readouterr().out
        for category in ("busy_time", "omega", "segments", "jobs",
                         "total"):
            assert category in out
        assert "entries" in out and "size" in out

    def test_prune_older_than_zero_empties_the_store(self, tmp_path,
                                                     capsys):
        cache = self._warm_cache(tmp_path)
        assert list(cache.rglob("*.bin"))
        capsys.readouterr()
        assert main(["cache", str(cache),
                     "--prune-older-than", "0s"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert not list(cache.rglob("*.bin"))

    def test_prune_with_large_age_keeps_everything(self, tmp_path,
                                                   capsys):
        cache = self._warm_cache(tmp_path)
        before = sorted(cache.rglob("*.bin"))
        capsys.readouterr()
        assert main(["cache", str(cache),
                     "--prune-older-than", "90d"]) == 0
        assert sorted(cache.rglob("*.bin")) == before

    def test_bad_age_is_a_usage_error(self, tmp_path, capsys):
        cache = self._warm_cache(tmp_path)
        capsys.readouterr()
        assert main(["cache", str(cache),
                     "--prune-older-than", "soonish"]) == 2
        assert "bad --prune-older-than" in capsys.readouterr().err

    def test_age_syntax(self):
        from repro.cli import parse_age
        assert parse_age("45") == 45
        assert parse_age("45s") == 45
        assert parse_age("30m") == 1800
        assert parse_age("12h") == 43200
        assert parse_age("2d") == 172800
        assert parse_age("1w") == 604800
        with pytest.raises(ValueError):
            parse_age("-3h")
        with pytest.raises(ValueError):
            parse_age("")
        # float() accepts these, but as prune cutoffs they are either
        # destructive (nan compares False everywhere) or meaningless.
        for poison in ("nan", "inf", "-inf", "nand"):
            with pytest.raises(ValueError):
                parse_age(poison)

    def test_nan_age_rejected_before_touching_the_store(self, tmp_path,
                                                        capsys):
        cache = self._warm_cache(tmp_path)
        before = sorted(cache.rglob("*.bin"))
        capsys.readouterr()
        assert main(["cache", str(cache),
                     "--prune-older-than", "nan"]) == 2
        assert sorted(cache.rglob("*.bin")) == before

    def test_missing_directory_is_not_created(self, tmp_path, capsys):
        missing = tmp_path / "no-such-cache"
        assert main(["cache", str(missing)]) == 2
        assert "no cache directory" in capsys.readouterr().err
        assert not missing.exists()

    def test_inspecting_a_foreign_directory_leaves_it_untouched(
            self, tmp_path, capsys):
        """``repro cache`` on an existing non-cache directory must not
        plant category subdirectories in it."""
        foreign = tmp_path / "home"
        foreign.mkdir()
        (foreign / "unrelated.txt").write_text("hands off")
        assert main(["cache", str(foreign)]) == 0
        capsys.readouterr()
        assert sorted(p.name for p in foreign.iterdir()) == ["unrelated.txt"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure9"])


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--samples", "15"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "## Table II" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--samples", "15",
                     "--output", str(target)]) == 0
        assert target.read_text().startswith("# Reproduction report")
