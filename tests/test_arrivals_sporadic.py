"""Unit tests for sporadic and bursty-sporadic event models."""

import math

import pytest

from repro.arrivals import SporadicBurstModel, SporadicModel


class TestSporadic:
    def test_rejects_non_positive_distance(self):
        with pytest.raises(ValueError):
            SporadicModel(0)

    def test_delta_minus_linear(self):
        model = SporadicModel(600)
        assert [model.delta_minus(k) for k in range(5)] == [
            0, 0, 600, 1200, 1800]

    def test_delta_plus_infinite(self):
        model = SporadicModel(600)
        assert model.delta_plus(2) == math.inf
        assert model.delta_plus(1) == 0

    def test_eta_plus(self):
        model = SporadicModel(700)
        assert model.eta_plus(700) == 1
        assert model.eta_plus(701) == 2
        assert model.eta_plus(731) == 2  # the Table II k=3 window
        assert model.eta_plus(1401) == 3

    def test_eta_minus_is_zero(self):
        model = SporadicModel(700)
        assert model.eta_minus(10_000) == 0

    def test_rate(self):
        assert SporadicModel(500).rate() == pytest.approx(1 / 500)

    def test_validate_passes(self):
        SporadicModel(600).validate()

    def test_equality(self):
        assert SporadicModel(600) == SporadicModel(600)
        assert SporadicModel(600) != SporadicModel(700)


class TestSporadicBurst:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SporadicBurstModel(0, 2, 100)
        with pytest.raises(ValueError):
            SporadicBurstModel(10, 0, 100)
        with pytest.raises(ValueError):
            SporadicBurstModel(10, 5, 40)  # outer < burst * inner

    def test_delta_minus_two_level(self):
        model = SporadicBurstModel(inner_distance=10, burst=3,
                                   outer_distance=100)
        # Events 1..3 are one burst (inner spacing), event 4 starts the
        # next burst after the outer distance.
        assert model.delta_minus(2) == 10
        assert model.delta_minus(3) == 20
        assert model.delta_minus(4) == 100
        assert model.delta_minus(5) == 110
        assert model.delta_minus(7) == 200

    def test_eta_plus_sees_bursts(self):
        model = SporadicBurstModel(inner_distance=10, burst=3,
                                   outer_distance=100)
        assert model.eta_plus(21) == 3
        assert model.eta_plus(100) == 3
        assert model.eta_plus(101) == 4

    def test_rate_is_burst_over_outer(self):
        model = SporadicBurstModel(10, 3, 100)
        assert model.rate() == pytest.approx(0.03)

    def test_validate_passes(self):
        SporadicBurstModel(10, 3, 100).validate()

    def test_duality(self):
        from repro.arrivals.algebra import check_duality
        check_duality(SporadicBurstModel(10, 3, 100))
        check_duality(SporadicModel(600))

    def test_burst_of_one_is_plain_sporadic(self):
        burst = SporadicBurstModel(5, 1, 50)
        plain = SporadicModel(50)
        for k in range(8):
            assert burst.delta_minus(k) == plain.delta_minus(k)
