"""Tests for per-stage latency bounds."""


from repro import PeriodicModel, SporadicModel, SystemBuilder, \
    analyze_latency
from repro.analysis.stages import analyze_stage_latencies
from repro.sim import simulate_worst_case


class TestStructure:
    def test_last_stage_equals_wcl(self, figure4):
        for name in ("sigma_c", "sigma_d"):
            stages = analyze_stage_latencies(figure4, figure4[name])
            end_to_end = analyze_latency(figure4, figure4[name])
            assert stages.wcl == end_to_end.wcl
            assert stages.max_queue == end_to_end.max_queue

    def test_bounds_monotone_along_chain(self, figure4):
        stages = analyze_stage_latencies(figure4, figure4["sigma_d"])
        assert list(stages.bounds) == sorted(stages.bounds)
        assert len(stages.bounds) == 5

    def test_first_stage_at_least_first_wcet(self, figure4):
        chain = figure4["sigma_d"]
        stages = analyze_stage_latencies(figure4, chain)
        assert stages.stage(0) >= chain.tasks[0].wcet

    def test_typical_variant(self, figure4):
        full = analyze_stage_latencies(figure4, figure4["sigma_c"])
        typical = analyze_stage_latencies(figure4, figure4["sigma_c"],
                                          include_overload=False)
        for a, b in zip(typical.bounds, full.bounds):
            assert a <= b


class TestSimulationSoundness:
    def test_case_study_stage_bounds_hold(self, figure4):
        result = simulate_worst_case(figure4, 8000)
        for name in ("sigma_c", "sigma_d"):
            chain = figure4[name]
            stages = analyze_stage_latencies(figure4, chain)
            for record in result.instances[name]:
                if record.finish is None:
                    continue
                for index, task in enumerate(chain.tasks):
                    finish = record.task_finishes.get(task.name)
                    if finish is None:
                        continue
                    observed = finish - record.activation
                    assert observed <= stages.stage(index) + 1e-9, (
                        f"{name} stage {index}: {observed} > "
                        f"{stages.stage(index)}")

    def test_random_systems_stage_bounds_hold(self):
        import random
        from repro.synth import GeneratorConfig, \
            generate_feasible_system
        rng = random.Random(77)
        for _ in range(5):
            system = generate_feasible_system(rng, GeneratorConfig(
                chains=2, overload_chains=1, utilization=0.55,
                tasks_per_chain=(3, 5)))
            sim = simulate_worst_case(system, 5000)
            for chain in system.typical_chains:
                stages = analyze_stage_latencies(system, chain)
                for record in sim.instances[chain.name]:
                    if record.finish is None:
                        continue
                    for index, task in enumerate(chain.tasks):
                        finish = record.task_finishes.get(task.name)
                        if finish is None:
                            continue
                        observed = finish - record.activation
                        assert observed <= stages.stage(index) + 1e-9


class TestIntermediateDeadlineUseCase:
    def test_actuation_stage_bound_tighter_than_e2e(self):
        """The motivating use case: an intermediate output is available
        well before the end-to-end bound."""
        system = (
            SystemBuilder("act")
            .chain("ctl", PeriodicModel(100), deadline=100)
            .task("ctl.sense", priority=4, wcet=5)
            .task("ctl.compute", priority=3, wcet=10)
            .task("ctl.actuate", priority=2, wcet=5)
            .task("ctl.log", priority=1, wcet=30)
            .chain("bg", SporadicModel(500), overload=True)
            .task("bg.t", priority=5, wcet=10)
            .build()
        )
        stages = analyze_stage_latencies(system, system["ctl"])
        # Actuation (stage 2) completes far earlier than logging.
        assert stages.stage(2) < stages.wcl
        assert stages.stage(2) <= 40
