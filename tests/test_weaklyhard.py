"""Tests for weakly-hard constraint types, including a brute-force check
of the implication arithmetic."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DeadlineMissModel
from repro.weaklyhard import (AnyMisses, MKFirm, consecutive_misses,
                              miss_pattern_allowed, strongest_any_misses)


class TestAnyMisses:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnyMisses(-1, 5)
        with pytest.raises(ValueError):
            AnyMisses(6, 5)
        with pytest.raises(ValueError):
            AnyMisses(0, 0)

    def test_satisfied_by_dmm(self):
        dmm = DeadlineMissModel.from_table({10: 3})
        assert AnyMisses(3, 10).satisfied_by(dmm)
        assert not AnyMisses(2, 10).satisfied_by(dmm)

    def test_trivial_constraints(self):
        dmm = DeadlineMissModel(lambda k: k)  # always missing
        assert AnyMisses(10, 10).satisfied_by(dmm)


class TestMKFirm:
    def test_equivalence_with_any_misses(self):
        firm = MKFirm(hits=7, window=10)
        assert firm.as_any_misses() == AnyMisses(3, 10)

    def test_satisfied_by(self):
        dmm = DeadlineMissModel.from_table({10: 3})
        assert MKFirm(7, 10).satisfied_by(dmm)
        assert not MKFirm(8, 10).satisfied_by(dmm)


class TestConsecutive:
    def test_consecutive_misses_form(self):
        constraint = consecutive_misses(2)
        assert constraint == AnyMisses(2, 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            consecutive_misses(-1)


class TestStrongest:
    def test_reads_dmm(self):
        dmm = DeadlineMissModel.from_table({3: 1, 10: 4})
        constraints = strongest_any_misses(dmm, [3, 10])
        assert constraints == [AnyMisses(1, 3), AnyMisses(4, 10)]


class TestImplicationBruteForce:
    """Validate AnyMisses.implies against exhaustive pattern search."""

    @pytest.mark.parametrize("left,right", [
        (AnyMisses(1, 3), AnyMisses(2, 5)),
        (AnyMisses(1, 3), AnyMisses(1, 5)),
        (AnyMisses(2, 4), AnyMisses(1, 2)),
        (AnyMisses(0, 2), AnyMisses(1, 7)),
        (AnyMisses(2, 2), AnyMisses(1, 3)),
    ])
    def test_implies_matches_enumeration(self, left, right):
        horizon = left.window + right.window + 2
        claimed = left.implies(right)
        # Enumerate all patterns legal for `left`; `implies` must mean
        # all of them satisfy `right`.
        actual = True
        for bits in itertools.product([False, True], repeat=horizon):
            if miss_pattern_allowed(bits, left) and \
                    not miss_pattern_allowed(bits, right):
                actual = False
                break
        assert claimed == actual

    @settings(max_examples=60, deadline=None)
    @given(
        n1=st.integers(0, 3), m1=st.integers(1, 5),
        n2=st.integers(0, 3), m2=st.integers(1, 5),
    )
    def test_implies_sound_hypothesis(self, n1, m1, n2, m2):
        if n1 > m1 or n2 > m2:
            return
        left, right = AnyMisses(n1, m1), AnyMisses(n2, m2)
        if not left.implies(right):
            return
        horizon = m1 + m2 + 2
        for bits in itertools.product([False, True], repeat=horizon):
            if miss_pattern_allowed(bits, left):
                assert miss_pattern_allowed(bits, right)


class TestMissPatternAllowed:
    def test_short_pattern(self):
        assert miss_pattern_allowed([True], AnyMisses(1, 3))
        assert not miss_pattern_allowed([True, True],
                                        AnyMisses(1, 3))

    def test_sliding_window(self):
        constraint = AnyMisses(1, 2)
        assert miss_pattern_allowed([True, False, True, False], constraint)
        assert not miss_pattern_allowed([False, True, True], constraint)
