"""Round-trip tests for system (de)serialization."""

import json
import math

import pytest

from repro import PeriodicModel, SporadicBurstModel, SporadicModel
from repro.arrivals import ArrivalCurve
from repro.model.serialization import (event_model_from_dict,
                                       event_model_to_dict,
                                       system_from_dict, system_from_json,
                                       system_to_dict, system_to_json)
from repro.synth import figure1_system, figure4_system


class TestEventModelRoundTrip:
    @pytest.mark.parametrize("model", [
        PeriodicModel(200),
        PeriodicModel(100, jitter=30, min_distance=5),
        SporadicModel(700),
        SporadicBurstModel(10, 3, 100),
        ArrivalCurve([0, 0, 700, 15_200], tail_distance=34_800),
        ArrivalCurve([0, 0, 100], delta_max_points=[0, 0, 400]),
    ])
    def test_round_trip(self, model):
        data = event_model_to_dict(model)
        restored = event_model_from_dict(data)
        for k in range(8):
            assert restored.delta_minus(k) == model.delta_minus(k)
            assert restored.delta_plus(k) == model.delta_plus(k)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            event_model_from_dict({"type": "martian"})

    def test_unserializable_model_rejected(self):
        from repro.arrivals.algebra import scaled
        with pytest.raises(TypeError):
            event_model_to_dict(scaled(PeriodicModel(10), 2))


class TestSystemRoundTrip:
    @pytest.mark.parametrize("factory", [figure4_system, figure1_system])
    def test_round_trip_preserves_structure(self, factory):
        system = factory()
        restored = system_from_dict(system_to_dict(system))
        assert len(restored) == len(system)
        for chain in system.chains:
            twin = restored[chain.name]
            assert twin.deadline == chain.deadline
            assert twin.kind == chain.kind
            assert twin.overload == chain.overload
            assert [t.name for t in twin.tasks] == \
                [t.name for t in chain.tasks]
            assert [t.priority for t in twin.tasks] == \
                [t.priority for t in chain.tasks]
            assert [t.wcet for t in twin.tasks] == \
                [t.wcet for t in chain.tasks]

    def test_round_trip_preserves_analysis(self):
        from repro import analyze_latency
        system = figure4_system()
        restored = system_from_json(system_to_json(system))
        for name in ("sigma_c", "sigma_d"):
            original = analyze_latency(system, system[name]).wcl
            recovered = analyze_latency(restored, restored[name]).wcl
            assert original == recovered

    def test_json_is_valid(self):
        text = system_to_json(figure4_system())
        parsed = json.loads(text)
        assert parsed["name"] == "figure4-case-study"
        assert len(parsed["chains"]) == 4

    def test_infinite_deadline_round_trips_as_null(self):
        system = figure4_system()
        data = system_to_dict(system)
        overload = [c for c in data["chains"] if c["name"] == "sigma_a"][0]
        assert overload["deadline"] is None
        restored = system_from_dict(data)
        assert math.isinf(restored["sigma_a"].deadline)
