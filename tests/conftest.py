"""Shared fixtures: the paper's systems and small hand-checkable ones."""

from __future__ import annotations

import pytest

from repro import (ChainKind, PeriodicModel, SporadicModel, SystemBuilder)
from repro.synth import figure1_system, figure4_system


@pytest.fixture(scope="session")
def figure4():
    """The Fig. 4 case study with the printed parameters."""
    return figure4_system()


@pytest.fixture(scope="session")
def figure4_calibrated():
    """The case study with the calibrated overload curves."""
    return figure4_system(calibrated=True)


@pytest.fixture(scope="session")
def figure1():
    """The Fig. 1 two-chain illustration."""
    return figure1_system()


@pytest.fixture()
def two_chain_system():
    """A tiny hand-checkable system: one periodic app chain, one sporadic
    overload chain of higher priority."""
    return (
        SystemBuilder("tiny")
        .chain("app", PeriodicModel(100), deadline=100)
        .task("app.read", priority=2, wcet=10)
        .task("app.write", priority=1, wcet=20)
        .chain("isr", SporadicModel(400), overload=True)
        .task("isr.handle", priority=3, wcet=25)
        .build()
    )


@pytest.fixture()
def async_system():
    """A system whose analyzed chain is asynchronous (self-interference
    term of Theorem 1 active)."""
    return (
        SystemBuilder("async")
        .chain("flow", PeriodicModel(50), deadline=120,
               kind=ChainKind.ASYNCHRONOUS)
        .task("flow.head", priority=5, wcet=10)
        .task("flow.mid", priority=1, wcet=10)
        .task("flow.tail", priority=4, wcet=5)
        .chain("noise", SporadicModel(300), overload=True)
        .task("noise.run", priority=6, wcet=30)
        .build()
    )
