"""2-D (signature x q) masked Kleene parity.

The contracts under test:

* ``solve_monotone_fixed_points_2d`` lands on bit-identical values,
  iteration counts and failure reasons as per-row 1-D
  ``solve_monotone_fixed_points`` and as a cell-at-a-time scalar
  reference, on randomized monotone staircase instances (hypothesis
  property test), including per-cell ``OverflowError`` isolation;
* ``stop_row`` settles exactly the rows whose independent cell
  trajectories cross the stop predicate, and never perturbs the
  surviving rows;
* the block Def. 10 verdict (``verdict.many`` /
  ``verdict.exact_check_many``) decides every signature exactly like
  the historic one-signature-at-a-time pipeline, under either kernel,
  and writes the identical ``combo_exact`` cache entries;
* the batched wavefront search (``search_combinations(batch=True)``)
  reports the same counts, checks, nodes and minimal combinations as
  the depth-first recursion it replaces.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_latency, criterion_loads
from repro.analysis.combinations import (
    iter_combinations,
    overload_active_segments,
    search_combinations,
)
from repro.analysis.exceptions import BusyWindowDivergence
from repro.analysis.twca import _build_verdict
from repro.kernel import (
    HAVE_NUMPY,
    solve_monotone_fixed_points,
    solve_monotone_fixed_points_2d,
    using_kernel,
)
from repro.runner import AnalysisCache
from repro.synth import GeneratorConfig, figure4_system, generate_feasible_system

KERNELS = ("python", "numpy") if HAVE_NUMPY else ("python",)

MAX_WINDOW = 5_000.0
MAX_ITERATIONS = 60


# ----------------------------------------------------------------------
# The raw 2-D helper against its 1-D and scalar references
# ----------------------------------------------------------------------
def staircase(base, rate, step):
    """A monotone staircase operator: the synthetic stand-in for one
    Eq. (3) interference sum."""

    def fn(horizon):
        return float(base + rate * math.floor(horizon / step))

    return fn


def scalar_fixed_point(seed, fn):
    """Cell-at-a-time Kleene iteration with the exact failure semantics
    of :func:`solve_monotone_fixed_points`."""
    horizon = float(seed)
    iterations = 0
    while True:
        try:
            total = float(fn(horizon))
        except OverflowError as exc:
            return None, iterations + 1, f"overflow: {exc}"
        iterations += 1
        if total <= horizon:
            return total, iterations, None
        if total > MAX_WINDOW:
            return None, iterations, "window"
        if iterations > MAX_ITERATIONS:
            return None, iterations, "iterations"
        horizon = total


cell_params = st.tuples(
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=1, max_value=40),
)

instances = st.lists(
    st.lists(cell_params, min_size=1, max_size=5), min_size=1, max_size=6
)


def build_instance(instance):
    fns = [[staircase(*cell) for cell in row] for row in instance]
    seeds = [[float(cell[0]) for cell in row] for row in instance]

    def totals_many(cells, horizons):
        return [fns[r][c](h) for (r, c), h in zip(cells, horizons)]

    def totals_one(r, c, horizon):
        return fns[r][c](horizon)

    return fns, seeds, totals_many, totals_one


class TestMasked2dKleene:
    @settings(max_examples=150, deadline=None)
    @given(instance=instances)
    def test_matches_per_row_1d_and_scalar(self, instance):
        fns, seeds, totals_many, totals_one = build_instance(instance)
        values, iterations, failures, stopped = solve_monotone_fixed_points_2d(
            seeds,
            totals_many,
            totals_one,
            max_window=MAX_WINDOW,
            max_iterations=MAX_ITERATIONS,
        )
        assert stopped == [False] * len(instance)
        for r, row_fns in enumerate(fns):

            def row_many(indices, horizons, row_fns=row_fns):
                return [row_fns[c](h) for c, h in zip(indices, horizons)]

            def row_one(c, horizon, row_fns=row_fns):
                return row_fns[c](horizon)

            reference = solve_monotone_fixed_points(
                seeds[r],
                row_many,
                row_one,
                max_window=MAX_WINDOW,
                max_iterations=MAX_ITERATIONS,
            )
            assert (values[r], iterations[r], failures[r]) == reference
            for c, fn in enumerate(row_fns):
                assert (
                    values[r][c],
                    iterations[r][c],
                    failures[r][c],
                ) == scalar_fixed_point(seeds[r][c], fn)

    @settings(max_examples=120, deadline=None)
    @given(instance=instances, threshold=st.integers(min_value=1, max_value=4_000))
    def test_stop_row_settles_exactly_the_crossing_rows(self, instance, threshold):
        fns, seeds, totals_many, totals_one = build_instance(instance)

        def stop_row(r, c, total):
            return total > threshold

        values, _, failures, stopped = solve_monotone_fixed_points_2d(
            seeds,
            totals_many,
            totals_one,
            max_window=MAX_WINDOW,
            max_iterations=MAX_ITERATIONS,
            stop_row=stop_row,
        )
        plain = solve_monotone_fixed_points_2d(
            seeds,
            totals_many,
            totals_one,
            max_window=MAX_WINDOW,
            max_iterations=MAX_ITERATIONS,
        )

        def crosses(r):
            # Cells advance in lockstep sweeps and trajectories are
            # independent, so a row stops iff some cell's own trajectory
            # produces a crossing total before it converges or fails.
            for c, fn in enumerate(fns[r]):
                horizon = seeds[r][c]
                for _ in range(MAX_ITERATIONS + 1):
                    total = fn(horizon)
                    if total > threshold:
                        return True
                    if total <= horizon or total > MAX_WINDOW:
                        break
                    horizon = total
            return False

        for r in range(len(instance)):
            assert stopped[r] == crosses(r)
            if not stopped[r]:
                # Surviving rows never feel the other rows stopping.
                assert values[r] == plain[0][r]
                assert failures[r] == plain[2][r]

    def test_overflow_isolated_per_cell(self):
        def dense(_horizon):
            raise OverflowError("curve too dense")

        def late(horizon):
            if horizon > 40:
                raise OverflowError("late overflow")
            return float(30 + 2 * math.floor(horizon / 3))

        fns = [[dense, staircase(3, 1, 10)], [late], [staircase(5, 0, 1)]]
        seeds = [[1.0, 1.0], [1.0], [1.0]]

        def totals_many(cells, horizons):
            return [fns[r][c](h) for (r, c), h in zip(cells, horizons)]

        def totals_one(r, c, horizon):
            return fns[r][c](horizon)

        values, iterations, failures, stopped = solve_monotone_fixed_points_2d(
            seeds,
            totals_many,
            totals_one,
            max_window=MAX_WINDOW,
            max_iterations=MAX_ITERATIONS,
        )
        assert stopped == [False, False, False]
        assert failures[0][0] == "overflow: curve too dense"
        assert failures[1][0] == "overflow: late overflow"
        for r, row_fns in enumerate(fns):
            for c, fn in enumerate(row_fns):
                assert (
                    values[r][c],
                    iterations[r][c],
                    failures[r][c],
                ) == scalar_fixed_point(seeds[r][c], fn)

    def test_empty_rows_are_legal(self):
        values, iterations, failures, stopped = solve_monotone_fixed_points_2d(
            [[], [2.0]],
            lambda cells, horizons: [5.0 for _ in cells],
            lambda r, c, horizon: 5.0,
            max_window=MAX_WINDOW,
            max_iterations=MAX_ITERATIONS,
        )
        assert values == [[], [5.0]]
        assert iterations == [[], [2]]
        assert failures == [[], [None]]
        assert stopped == [False, False]


# ----------------------------------------------------------------------
# The block Def. 10 verdict against the scalar pipeline
# ----------------------------------------------------------------------
def random_system(seed, overload_chains=2):
    rng = random.Random(seed)
    return generate_feasible_system(
        rng,
        GeneratorConfig(
            chains=2,
            overload_chains=overload_chains,
            utilization=0.5,
            overload_utilization=0.06,
            tasks_per_chain=(2, 4),
        ),
    )


def verdict_inputs(system, chain):
    """The ``(deltas, loads, segments)`` of the Def. 10 stage, or
    ``None`` when the chain never reaches it."""
    try:
        full = analyze_latency(system, chain, include_overload=True)
    except BusyWindowDivergence:
        return None
    if full.wcl <= chain.deadline:
        return None
    deltas = {
        q: chain.activation.delta_minus(q) for q in range(1, full.max_queue + 1)
    }
    loads = criterion_loads(system, chain, tuple(deltas))
    segments = overload_active_segments(system, chain)
    return deltas, loads, segments


def build(system, chain, inputs, multi_q):
    deltas, loads, segments = inputs
    return _build_verdict(
        system,
        chain,
        deltas,
        loads,
        segments,
        exact_criterion=True,
        multi_q=multi_q,
    )


class TestBlockVerdict:
    @pytest.mark.parametrize("seed", range(0, 40, 4))
    def test_many_matches_the_scalar_pipeline(self, seed):
        system = random_system(seed, overload_chains=1 + seed % 3)
        for chain in system.typical_chains:
            inputs = verdict_inputs(system, chain)
            if inputs is None:
                continue
            _, _, segments = inputs
            signatures = [c.signature for c in iter_combinations(segments)]
            scalar = build(system, chain, inputs, multi_q=False)
            assert not hasattr(scalar, "many")
            reference = [scalar(s) for s in signatures]
            for kernel in KERNELS:
                with using_kernel(kernel):
                    multi = build(system, chain, inputs, multi_q=True)
                    assert multi.many(signatures) == reference
                    # The repeat is answered purely from the memo.
                    assert multi.many(signatures) == reference

    @pytest.mark.parametrize("seed", (3, 8, 11, 19))
    def test_exact_check_many_matches_per_signature(self, seed):
        system = random_system(seed, overload_chains=1 + seed % 2)
        for chain in system.typical_chains:
            inputs = verdict_inputs(system, chain)
            if inputs is None:
                continue
            _, _, segments = inputs
            signatures = [c.signature for c in iter_combinations(segments)]
            for kernel in KERNELS:
                with using_kernel(kernel):
                    multi = build(system, chain, inputs, multi_q=True)
                    block = multi.exact_check_many(signatures)
                    singles = [multi.exact_check(s) for s in signatures]
                    assert block == singles

    @pytest.mark.parametrize("seed", (4, 16, 28))
    def test_block_calls_write_the_scalar_cache_entries(self, seed):
        system = random_system(seed, overload_chains=2)
        for chain in system.typical_chains:
            inputs = verdict_inputs(system, chain)
            if inputs is None:
                continue
            _, _, segments = inputs
            signatures = [c.signature for c in iter_combinations(segments)]
            block_cache = AnalysisCache()
            with block_cache.activate():
                block_results = build(system, chain, inputs, True).many(signatures)
            single_cache = AnalysisCache()
            with single_cache.activate():
                single = build(system, chain, inputs, True)
                single_results = [single(s) for s in signatures]
            assert block_results == single_results
            assert (
                block_cache.stats()["combo_exact"].misses
                == single_cache.stats()["combo_exact"].misses
            )
            # A fresh verdict over the block-filled cache recomputes
            # nothing: the block stored under exactly the scalar keys.
            with block_cache.activate():
                warm = build(system, chain, inputs, True)
                assert warm.many(signatures) == block_results
            after = block_cache.stats()["combo_exact"]
            assert after.misses == single_cache.stats()["combo_exact"].misses


# ----------------------------------------------------------------------
# The batched wavefront search against the depth-first recursion
# ----------------------------------------------------------------------
class TestBatchedSearch:
    @pytest.mark.parametrize("seed", (0, 6, 14, 23, 27))
    def test_wavefront_matches_depth_first(self, seed):
        system = random_system(seed, overload_chains=1 + seed % 3)
        for chain in system.typical_chains:
            inputs = verdict_inputs(system, chain)
            if inputs is None:
                continue
            _, _, segments = inputs
            batched = search_combinations(segments, build(system, chain, inputs, True))
            sequential = search_combinations(
                segments, build(system, chain, inputs, False), batch=False
            )
            assert batched.total == sequential.total
            assert batched.unschedulable == sequential.unschedulable
            assert batched.checks == sequential.checks
            assert batched.nodes == sequential.nodes
            assert [c.signature for c in batched.minimal] == [
                c.signature for c in sequential.minimal
            ]

    def test_forced_batch_plain_callable_matches(self):
        system = figure4_system()
        chain = system["sigma_c"]
        segments = overload_active_segments(system, chain)

        def flagged(signature):
            return sum(weight for _, weight in signature) > 25.0

        forced = search_combinations(segments, flagged, batch=True)
        plain = search_combinations(segments, flagged, batch=False)
        assert forced.total == plain.total
        assert forced.unschedulable == plain.unschedulable
        assert forced.checks == plain.checks
        assert forced.nodes == plain.nodes
        assert [c.signature for c in forced.minimal] == [
            c.signature for c in plain.minimal
        ]
