"""Tests for the auto-generated markdown reproduction report."""


from repro.report import (figure5_section, markdown_table,
                          reproduction_report, table1_section,
                          table2_section)


class TestMarkdownTable:
    def test_shape(self):
        text = markdown_table(("a", "b"), [(1, 2), (3, 4)])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4


class TestSections:
    def test_table1_reports_exact(self):
        text = table1_section()
        assert "331" in text
        assert "175" in text
        assert "DIFFERS" not in text

    def test_table2_shows_both_modes(self):
        text = table2_section()
        lines = text.splitlines()
        assert "| 3 | 3 | 3 | 3 |" in lines
        assert "| 76 | 4 | 4 | 23 |" in lines
        assert "| 250 | 5 | 5 | 73 |" in lines

    def test_figure5_small_sample(self):
        text = figure5_section(samples=30, seed=3)
        assert "30 random priority assignments" in text
        assert "sigma_c" in text and "sigma_d" in text

    def test_full_report_concatenates(self):
        report = reproduction_report(samples=20, seed=4)
        assert report.startswith("# Reproduction report")
        for heading in ("## Table I", "## Table II", "## Figure 5"):
            assert heading in report
