"""Tests for trace statistics: distributions, overshoot, settling."""

import pytest

from repro import PeriodicModel, SporadicModel, SystemBuilder
from repro.sim import (Simulator, latency_stats, max_settling_time,
                       miss_streaks, overshoot_report, percentile)
from repro.sim.stats import LatencyStats


class TestPercentile:
    def test_nearest_rank(self):
        sample = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(sample, 50) == 5
        assert percentile(sample, 90) == 9
        assert percentile(sample, 100) == 10
        assert percentile(sample, 0) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_bad_mark(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestLatencyStats:
    def _result(self):
        system = (
            SystemBuilder("s")
            .chain("c", PeriodicModel(20), deadline=25)
            .task("c.t", priority=1, wcet=5)
            .chain("isr", SporadicModel(100), overload=True)
            .task("isr.t", priority=2, wcet=8)
            .build()
        )
        activations = {
            "c": [float(t) for t in range(0, 200, 20)],
            "isr": [0.0, 100.0],
        }
        return Simulator(system).run(activations, 200)

    def test_summary_fields(self):
        stats = latency_stats(self._result(), "c")
        assert stats.count == 10
        assert stats.minimum == 5     # undisturbed instances
        assert stats.maximum == 13    # hit by the ISR
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.percentiles[50] <= stats.percentiles[99]

    def test_from_samples_rejects_empty(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples("c", [])


class TestOvershoot:
    def _result(self, overload_wcet=30):
        system = (
            SystemBuilder("o")
            .chain("victim", PeriodicModel(20), deadline=40)
            .task("v.t", priority=1, wcet=6)
            .chain("burst", SporadicModel(200), overload=True)
            .task("b.t", priority=2, wcet=overload_wcet)
            .build()
        )
        activations = {
            "victim": [float(t) for t in range(0, 400, 20)],
            "burst": [100.0, 300.0],
        }
        return Simulator(system).run(activations, 400)

    def test_one_report_per_overload_activation(self):
        reports = overshoot_report(self._result(), "victim", "burst")
        assert len(reports) == 2
        assert [r.overload_time for r in reports] == [100.0, 300.0]

    def test_overshoot_positive_when_disturbed(self):
        reports = overshoot_report(self._result(), "victim", "burst")
        assert reports[0].overshoot > 0
        assert reports[0].peak_latency > 6

    def test_settling_time_counts_disturbed_instances(self):
        reports = overshoot_report(self._result(), "victim", "burst")
        assert reports[0].settling_instances >= 1
        # With the explicit analytical baseline the verdict is the same.
        explicit = overshoot_report(self._result(), "victim", "burst",
                                    typical_level=6)
        assert (explicit[0].settling_instances
                == reports[0].settling_instances)

    def test_max_settling_time(self):
        result = self._result()
        assert max_settling_time(result, "victim", "burst") == max(
            r.settling_instances
            for r in overshoot_report(result, "victim", "burst"))

    def test_no_overshoot_for_weak_overload(self):
        reports = overshoot_report(self._result(overload_wcet=1),
                                   "victim", "burst", typical_level=7)
        assert all(r.overshoot == 0 for r in reports)


class TestMissStreaks:
    def _result(self):
        system = (
            SystemBuilder("m")
            .chain("c", PeriodicModel(10), deadline=8)
            .task("c.t", priority=1, wcet=6)
            .chain("noise", SporadicModel(100), overload=True)
            .task("n.t", priority=2, wcet=9)
            .build()
        )
        activations = {
            "c": [float(t) for t in range(0, 100, 10)],
            "noise": [0.0],
        }
        return Simulator(system).run(activations, 100)

    def test_streaks_partition_misses(self):
        result = self._result()
        streaks = miss_streaks(result, "c")
        assert sum(streaks) == result.miss_count("c")
        assert all(s >= 1 for s in streaks)

    def test_no_misses_no_streaks(self):
        system = (
            SystemBuilder("clean")
            .chain("c", PeriodicModel(10), deadline=10)
            .task("c.t", priority=1, wcet=2)
            .build()
        )
        result = Simulator(system).run(
            {"c": [0.0, 10.0, 20.0]}, 30)
        assert miss_streaks(result, "c") == []
