"""Tests for the LP-format export."""


from repro.ilp import IntegerProgram, to_lp_string, write_lp_file


def sample_program():
    return IntegerProgram(
        objective=[1, 1, 2],
        rows=[[1, 0, 1], [0, 1, 1]],
        rhs=[3, 4],
        upper_bounds=[None, 5, None],
        names=["combo a+b", "combo-c", "3rd"])


class TestLpString:
    def test_sections_present(self):
        text = to_lp_string(sample_program())
        for section in ("Maximize", "Subject To", "Bounds", "Generals",
                        "End"):
            assert section in text

    def test_objective_line(self):
        text = to_lp_string(sample_program())
        assert "obj:" in text
        assert "2 x_3rd" in text

    def test_names_sanitized(self):
        text = to_lp_string(sample_program())
        assert "combo a+b" not in text
        assert "combo_a_b" in text
        assert "combo_c" in text

    def test_constraints_rendered(self):
        text = to_lp_string(sample_program())
        assert "c0:" in text and "<= 3" in text
        assert "c1:" in text and "<= 4" in text

    def test_bounds_render_finite_uppers(self):
        text = to_lp_string(sample_program())
        assert "0 <= combo_c <= 5" in text
        assert "0 <= combo_a_b\n" in text

    def test_default_names(self):
        program = IntegerProgram([1], [[1]], [2])
        text = to_lp_string(program)
        assert "x0" in text

    def test_duplicate_names_disambiguated(self):
        program = IntegerProgram([1, 1], [[1, 1]], [2],
                                 names=["same", "same"])
        text = to_lp_string(program)
        assert "same_1" in text

    def test_zero_coefficient_skipped(self):
        text = to_lp_string(sample_program())
        constraint = [line for line in text.splitlines()
                      if line.strip().startswith("c0:")][0]
        assert "combo_c" not in constraint


class TestRoundTripViaExternalTools:
    def test_file_written(self, tmp_path):
        path = tmp_path / "packing.lp"
        write_lp_file(sample_program(), str(path))
        content = path.read_text()
        assert content.startswith("\\ twca_packing")
        assert content.endswith("End\n")

    def test_case_study_packing_exports(self, figure4):
        """The actual Theorem 3 program of the case study exports."""
        from repro import analyze_twca
        from repro.ilp import IntegerProgram
        result = analyze_twca(figure4, figure4["sigma_c"])
        omegas = {name: result.omega(name, 10)
                  for name in result.active_segments}
        rows, rhs = [], []
        for name in sorted(result.active_segments):
            for segment in result.active_segments[name]:
                rows.append([1.0 if c.uses(segment) else 0.0
                             for c in result.unschedulable])
                rhs.append(float(omegas[name]))
        program = IntegerProgram(
            objective=[1.0] * len(result.unschedulable),
            rows=rows, rhs=rhs,
            names=[str(c) for c in result.unschedulable])
        text = to_lp_string(program, "sigma_c_k10")
        assert "sigma_c_k10" in text
        assert "Generals" in text
