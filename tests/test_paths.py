"""Tests for the path extension (footnote 1: fork/join via sequences of
chains)."""


import pytest

from repro import PeriodicModel, SporadicModel, SystemBuilder
from repro.analysis import NotAnalyzable, analyze_latency
from repro.analysis.paths import Path, analyze_path, path_dmm


def _staged_system():
    """Producer -> consumer chains plus an overload chain.  The
    consumer's declared activation is a placeholder; the path analysis
    replaces it with the producer's output model."""
    return (
        SystemBuilder("staged")
        .chain("produce", PeriodicModel(100), deadline=100)
        .task("pr.poll", priority=4, wcet=8, bcet=5)
        .task("pr.pack", priority=3, wcet=12, bcet=8)
        .chain("consume", PeriodicModel(100), deadline=100)
        .task("co.unpack", priority=2, wcet=10, bcet=6)
        .task("co.apply", priority=1, wcet=15, bcet=10)
        .chain("isr", SporadicModel(600), overload=True)
        .task("isr.run", priority=5, wcet=20)
        .build()
    )


class TestPathObject:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Path("p", [], 10)

    def test_rejects_cycle(self):
        with pytest.raises(ValueError):
            Path("p", ["a", "b", "a"], 10)

    def test_rejects_bad_deadline(self):
        with pytest.raises(ValueError):
            Path("p", ["a"], 0)


class TestAnalyzePath:
    def test_converges(self):
        system = _staged_system()
        result = analyze_path(system, Path("e2e",
                                           ["produce", "consume"], 200))
        assert result.iterations <= 6
        assert len(result.stages) == 2

    def test_consumer_sees_producer_jitter(self):
        system = _staged_system()
        result = analyze_path(system, Path("e2e",
                                           ["produce", "consume"], 200))
        model = result.stages[1].input_model
        assert isinstance(model, PeriodicModel)
        producer = result.stages[0]
        assert model.jitter == pytest.approx(
            producer.wcl - producer.best_case)

    def test_path_wcl_is_sum_of_stages(self):
        system = _staged_system()
        result = analyze_path(system, Path("e2e",
                                           ["produce", "consume"], 200))
        assert result.wcl == sum(s.wcl for s in result.stages)

    def test_single_chain_path_matches_latency_analysis(self):
        system = _staged_system()
        result = analyze_path(system, Path("solo", ["produce"], 100))
        expected = analyze_latency(system, system["produce"]).wcl
        assert result.wcl == expected

    def test_unknown_chain_rejected(self):
        with pytest.raises(NotAnalyzable):
            analyze_path(_staged_system(), Path("p", ["ghost"], 10))

    def test_overload_chain_rejected(self):
        with pytest.raises(NotAnalyzable):
            analyze_path(_staged_system(), Path("p", ["isr"], 10))

    def test_budgets_sum_to_deadline(self):
        system = _staged_system()
        result = analyze_path(system, Path("e2e",
                                           ["produce", "consume"], 200))
        assert sum(result.stage_budgets()) == pytest.approx(200)


class TestForkJoin:
    def test_fork_shares_prefix(self):
        """Two paths fork after 'produce'; both analyses converge and
        agree on the shared stage."""
        system = (
            SystemBuilder("fork")
            .chain("produce", PeriodicModel(100), deadline=100)
            .task("pr.t", priority=5, wcet=10, bcet=6)
            .chain("left", PeriodicModel(100), deadline=100)
            .task("le.t", priority=2, wcet=8)
            .chain("right", PeriodicModel(100), deadline=100)
            .task("ri.t", priority=1, wcet=12)
            .build()
        )
        left = analyze_path(system, Path("pl", ["produce", "left"], 150))
        right = analyze_path(system, Path("pr", ["produce", "right"],
                                          150))
        assert left.stages[0].wcl == right.stages[0].wcl
        assert left.meets_deadline and right.meets_deadline


class TestPathDmm:
    def test_meeting_path_gets_zero(self):
        system = _staged_system()
        path = Path("e2e", ["produce", "consume"], 200)
        assert path_dmm(system, path, 10) == 0

    def test_tight_path_gets_bounded_dmm(self):
        system = _staged_system()
        path = Path("tight", ["produce", "consume"], 78)
        analysis = analyze_path(system, path)
        assert not analysis.meets_deadline
        dmm = path_dmm(system, path, 10, analysis=analysis)
        assert 1 <= dmm <= 10

    def test_dmm_monotone(self):
        system = _staged_system()
        path = Path("tight", ["produce", "consume"], 78)
        analysis = analyze_path(system, path)
        values = [path_dmm(system, path, k, analysis=analysis)
                  for k in (1, 3, 10)]
        assert values == sorted(values)

    def test_rejects_bad_k(self):
        system = _staged_system()
        with pytest.raises(ValueError):
            path_dmm(system, Path("p", ["produce"], 10), 0)
