"""Tests for priority search and sensitivity analysis."""

import math
import random

import pytest

from repro import analyze_twca
from repro.opt import (current_assignment, dmm_objective, dmm_vs_scale,
                       hill_climb, overload_rate_margin, random_search,
                       wcet_margin)
from repro.runner import BatchRunner


class TestObjective:
    def test_schedulable_scores_zero(self, figure4):
        objective = dmm_objective(["sigma_d"], k=10)
        assert objective(figure4) == 0

    def test_weakly_hard_scores_dmm(self, figure4):
        objective = dmm_objective(["sigma_c"], k=10)
        result = analyze_twca(figure4, figure4["sigma_c"])
        assert objective(figure4) == result.dmm(10)

    def test_sum_over_chains(self, figure4):
        combined = dmm_objective(["sigma_c", "sigma_d"], k=10)
        single_c = dmm_objective(["sigma_c"], k=10)
        single_d = dmm_objective(["sigma_d"], k=10)
        assert combined(figure4) == single_c(figure4) + single_d(figure4)


class TestRandomSearch:
    def test_never_worse_than_start(self, figure4):
        rng = random.Random(11)
        objective = dmm_objective(["sigma_c", "sigma_d"], k=10)
        start = objective(figure4)
        result = random_search(figure4, objective, samples=15, rng=rng)
        assert result.score <= start
        assert result.evaluations == 16
        assert result.history[0] == start
        assert result.history == sorted(result.history, reverse=True)

    def test_apply_returns_scored_system(self, figure4):
        rng = random.Random(12)
        objective = dmm_objective(["sigma_c"], k=10)
        result = random_search(figure4, objective, samples=10, rng=rng)
        assert objective(result.apply(figure4)) == result.score


class TestHillClimb:
    def test_finds_schedulable_assignment_for_sigma_c(self, figure4):
        """Experiment 2 shows 633/1000 random assignments schedule
        sigma_c; local search should reach one quickly."""
        rng = random.Random(13)
        objective = dmm_objective(["sigma_c"], k=10)
        result = hill_climb(figure4, objective, rng, max_rounds=6)
        assert result.score == 0

    def test_history_monotone(self, figure4):
        rng = random.Random(14)
        objective = dmm_objective(["sigma_c"], k=10)
        result = hill_climb(figure4, objective, rng, max_rounds=3)
        assert result.history == sorted(result.history, reverse=True)

    def test_seed_assignment_respected(self, figure4):
        rng = random.Random(15)
        seed = current_assignment(figure4)
        objective = dmm_objective(["sigma_d"], k=10)
        result = hill_climb(figure4, objective, rng, max_rounds=1,
                            seed_assignment=seed)
        assert result.score <= objective(figure4)


class TestRunnerBacked:
    """The opt layer routed through a BatchRunner must reproduce the
    plain serial results exactly."""

    def test_random_search_matches_serial(self, figure4):
        objective = dmm_objective(["sigma_c", "sigma_d"], k=10)
        plain = random_search(figure4, objective, samples=8,
                              rng=random.Random(21))
        routed = random_search(figure4, objective, samples=8,
                               rng=random.Random(21),
                               runner=BatchRunner(workers=2))
        assert routed.assignment == plain.assignment
        assert routed.score == plain.score
        assert routed.history == plain.history
        assert routed.evaluations == plain.evaluations

    def test_random_search_rejects_opaque_objective(self, figure4):
        with pytest.raises(TypeError):
            random_search(figure4, lambda s: 0.0, samples=2,
                          rng=random.Random(1), runner=BatchRunner())

    def test_hill_climb_matches_serial(self, figure4):
        objective = dmm_objective(["sigma_c"], k=10)
        plain = hill_climb(figure4, objective, random.Random(22),
                           max_rounds=2)
        routed = hill_climb(figure4, objective, random.Random(22),
                            max_rounds=2, runner=BatchRunner())
        assert routed.assignment == plain.assignment
        assert routed.score == plain.score
        assert routed.history == plain.history

    def test_dmm_vs_scale_matches_serial(self, figure4):
        factors = [0.5, 1.0, 2.0]
        plain = dmm_vs_scale(figure4, scaled_chain="sigma_b",
                             target_chain="sigma_c", factors=factors)
        routed = dmm_vs_scale(figure4, scaled_chain="sigma_b",
                              target_chain="sigma_c", factors=factors,
                              runner=BatchRunner(workers=2))
        assert routed == plain

    def test_margins_match_serial(self, figure4):
        runner = BatchRunner()
        plain = wcet_margin(figure4, scaled_chain="sigma_c",
                            target_chain="sigma_d", misses=0, window=10,
                            hi=2.0)
        routed = wcet_margin(figure4, scaled_chain="sigma_c",
                             target_chain="sigma_d", misses=0, window=10,
                             hi=2.0, runner=runner)
        assert routed == plain


class TestSensitivity:
    def test_wcet_margin_of_schedulable_chain(self, figure4):
        # sigma_d is schedulable; how much can sigma_c grow before
        # sigma_d loses dmm(10) <= 0?
        margin = wcet_margin(figure4, scaled_chain="sigma_c",
                             target_chain="sigma_d", misses=0, window=10)
        assert margin >= 1.0

    def test_wcet_margin_nan_when_already_failing(self, figure4):
        margin = wcet_margin(figure4, scaled_chain="sigma_d",
                             target_chain="sigma_c", misses=0, window=10)
        assert math.isnan(margin)  # sigma_c already misses at factor 1

    def test_overload_rate_margin(self, figure4):
        # sigma_c currently has dmm(10) = 5; how much denser may sigma_a
        # fire before dmm(10) exceeds 6?
        result = analyze_twca(figure4, figure4["sigma_c"])
        margin = overload_rate_margin(
            figure4, overload_chain="sigma_a", target_chain="sigma_c",
            misses=result.dmm(10) + 1, window=10)
        assert not math.isnan(margin)
        assert margin <= 1.0

    def test_dmm_vs_scale_monotone(self, figure4):
        table = dmm_vs_scale(figure4, scaled_chain="sigma_b",
                             target_chain="sigma_c",
                             factors=[0.5, 1.0, 2.0, 4.0], k=10)
        values = [table[f] for f in (0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values)

    def test_dmm_vs_scale_reaches_vacuous(self, figure4):
        table = dmm_vs_scale(figure4, scaled_chain="sigma_d",
                             target_chain="sigma_c",
                             factors=[1.0, 10.0], k=10)
        assert table[10.0] == 10  # typical system destroyed -> vacuous
