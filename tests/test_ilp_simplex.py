"""Tests for the hand-rolled two-phase simplex, cross-checked against
scipy.optimize.linprog.

Skipped wholesale on the no-numpy CI leg: the *library* runs without
numpy (see tests/test_kernel.py), but this cross-check oracle is scipy
itself.
"""

import pytest

np = pytest.importorskip("numpy", reason="the linprog cross-check needs scipy")
scipy_optimize = pytest.importorskip(
    "scipy.optimize", reason="the linprog cross-check needs scipy"
)
linprog = scipy_optimize.linprog

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.ilp import solve_lp  # noqa: E402


class TestHandCrafted:
    def test_simple_maximization(self):
        # max 3x + 2y s.t. x + y <= 4, x <= 2.
        result = solve_lp([3, 2], [[1, 1], [1, 0]], [4, 2])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(10)  # x=2, y=2
        assert result.values == pytest.approx((2, 2))

    def test_unbounded(self):
        result = solve_lp([1], [], [])
        assert result.status == "unbounded"

    def test_unbounded_with_useless_row(self):
        result = solve_lp([1, 1], [[1, 0]], [5])
        assert result.status == "unbounded"

    def test_infeasible_via_negative_rhs(self):
        # x <= -1 with x >= 0 is infeasible.
        result = solve_lp([1], [[1]], [-1])
        assert result.status == "infeasible"

    def test_negative_rhs_feasible(self):
        # -x <= -2 means x >= 2; max -x  -> x = 2, objective -2.
        result = solve_lp([-1], [[-1]], [-2])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-2)

    def test_zero_variables(self):
        assert solve_lp([], [], []).status == "optimal"

    def test_degenerate_constraints(self):
        # Redundant rows must not break phase 2.
        result = solve_lp([1, 1], [[1, 1], [1, 1], [2, 2]], [4, 4, 8])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(4)

    def test_knapsack_relaxation_shape(self):
        # The Theorem 3 relaxation: unit profits, 0/1 rows.
        result = solve_lp([1, 1, 1],
                          [[1, 0, 1], [0, 1, 1]],
                          [3, 3])
        assert result.status == "optimal"
        assert result.objective == pytest.approx(6)  # x1=3, x2=3, x3=0


@st.composite
def lp_instances(draw):
    num_vars = draw(st.integers(1, 5))
    num_rows = draw(st.integers(1, 5))
    objective = [draw(st.integers(-5, 5)) for _ in range(num_vars)]
    rows = [[draw(st.integers(0, 5)) for _ in range(num_vars)]
            for _ in range(num_rows)]
    rhs = [draw(st.integers(0, 20)) for _ in range(num_rows)]
    # Guarantee boundedness: add a box row per variable.
    for i in range(num_vars):
        box = [0] * num_vars
        box[i] = 1
        rows.append(box)
        rhs.append(draw(st.integers(0, 10)))
    return objective, rows, rhs


class TestAgainstScipy:
    @settings(max_examples=120, deadline=None)
    @given(instance=lp_instances())
    def test_matches_linprog(self, instance):
        objective, rows, rhs = instance
        ours = solve_lp(objective, rows, rhs)
        reference = linprog(
            c=[-c for c in objective],
            A_ub=np.array(rows, dtype=float),
            b_ub=np.array(rhs, dtype=float),
            bounds=[(0, None)] * len(objective),
            method="highs")
        assert ours.status == "optimal"
        assert reference.status == 0
        assert ours.objective == pytest.approx(-reference.fun, abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(instance=lp_instances())
    def test_solution_is_feasible(self, instance):
        objective, rows, rhs = instance
        result = solve_lp(objective, rows, rhs)
        assert result.status == "optimal"
        for row, bound in zip(rows, rhs):
            value = sum(a * x for a, x in zip(row, result.values))
            assert value <= bound + 1e-7
        assert all(x >= -1e-9 for x in result.values)
