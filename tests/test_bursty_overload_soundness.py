"""Regression: bursty overload violating the one-per-window assumption.

The paper assumes at most one activation of an overload chain per busy
window of the analyzed chain.  A bursty overload source (two activations
20 apart, then a long pause) breaks that: both burst events land in one
busy window and their combined cost causes a miss that the plain Eq. (5)
/ Eq. (3) combination cost (one segment charge) would not predict.

The analyzer charges within-window multiplicities, so the combination is
correctly classified unschedulable; this file pins the scenario found by
``tools/fuzz_soundness.py`` (automotive population, seed 8 family).
"""


from repro import GuaranteeStatus, PeriodicModel, SystemBuilder, \
    analyze_twca
from repro.arrivals import SporadicBurstModel
from repro.sim import Simulator


def _system():
    return (
        SystemBuilder("bursty")
        .chain("victim", PeriodicModel(100), deadline=80)
        .task("victim.t", priority=1, wcet=45)
        .chain("diag", SporadicBurstModel(inner_distance=20, burst=2,
                                          outer_distance=1000),
               overload=True)
        .task("diag.t", priority=2, wcet=25)
        .build()
    )


class TestBurstyCombination:
    def test_weakly_hard_not_schedulable(self):
        system = _system()
        result = analyze_twca(system, system["victim"])
        assert result.status is GuaranteeStatus.WEAKLY_HARD
        # Full WCL: 45 + 2 * 25 = 95 > 80.
        assert result.wcl == 95

    def test_combination_classified_unschedulable(self):
        """The single active segment costs 25; with the one-per-window
        assumption 45 + 25 = 70 <= 80 would look schedulable.  The
        within-window multiplicity (2 burst events in an 80-window)
        charges 50 and exposes the miss."""
        system = _system()
        result = analyze_twca(system, system["victim"])
        assert len(result.unschedulable) == 1

    def test_dmm_covers_observed_miss(self):
        system = _system()
        result = analyze_twca(system, system["victim"])
        assert result.dmm(1) == 1
        # Simulation: burst at 0 and 20 delays the victim to 95 > 80.
        sim = Simulator(system).run(
            {"victim": [0.0, 100.0, 200.0], "diag": [0.0, 20.0]}, 300)
        assert sim.miss_count("victim") >= 1
        for k in (1, 2, 3):
            assert sim.empirical_dmm("victim", k) <= result.dmm(k)

    def test_rare_variant_matches_paper_criterion(self):
        """With the burst spread out (inner distance > any busy
        window), the assumption holds, the multiplicity is 1 and the
        combination is schedulable again — dmm stays 0."""
        rare = (
            SystemBuilder("rare")
            .chain("victim", PeriodicModel(100), deadline=80)
            .task("victim.t", priority=1, wcet=45)
            .chain("diag", SporadicBurstModel(inner_distance=500,
                                              burst=2,
                                              outer_distance=2000),
                   overload=True)
            .task("diag.t", priority=2, wcet=25)
            .build()
        )
        result = analyze_twca(rare, rare["victim"])
        # One activation per window: 45 + 25 = 70 <= 80.
        assert result.status is GuaranteeStatus.SCHEDULABLE
