"""Tests for miss-pattern synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DeadlineMissModel, analyze_twca
from repro.weaklyhard.patterns import (longest_burst, max_miss_density,
                                       verify_pattern, worst_pattern)


def staircase(table):
    return DeadlineMissModel.from_table(table)


def periodic_dmm(budget, window):
    """dmm of a (budget, window) sliding constraint: budget misses per
    full window plus the clamped remainder."""
    return DeadlineMissModel(
        lambda k: (k // window) * budget + min(k % window, budget)
        if k >= window else min(k, budget + max(0, k - window + budget)))


class TestVerifyPattern:
    def test_accepts_legal(self):
        dmm = periodic_dmm(1, 3)  # at most 1 miss per 3-window
        assert verify_pattern([True, False, False, True], dmm)

    def test_rejects_dense(self):
        dmm = periodic_dmm(1, 3)
        assert not verify_pattern([True, False, True], dmm)

    def test_unconstrained_windows_skipped(self):
        dmm = DeadlineMissModel(lambda k: k)  # vacuous
        assert verify_pattern([True] * 10, dmm)


class TestWorstPattern:
    def test_single_window_constraint_is_optimal(self):
        # 2 misses per 5-window: greedy packs 2 per 5.
        dmm = periodic_dmm(2, 5)
        pattern = worst_pattern(dmm, 15)
        assert verify_pattern(pattern, dmm)
        assert sum(pattern) == 6  # 2 per 5, over 15 positions

    def test_pattern_always_verifies(self):
        for table in ({1: 1, 3: 2}, {1: 1, 2: 1, 10: 3}, {4: 2},
                      {1: 1, 7: 4, 20: 5}):
            dmm = staircase(table)
            pattern = worst_pattern(dmm, 60)
            assert verify_pattern(pattern, dmm), table

    def test_zero_budget_pattern_all_hits(self):
        dmm = staircase({1: 0})
        assert sum(worst_pattern(dmm, 10)) == 0

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            worst_pattern(staircase({1: 1}), 0)

    def test_case_study_pattern(self, figure4_calibrated):
        result = analyze_twca(figure4_calibrated,
                              figure4_calibrated["sigma_c"])
        dmm = DeadlineMissModel(result.dmm)
        pattern = worst_pattern(dmm, 300)
        assert verify_pattern(pattern, dmm)
        # dmm(3)=3 allows an initial triple miss; dmm(76)=4 then forces
        # a long clean stretch.
        assert pattern[:3] == [True, True, True]
        assert sum(pattern[:76]) <= 4


class TestDensityAndBurst:
    def test_density_of_half_model(self):
        dmm = periodic_dmm(1, 2)
        assert max_miss_density(dmm, 100) == pytest.approx(0.5)

    def test_longest_burst(self):
        assert longest_burst(staircase({1: 1, 2: 2, 3: 3, 4: 3})) == 3
        assert longest_burst(staircase({1: 0})) == 0

    def test_case_study_burst(self, figure4_calibrated):
        result = analyze_twca(figure4_calibrated,
                              figure4_calibrated["sigma_c"])
        dmm = DeadlineMissModel(result.dmm)
        assert longest_burst(dmm) == 3  # dmm(3)=3 but dmm(4)=3 < 4


@settings(max_examples=40, deadline=None)
@given(budget=st.integers(0, 4), window=st.integers(1, 8),
       horizon=st.integers(1, 40))
def test_greedy_is_exact_for_single_window(budget, window, horizon):
    if budget > window:
        return
    dmm = DeadlineMissModel(
        lambda k, b=budget, w=window: k if k < w else (k // w) * b
        + min(k % w, b))
    pattern = worst_pattern(dmm, horizon)
    assert verify_pattern(pattern, dmm)