"""Unit tests for the system model: tasks, chains, systems, builder."""


import pytest

from repro import (ChainKind, PeriodicModel, SporadicModel, System,
                   SystemBuilder, Task, TaskChain)


class TestTask:
    def test_basic_construction(self):
        task = Task("t", priority=3, wcet=10)
        assert task.bcet == 10  # defaults to wcet

    def test_rejects_negative_wcet(self):
        with pytest.raises(ValueError):
            Task("t", 1, -1)

    def test_rejects_bcet_above_wcet(self):
        with pytest.raises(ValueError):
            Task("t", 1, 10, bcet=11)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Task("", 1, 1)

    def test_with_priority(self):
        task = Task("t", 1, 10, bcet=5)
        moved = task.with_priority(9)
        assert moved.priority == 9
        assert moved.wcet == 10 and moved.bcet == 5

    def test_is_frozen(self):
        task = Task("t", 1, 10)
        with pytest.raises(Exception):
            task.priority = 2

    def test_str(self):
        assert str(Task("t", 4, 7)) == "t[4:7]"


class TestTaskChain:
    def _chain(self, **kwargs):
        defaults = dict(
            name="c",
            tasks=[Task("a", 3, 10), Task("b", 1, 20), Task("c", 2, 5)],
            activation=PeriodicModel(100),
            deadline=100,
        )
        defaults.update(kwargs)
        return TaskChain(**defaults)

    def test_header_and_tail(self):
        chain = self._chain()
        assert chain.header.name == "a"
        assert chain.tail.name == "c"

    def test_total_wcet(self):
        assert self._chain().total_wcet == 35

    def test_min_max_priority(self):
        chain = self._chain()
        assert chain.min_priority == 1
        assert chain.max_priority == 3

    def test_rejects_duplicate_tasks(self):
        with pytest.raises(ValueError):
            self._chain(tasks=[Task("a", 1, 1), Task("a", 2, 1)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            self._chain(tasks=[])

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError):
            self._chain(deadline=0)

    def test_default_is_synchronous_without_deadline(self):
        chain = TaskChain("c", [Task("a", 1, 1)], PeriodicModel(10))
        assert chain.is_synchronous
        assert not chain.has_deadline

    def test_header_prefix_stops_at_lowest_priority(self):
        chain = self._chain()  # priorities 3, 1, 2 -> prefix is (a,)
        assert [t.name for t in chain.header_prefix()] == ["a"]

    def test_header_prefix_empty_when_header_lowest(self):
        chain = self._chain(tasks=[Task("a", 1, 1), Task("b", 2, 1)])
        assert chain.header_prefix() == ()

    def test_utilization(self):
        assert self._chain().utilization() == pytest.approx(0.35)

    def test_with_activation(self):
        chain = self._chain()
        swapped = chain.with_activation(SporadicModel(500))
        assert isinstance(swapped.activation, SporadicModel)
        assert swapped.deadline == chain.deadline

    def test_iteration_and_indexing(self):
        chain = self._chain()
        assert len(chain) == 3
        assert chain[1].name == "b"
        assert [t.name for t in chain] == ["a", "b", "c"]


class TestSystem:
    def _system(self):
        return (
            SystemBuilder("s")
            .chain("one", PeriodicModel(100), deadline=100)
            .task("one.a", priority=4, wcet=10)
            .task("one.b", priority=1, wcet=10)
            .chain("two", SporadicModel(400), overload=True)
            .task("two.a", priority=3, wcet=5)
            .build()
        )

    def test_lookup(self):
        system = self._system()
        assert system["one"].name == "one"
        assert "two" in system
        with pytest.raises(KeyError):
            system["missing"]

    def test_duplicate_chain_names_rejected(self):
        chain = TaskChain("c", [Task("x", 1, 1)], PeriodicModel(10))
        other = TaskChain("c", [Task("y", 2, 1)], PeriodicModel(10))
        with pytest.raises(ValueError):
            System([chain, other])

    def test_shared_tasks_rejected(self):
        shared = Task("x", 1, 1)
        with pytest.raises(ValueError):
            System([TaskChain("c1", [shared], PeriodicModel(10)),
                    TaskChain("c2", [shared], PeriodicModel(10))])

    def test_shared_priorities_rejected_by_default(self):
        with pytest.raises(ValueError):
            System([
                TaskChain("c1", [Task("x", 1, 1)], PeriodicModel(10)),
                TaskChain("c2", [Task("y", 1, 1)], PeriodicModel(10)),
            ])
        System([
            TaskChain("c1", [Task("x", 1, 1)], PeriodicModel(10)),
            TaskChain("c2", [Task("y", 1, 1)], PeriodicModel(10)),
        ], allow_shared_priorities=True)

    def test_overload_partition(self):
        system = self._system()
        assert [c.name for c in system.overload_chains] == ["two"]
        assert [c.name for c in system.typical_chains] == ["one"]

    def test_without_overload(self):
        typical = self._system().without_overload()
        assert len(typical) == 1
        assert "two" not in typical

    def test_without_overload_needs_typical_chain(self):
        system = System([TaskChain(
            "only", [Task("x", 1, 1)], PeriodicModel(10), overload=True)])
        with pytest.raises(ValueError):
            system.without_overload()

    def test_with_priorities(self):
        system = self._system()
        remapped = system.with_priorities(
            {"one.a": 1, "one.b": 3, "two.a": 4})
        assert remapped["one"].tasks[0].priority == 1
        # Original untouched.
        assert system["one"].tasks[0].priority == 4

    def test_with_priorities_requires_full_cover(self):
        with pytest.raises(ValueError):
            self._system().with_priorities({"one.a": 1})

    def test_utilization_split(self):
        system = self._system()
        assert system.typical_utilization() == pytest.approx(0.2)
        assert system.utilization() == pytest.approx(0.2 + 5 / 400)

    def test_validate(self):
        self._system().validate()

    def test_validate_rejects_overload_utilization(self):
        overloaded = (
            SystemBuilder("bad")
            .chain("c", PeriodicModel(10), deadline=10)
            .task("c.a", priority=1, wcet=11)
            .build()
        )
        with pytest.raises(ValueError):
            overloaded.validate()


class TestBuilder:
    def test_task_before_chain_fails(self):
        with pytest.raises(ValueError):
            SystemBuilder().task("x", 1, 1)

    def test_empty_builder_fails(self):
        with pytest.raises(ValueError):
            SystemBuilder().build()

    def test_round_trip_matches_direct_construction(self):
        built = (
            SystemBuilder("s")
            .chain("c", PeriodicModel(100), deadline=50,
                   kind=ChainKind.ASYNCHRONOUS)
            .task("c.a", priority=2, wcet=1)
            .build()
        )
        assert built["c"].kind is ChainKind.ASYNCHRONOUS
        assert built["c"].deadline == 50
