"""Tests for the distributed extension (model, propagation, analysis)."""

import math

import pytest

from repro.analysis import BusyWindowDivergence
from repro.arrivals import PeriodicModel, SporadicModel
from repro.distributed import (DistributedChain, DistributedSystem,
                               PropagatedModel, analyze_distributed,
                               distributed_dmm, jitter_of, on, propagate)
from repro.model import Task


def _pipeline_system(overload_wcet=25, deadline=120):
    pipeline = DistributedChain(
        "pipeline",
        [on("cpu0", Task("p.read", priority=2, wcet=10, bcet=5)),
         on("cpu0", Task("p.filter", priority=1, wcet=15, bcet=10)),
         on("cpu1", Task("p.fuse", priority=2, wcet=20, bcet=12)),
         on("cpu1", Task("p.act", priority=1, wcet=10, bcet=8))],
        PeriodicModel(100), deadline=deadline)
    noise = DistributedChain(
        "noise",
        [on("cpu1", Task("n.irq", priority=3, wcet=overload_wcet))],
        SporadicModel(400), overload=True)
    local = DistributedChain(
        "local",
        [on("cpu0", Task("l.t", priority=3, wcet=8))],
        PeriodicModel(50), deadline=50)
    return DistributedSystem([pipeline, noise, local], name="demo")


class TestModel:
    def test_legs_split_on_resource_change(self):
        system = _pipeline_system()
        legs = system["pipeline"].legs()
        assert [(r, [t.name for t in ts]) for r, ts in legs] == [
            ("cpu0", ["p.read", "p.filter"]),
            ("cpu1", ["p.fuse", "p.act"]),
        ]

    def test_ping_pong_mapping_gives_three_legs(self):
        chain = DistributedChain(
            "zigzag",
            [on("a", Task("t1", 1, 1)),
             on("b", Task("t2", 1, 1)),
             on("a", Task("t3", 2, 1))],
            PeriodicModel(10))
        assert chain.resources == ["a", "b", "a"]
        assert len(chain.legs()) == 3

    def test_duplicate_task_mapping_rejected(self):
        task = Task("dup", 1, 1)
        with pytest.raises(ValueError):
            DistributedSystem([
                DistributedChain("c1", [on("a", task)], PeriodicModel(10)),
                DistributedChain("c2", [on("b", task)], PeriodicModel(10)),
            ])

    def test_tasks_on(self):
        system = _pipeline_system()
        assert {t.name for t in system.tasks_on("cpu1")} == {
            "p.fuse", "p.act", "n.irq"}

    def test_resources_sorted(self):
        assert _pipeline_system().resources == ("cpu0", "cpu1")

    def test_lookup_errors(self):
        system = _pipeline_system()
        with pytest.raises(KeyError):
            system["missing"]


class TestPropagation:
    def test_periodic_jitter_grows_by_spread(self):
        out = propagate(PeriodicModel(100), wcl=33, bcl=15,
                        last_task_bcet=10)
        assert isinstance(out, PeriodicModel)
        assert out.period == 100
        assert out.jitter == 18
        assert out.min_distance == 10

    def test_zero_spread_is_identity(self):
        model = PeriodicModel(100, jitter=5)
        assert propagate(model, wcl=20, bcl=20) is model

    def test_sporadic_becomes_propagated_model(self):
        out = propagate(SporadicModel(100), wcl=30, bcl=10)
        assert isinstance(out, PropagatedModel)
        assert out.delta_minus(2) == 80  # squeezed by the spread
        assert math.isinf(out.delta_plus(2))

    def test_propagated_floor(self):
        out = propagate(SporadicModel(100), wcl=300, bcl=10,
                        last_task_bcet=4)
        # 100 - 290 < 0 -> floored at (k-1) * last_task_bcet.
        assert out.delta_minus(2) == 4
        assert out.delta_minus(4) == 12

    def test_wcl_below_bcl_rejected(self):
        with pytest.raises(ValueError):
            propagate(PeriodicModel(10), wcl=5, bcl=6)

    def test_propagated_duality(self):
        from repro.arrivals.algebra import check_duality
        check_duality(propagate(SporadicModel(100), 30, 10, 5))

    def test_output_rate_preserved(self):
        out = propagate(SporadicModel(100), wcl=30, bcl=10)
        assert out.rate() == pytest.approx(1 / 100)

    def test_jitter_of(self):
        assert jitter_of(PeriodicModel(100, jitter=7)) == 7
        out = propagate(PeriodicModel(100), 33, 15)
        assert jitter_of(out) == 18


class TestAnalysis:
    def test_converges_quickly(self):
        result = analyze_distributed(_pipeline_system())
        assert result.iterations <= 4

    def test_leg_wcls(self):
        result = analyze_distributed(_pipeline_system())
        e2e = result["pipeline"]
        # Leg 0 on cpu0: 25 + one 'local' interference (8) = 33.
        assert e2e.legs[0].wcl == 33
        # Leg 1 on cpu1: 30 + noise (25) = 55.
        assert e2e.legs[1].wcl == 55
        assert e2e.wcl == 88

    def test_second_leg_sees_propagated_jitter(self):
        result = analyze_distributed(_pipeline_system())
        model = result["pipeline"].legs[1].input_model
        assert isinstance(model, PeriodicModel)
        assert model.jitter == 18  # wcl 33 - bcl 15

    def test_e2e_deadline_verdict(self):
        assert analyze_distributed(
            _pipeline_system())["pipeline"].meets_deadline
        tight = _pipeline_system(deadline=80)
        assert not analyze_distributed(tight)["pipeline"].meets_deadline

    def test_budgets_sum_to_deadline(self):
        result = analyze_distributed(_pipeline_system())
        budgets = result["pipeline"].leg_budgets()
        assert sum(budgets) == pytest.approx(120)
        for budget, leg in zip(budgets, result["pipeline"].legs):
            assert budget >= leg.bcl

    def test_overloaded_resource_raises(self):
        hog = DistributedChain(
            "hog", [on("cpu0", Task("h.t", priority=9, wcet=60))],
            PeriodicModel(50))
        system = DistributedSystem(
            [_pipeline_system()["pipeline"], hog], name="hot")
        with pytest.raises(BusyWindowDivergence):
            analyze_distributed(system)

    def test_single_resource_matches_uniprocessor(self):
        """A distributed chain living on one resource must reproduce the
        plain uniprocessor analysis."""
        from repro import SystemBuilder, analyze_latency
        chain = DistributedChain(
            "mono",
            [on("cpu", Task("m.a", priority=2, wcet=10)),
             on("cpu", Task("m.b", priority=1, wcet=20))],
            PeriodicModel(100), deadline=100)
        other = DistributedChain(
            "other", [on("cpu", Task("o.t", priority=3, wcet=5))],
            PeriodicModel(40), deadline=40)
        result = analyze_distributed(
            DistributedSystem([chain, other], name="mono"))
        assert len(result["mono"].legs) == 1

        reference = (
            SystemBuilder("ref")
            .chain("mono", PeriodicModel(100), deadline=100)
            .task("m.a", priority=2, wcet=10)
            .task("m.b", priority=1, wcet=20)
            .chain("other", PeriodicModel(40), deadline=40)
            .task("o.t", priority=3, wcet=5)
            .build()
        )
        expected = analyze_latency(reference, reference["mono"]).wcl
        assert result["mono"].wcl == expected


class TestDistributedDmm:
    def test_meeting_chain_gets_zero(self):
        system = _pipeline_system()
        assert distributed_dmm(system, "pipeline", 10) == 0

    def test_overloaded_chain_gets_bounded_dmm(self):
        system = _pipeline_system(overload_wcet=60, deadline=95)
        analysis = analyze_distributed(system)
        assert not analysis["pipeline"].meets_deadline
        dmm = distributed_dmm(system, "pipeline", 10, analysis=analysis)
        assert 1 <= dmm <= 10

    def test_dmm_monotone_in_k(self):
        system = _pipeline_system(overload_wcet=60, deadline=95)
        analysis = analyze_distributed(system)
        values = [distributed_dmm(system, "pipeline", k,
                                  analysis=analysis)
                  for k in (1, 2, 5, 10)]
        assert values == sorted(values)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            distributed_dmm(_pipeline_system(), "pipeline", 0)


class TestMultiHopPropagation:
    def test_propagated_of_propagated(self):
        """Two hops over a curve model stack distortions correctly."""
        from repro.arrivals.algebra import check_duality
        base = SporadicModel(100)
        hop1 = propagate(base, wcl=30, bcl=10, last_task_bcet=5)
        hop2 = propagate(hop1, wcl=50, bcl=20, last_task_bcet=8)
        # Total squeeze: (30-10) + (50-20) = 50.
        assert hop2.delta_minus(2) == 100 - 50
        check_duality(hop2)

    def test_floor_propagates(self):
        base = SporadicModel(100)
        hop1 = propagate(base, wcl=300, bcl=10, last_task_bcet=6)
        hop2 = propagate(hop1, wcl=400, bcl=10, last_task_bcet=9)
        # Both hops squeeze past zero; the final floor is the last
        # task's best case.
        assert hop2.delta_minus(2) == 9

    def test_three_resource_chain_converges(self):
        chain = DistributedChain(
            "triple",
            [on("a", Task("t0", priority=3, wcet=5, bcet=3)),
             on("b", Task("t1", priority=2, wcet=7, bcet=4)),
             on("c", Task("t2", priority=1, wcet=6, bcet=5))],
            PeriodicModel(50), deadline=60)
        side = DistributedChain(
            "side", [on("b", Task("s0", priority=9, wcet=4))],
            PeriodicModel(40), deadline=40)
        system = DistributedSystem([chain, side], name="three")
        result = analyze_distributed(system)
        assert len(result["triple"].legs) == 3
        assert result["triple"].wcl >= 18  # at least the summed WCETs
