"""Exhaustive validation on a tiny system: every priority permutation.

For a 5-task system all 120 priority assignments are enumerated; for
each, the full analysis pipeline runs and the critical-instant
simulation must respect every bound.  This catches classification,
segment, and ILP errors that random sampling could miss.
"""


import pytest

from repro import (ChainKind, GuaranteeStatus, PeriodicModel,
                   SporadicModel, SystemBuilder, analyze_latency,
                   analyze_twca)
from repro.sim import simulate_worst_case
from repro.synth import exhaustive_assignments


def _base_system():
    return (
        SystemBuilder("tiny5")
        .chain("x", PeriodicModel(60), deadline=40)
        .task("x1", priority=1, wcet=6)
        .task("x2", priority=2, wcet=9)
        .chain("y", PeriodicModel(90), deadline=90)
        .task("y1", priority=3, wcet=12)
        .task("y2", priority=4, wcet=7)
        .chain("ov", SporadicModel(400), overload=True)
        .task("ov1", priority=5, wcet=30)
        .build()
    )


@pytest.fixture(scope="module")
def verdicts():
    """Analysis + simulation for all 120 permutations (computed once)."""
    base = _base_system()
    rows = []
    for assignment in exhaustive_assignments(base):
        system = base.with_priorities(assignment)
        record = {"assignment": assignment, "twca": {}, "sim": None}
        try:
            sim = simulate_worst_case(system, 2500)
        except Exception as exc:  # pragma: no cover - would be a bug
            raise AssertionError(
                f"simulation crashed under {assignment}: {exc}")
        record["sim"] = sim
        for name in ("x", "y"):
            record["twca"][name] = analyze_twca(system, system[name])
        rows.append(record)
    return rows


class TestExhaustivePermutations:
    def test_all_120_permutations_analyzed(self, verdicts):
        assert len(verdicts) == 120

    def test_latency_bounds_hold_everywhere(self, verdicts):
        for record in verdicts:
            sim = record["sim"]
            for name, twca in record["twca"].items():
                if twca.full_latency is None:
                    continue
                observed = sim.max_latency(name)
                assert observed <= twca.wcl + 1e-9, (
                    f"{name} under {record['assignment']}: "
                    f"{observed} > {twca.wcl}")

    def test_dmm_bounds_hold_everywhere(self, verdicts):
        for record in verdicts:
            sim = record["sim"]
            for name, twca in record["twca"].items():
                for k in (1, 3, 8):
                    observed = sim.empirical_dmm(name, k)
                    assert observed <= twca.dmm(k), (
                        f"{name} k={k} under {record['assignment']}: "
                        f"{observed} > {twca.dmm(k)}")

    def test_every_status_class_appears(self, verdicts):
        """The permutation space must exercise all three verdicts
        (otherwise the fixture is too easy to be meaningful)."""
        statuses = {twca.status
                    for record in verdicts
                    for twca in record["twca"].values()}
        assert GuaranteeStatus.SCHEDULABLE in statuses
        assert GuaranteeStatus.WEAKLY_HARD in statuses

    def test_schedulable_chains_never_miss_in_simulation(self, verdicts):
        for record in verdicts:
            sim = record["sim"]
            for name, twca in record["twca"].items():
                if twca.status is GuaranteeStatus.SCHEDULABLE:
                    assert sim.miss_count(name) == 0, (
                        f"{name} under {record['assignment']} missed "
                        "despite a schedulability proof")

    def test_dmm_zero_implies_no_observed_miss(self, verdicts):
        for record in verdicts:
            sim = record["sim"]
            for name, twca in record["twca"].items():
                if twca.has_guarantee and twca.dmm(10) == 0:
                    assert sim.miss_count(name) == 0


class TestAsyncVariantSweep:
    """The same sweep with chain 'x' asynchronous — a configuration the
    paper's formulas treat differently (Theorem 1 line 2)."""

    def test_async_bounds_hold(self):
        base = (
            SystemBuilder("tiny-async")
            .chain("x", PeriodicModel(60), deadline=120,
                   kind=ChainKind.ASYNCHRONOUS)
            .task("x1", priority=1, wcet=6)
            .task("x2", priority=2, wcet=9)
            .chain("y", PeriodicModel(90), deadline=90)
            .task("y1", priority=3, wcet=12)
            .task("y2", priority=4, wcet=7)
            .chain("ov", SporadicModel(400), overload=True)
            .task("ov1", priority=5, wcet=11)
            .build()
        )
        checked = 0
        for index, assignment in enumerate(
                exhaustive_assignments(base)):
            if index % 5:  # 24 spread-out permutations keep this fast
                continue
            system = base.with_priorities(assignment)
            sim = simulate_worst_case(system, 2500)
            for name in ("x", "y"):
                result = analyze_latency(system, system[name])
                assert sim.max_latency(name) <= result.wcl + 1e-9, (
                    f"{name} under {assignment}")
            checked += 1
        assert checked == 24
