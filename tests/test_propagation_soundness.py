"""Empirical soundness of output event-model propagation.

The distributed/path layers rely on one claim: the *output* stream of a
leg (tail-task finish times) conforms to the propagated event model
``propagate(input, wcl, bcl, ...)``.  These tests simulate systems,
extract the real output streams, and check them against the analytical
output curves — for worst-case and randomized activations, synchronous
and asynchronous chains.
"""

import random

import pytest

from repro import ChainKind, PeriodicModel, SporadicModel, SystemBuilder
from repro.analysis import analyze_latency
from repro.arrivals import ArrivalCurve
from repro.distributed import propagate
from repro.sim import Simulator, randomized_activations, \
    worst_case_activations


def output_stream(result, chain_name):
    """Tail-finish timestamps of all completed instances."""
    return sorted(rec.finish for rec in result.instances[chain_name]
                  if rec.finish is not None)


def assert_conforms(times, model, depth=6):
    """Every k-window of the stream spans at least delta_minus(k)."""
    for k in range(2, depth + 1):
        required = model.delta_minus(k)
        for i in range(len(times) - k + 1):
            span = times[i + k - 1] - times[i]
            assert span >= required - 1e-9, (
                f"output spacing violated: {k} events span {span} "
                f"< {required}")


def _system(kind=ChainKind.SYNCHRONOUS):
    return (
        SystemBuilder("prop")
        .chain("flow", PeriodicModel(50), deadline=200, kind=kind)
        .task("f1", priority=2, wcet=8, bcet=4)
        .task("f2", priority=1, wcet=12, bcet=7)
        .chain("noise", SporadicModel(170), overload=False)
        .task("n1", priority=3, wcet=9, bcet=9)
        .build()
    )


class TestWorstCaseConformance:
    @pytest.mark.parametrize("kind", [ChainKind.SYNCHRONOUS,
                                      ChainKind.ASYNCHRONOUS])
    def test_output_conforms_to_propagated_model(self, kind):
        system = _system(kind)
        chain = system["flow"]
        analysis = analyze_latency(system, chain)
        bcl = sum(t.bcet for t in chain.tasks)
        output_model = propagate(chain.activation, analysis.wcl, bcl,
                                 last_task_bcet=chain.tail.bcet)
        sim = Simulator(system).run(
            worst_case_activations(system, 4000), 4000)
        stream = output_stream(sim, "flow")
        assert len(stream) > 20
        assert_conforms(stream, output_model)


class TestRandomizedConformance:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_activations_conform(self, seed):
        rng = random.Random(seed)
        system = _system(ChainKind.SYNCHRONOUS
                         if seed % 2 else ChainKind.ASYNCHRONOUS)
        chain = system["flow"]
        analysis = analyze_latency(system, chain)
        bcl = sum(t.bcet for t in chain.tasks)
        output_model = propagate(chain.activation, analysis.wcl, bcl,
                                 last_task_bcet=chain.tail.bcet)
        sim = Simulator(system).run(
            randomized_activations(system, 4000, rng, 0.4), 4000)
        stream = output_stream(sim, "flow")
        if len(stream) >= 4:
            assert_conforms(stream, output_model)


class TestObservedTighterThanModel:
    def test_trace_curve_dominates_propagated_model(self):
        """The curve measured from the actual output trace is at least
        as sparse as the propagated (conservative) model promises."""
        system = _system()
        chain = system["flow"]
        analysis = analyze_latency(system, chain)
        bcl = sum(t.bcet for t in chain.tasks)
        output_model = propagate(chain.activation, analysis.wcl, bcl,
                                 last_task_bcet=chain.tail.bcet)
        sim = Simulator(system).run(
            worst_case_activations(system, 6000), 6000)
        observed = ArrivalCurve.from_trace(output_stream(sim, "flow"))
        for k in range(2, 8):
            assert observed.delta_minus(k) >= \
                output_model.delta_minus(k) - 1e-9
