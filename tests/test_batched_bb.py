"""Batched best-first branch-and-bound equality.

The heap-driven search resolves whole frontiers of open-node
relaxations through ``IncrementalLp.solve_many``; it must compute
exactly the optimum of the historic recursive reference
(``incremental=False``: one cold two-phase relaxation per node), with
a feasible incumbent, on randomized integer programs — cold, warm
(state carried across an rhs schedule) and under either kernel — and
agree with scipy's exact solver when it is installed.
"""

import math
import random

import pytest

from repro.ilp import (
    IntegerProgram,
    scipy_available,
    solve_branch_bound,
    solve_scipy,
)
from repro.ilp.branch_bound import BranchBoundState
from repro.ilp.simplex import IncrementalLp
from repro.kernel import HAVE_NUMPY, using_kernel

KERNELS = ("python", "numpy") if HAVE_NUMPY else ("python",)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def random_program(rng):
    num_vars = rng.randint(2, 6)
    num_rows = rng.randint(2, 5)
    objective = [float(rng.randint(0, 6)) for _ in range(num_vars)]
    rows = [
        [float(rng.choice((0, 0, 1, 1, 2, 3))) for _ in range(num_vars)]
        for _ in range(num_rows)
    ]
    # Every variable must appear in some row so the program is bounded
    # (the packing engine's Theorem 3 programs always are).
    for j in range(num_vars):
        if all(row[j] == 0 for row in rows):
            rows[rng.randrange(num_rows)][j] = 1.0
    rhs = [float(rng.randint(0, 12)) for _ in range(num_rows)]
    upper = None
    if rng.random() < 0.5:
        upper = [float(rng.randint(0, 6)) for _ in range(num_vars)]
    return IntegerProgram(
        objective=objective, rows=rows, rhs=rhs, upper_bounds=upper
    )


def rescaled(base, scale):
    return IntegerProgram(
        objective=list(base.objective),
        rows=[list(row) for row in base.rows],
        rhs=[b * scale for b in base.rhs],
        upper_bounds=list(base.upper_bounds) if base.upper_bounds else None,
    )


class TestBatchedEqualsRecursive:
    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_programs(self, seed):
        rng = random.Random(seed)
        for round_index in range(25):
            program = random_program(rng)
            per_kernel = []
            for kernel in KERNELS:
                with using_kernel(kernel):
                    batched = solve_branch_bound(program)
                    reference = solve_branch_bound(program, incremental=False)
                assert batched.status == reference.status
                assert math.isclose(
                    batched.objective, reference.objective, abs_tol=1e-6
                )
                if batched.status == "optimal":
                    assert program.is_feasible(batched.values)
                    assert math.isclose(
                        program.objective_value(batched.values),
                        batched.objective,
                        abs_tol=1e-6,
                    )
                per_kernel.append((batched.status, batched.objective))
            assert all(entry == per_kernel[0] for entry in per_kernel)
            if scipy_available() and round_index % 5 == 0:
                exact = solve_scipy(program)
                if exact.status == "optimal":
                    assert math.isclose(
                        per_kernel[0][1], exact.objective, abs_tol=1e-4
                    )

    @pytest.mark.parametrize("seed", (2, 5, 8, 13))
    def test_warm_state_schedule_matches_cold(self, seed):
        rng = random.Random(100 + seed)
        base = random_program(rng)
        state = BranchBoundState()
        for scale in (1.0, 1.5, 2.0, 1.0):
            program = rescaled(base, scale)
            warm = solve_branch_bound(program, state)
            cold = solve_branch_bound(program, incremental=False)
            assert warm.status == cold.status
            assert math.isclose(warm.objective, cold.objective, abs_tol=1e-6)
            if warm.status == "optimal":
                assert program.is_feasible(warm.values)
                # Carry the incumbent like the packing engine does; the
                # next solve re-checks it against its own program, so a
                # stale seed can never leak into the optimum.
                state.incumbent = warm


class TestSolveMany:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_independent_cold_solves(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(1, 5)
        num_rows = rng.randint(1, 5)
        objective = [float(rng.randint(0, 5)) for _ in range(num_vars)]
        rows = [
            [float(rng.choice((0, 1, 1, 2))) for _ in range(num_vars)]
            for _ in range(num_rows)
        ]
        for j in range(num_vars):
            if all(row[j] == 0 for row in rows):
                rows[rng.randrange(num_rows)][j] = 1.0
        schedule = [
            [float(rng.randint(0, 9)) for _ in range(num_rows)] for _ in range(12)
        ]
        for kernel in KERNELS:
            with using_kernel(kernel):
                lp = IncrementalLp(objective, rows)
                lp.solve(schedule[0])  # establish a basis to share
                batch = lp.solve_many(schedule)
                assert len(batch) == len(schedule)
                for rhs, result in zip(schedule, batch):
                    cold = IncrementalLp(objective, rows).solve(rhs)
                    assert result.status == cold.status
                    if result.status == "optimal":
                        assert math.isclose(
                            result.objective,
                            cold.objective,
                            rel_tol=1e-9,
                            abs_tol=1e-9,
                        )
                        for row, b in zip(rows, rhs):
                            used = sum(
                                a * v for a, v in zip(row, result.values)
                            )
                            assert used <= b + 1e-7
                        assert all(v >= -1e-9 for v in result.values)

    @needs_numpy
    def test_warm_columns_take_no_pivots(self):
        # Identical rhs columns after a solved basis are pure
        # ``B^-1 . RHS`` reads: warm_solves counts them, pivot counts
        # stay frozen at the cold solve's value.
        objective = [3.0, 2.0]
        rows = [[1.0, 1.0], [2.0, 1.0]]
        with using_kernel("numpy"):
            lp = IncrementalLp(objective, rows)
            first = lp.solve([4.0, 6.0])
            warm_before = lp.warm_solves
            batch = lp.solve_many([[4.0, 6.0]] * 5)
            assert [r.objective for r in batch] == [first.objective] * 5
            assert [r.pivots for r in batch] == [first.pivots] * 5
            assert lp.warm_solves == warm_before + 5

    def test_rejects_mismatched_rhs_lengths(self):
        lp = IncrementalLp([1.0], [[1.0]])
        with pytest.raises(ValueError):
            lp.solve_many([[1.0], [1.0, 2.0]])


def corrupt_inverse(lp, factor):
    """Scale the slack columns of the retained tableau — the tracked
    ``B^-1`` — simulating the roundoff a product-form inverse
    accumulates over hundreds of pivots, far past tolerance."""
    tableau = lp._tableau
    offset = tableau.num_vars
    if tableau._matrix is None:
        for row in tableau.rows:
            for j in range(offset, offset + tableau.num_rows):
                row[j] *= factor
    else:
        tableau._matrix[:, offset : offset + tableau.num_rows] *= factor


class TestDriftCertificates:
    """A degraded basis inverse must never surface a wrong optimum.

    Long-carried warm state drifts: the tableau stays internally
    consistent while its answers leave the true optimum.  The warm
    paths re-prove every answer against the pristine program data and
    re-derive cold on failure, so results match a fresh solver exactly
    even after the inverse is corrupted outright.
    """

    OBJECTIVE = [3.0, 2.0, 4.0]
    ROWS = [[1.0, 1.0, 2.0], [2.0, 1.0, 1.0], [1.0, 2.0, 1.0]]
    SCHEDULE = [[8.0, 9.0, 7.0], [6.0, 11.0, 8.0], [9.0, 9.0, 9.0]]

    @pytest.mark.parametrize("factor", (0.999, 1.001))
    def test_scalar_warm_heals_to_cold(self, factor):
        for kernel in KERNELS:
            with using_kernel(kernel):
                lp = IncrementalLp(self.OBJECTIVE, self.ROWS)
                lp.solve([4.0, 6.0, 5.0])
                corrupt_inverse(lp, factor)
                for rhs in self.SCHEDULE:
                    warm = lp.solve(rhs)
                    cold = IncrementalLp(self.OBJECTIVE, self.ROWS).solve(rhs)
                    assert warm.status == cold.status
                    assert math.isclose(
                        warm.objective, cold.objective, abs_tol=1e-9
                    )
                # At least one certificate failure re-derived cold and
                # thereby rebuilt the factorization.
                assert lp.cold_solves >= 2

    @pytest.mark.parametrize("factor", (0.999, 1.001))
    def test_solve_many_heals_to_cold(self, factor):
        for kernel in KERNELS:
            with using_kernel(kernel):
                lp = IncrementalLp(self.OBJECTIVE, self.ROWS)
                lp.solve([4.0, 6.0, 5.0])
                corrupt_inverse(lp, factor)
                batch = lp.solve_many(self.SCHEDULE)
                for rhs, warm in zip(self.SCHEDULE, batch):
                    cold = IncrementalLp(self.OBJECTIVE, self.ROWS).solve(rhs)
                    assert warm.status == cold.status
                    assert math.isclose(
                        warm.objective, cold.objective, abs_tol=1e-9
                    )
