"""Tests for deadline sensitivity and the criterion refinement it
exposed."""


import pytest

from repro import analyze_twca
from repro.opt import deadline_frontier, minimal_deadline


class TestMinimalDeadline:
    def test_zero_miss_needs_wcl(self, figure4):
        # dmm(10) == 0 requires D >= WCL = 331.
        deadline = minimal_deadline(figure4, "sigma_c",
                                    misses=0, window=10)
        assert deadline == pytest.approx(331, abs=1)

    def test_schedulable_chain_can_tighten(self, figure4):
        # sigma_d has WCL 175 < 200: its minimal 0-miss deadline is 175.
        deadline = minimal_deadline(figure4, "sigma_d",
                                    misses=0, window=10)
        assert deadline == pytest.approx(175, abs=1)

    def test_allowing_misses_never_raises_requirement(self, figure4):
        strict = minimal_deadline(figure4, "sigma_c", misses=0,
                                  window=10)
        relaxed = minimal_deadline(figure4, "sigma_c", misses=5,
                                   window=10)
        assert relaxed <= strict + 1


class TestDeadlineFrontier:
    def test_frontier_monotone_nonincreasing(self, figure4):
        """Larger deadlines can only help — guaranteed by the exact
        Def. 10 criterion (Eq. (5) alone violates this, see below)."""
        frontier = deadline_frontier(
            figure4, "sigma_c", [180, 200, 250, 300, 331, 400], k=10)
        values = [frontier[d] for d in sorted(frontier)]
        assert values == sorted(values, reverse=True)

    def test_frontier_hits_zero_at_wcl(self, figure4):
        frontier = deadline_frontier(figure4, "sigma_c", [331], k=10)
        assert frontier[331] == 0

    def test_vacuous_below_typical_wcl(self, figure4):
        # Typical WCL of sigma_c is 166: below it no guarantee exists.
        frontier = deadline_frontier(figure4, "sigma_c", [150], k=10)
        assert frontier[150] == 10


class TestCriterionRefinement:
    """The exact Def. 10 (Eq. 3) re-check vs the Eq. (5) threshold."""

    def _system_with_deadline(self, figure4, deadline):
        from repro.model import System, TaskChain
        chains = []
        for chain in figure4.chains:
            if chain.name == "sigma_c":
                chains.append(TaskChain(
                    chain.name, chain.tasks, chain.activation, deadline,
                    chain.kind, chain.overload))
            else:
                chains.append(chain)
        return System(chains, name="d-sweep")

    def test_eq5_alone_is_more_conservative_at_large_d(self, figure4):
        system = self._system_with_deadline(figure4, 250)
        exact = analyze_twca(system, system["sigma_c"])
        blunt = analyze_twca(system, system["sigma_c"],
                             exact_criterion=False)
        # Eq. (5)'s window delta(q)+250 pulls in a second sigma_d
        # activation, flagging every combination unschedulable.
        assert len(blunt.unschedulable) == 3
        assert len(exact.unschedulable) == 1
        assert exact.dmm(10) <= blunt.dmm(10)

    def test_both_agree_on_paper_configuration(self, figure4):
        exact = analyze_twca(figure4, figure4["sigma_c"])
        blunt = analyze_twca(figure4, figure4["sigma_c"],
                             exact_criterion=False)
        assert len(exact.unschedulable) == len(blunt.unschedulable) == 1
        for k in (3, 7, 10):
            assert exact.dmm(k) == blunt.dmm(k)
