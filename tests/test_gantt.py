"""Tests for the ASCII Gantt renderer."""


from repro import PeriodicModel, SystemBuilder
from repro.sim import Simulator, render_gantt


def _result():
    system = (
        SystemBuilder("g")
        .chain("c", PeriodicModel(50), deadline=50)
        .task("c.a", priority=2, wcet=10)
        .task("c.b", priority=1, wcet=5)
        .build()
    )
    return Simulator(system).run({"c": [0.0, 50.0]}, 100)


class TestRenderGantt:
    def test_one_row_per_task_and_chain(self):
        text = render_gantt(_result(), until=100, width=50)
        lines = text.splitlines()
        labels = [line.split("|")[0].strip() for line in lines[:-1]]
        assert "c.a" in labels and "c.b" in labels and "c" in labels

    def test_execution_marked_with_instance_digit(self):
        text = render_gantt(_result(), until=100, width=100)
        row_a = [line for line in text.splitlines()
                 if line.startswith("c.a")][0]
        assert "0" in row_a and "1" in row_a

    def test_activation_markers(self):
        text = render_gantt(_result(), until=100, width=100)
        chain_row = [line for line in text.splitlines()
                     if line.split("|")[0].strip() == "c"][0]
        assert chain_row.count("^") == 2

    def test_empty_schedule(self):
        system = (
            SystemBuilder("e")
            .chain("c", PeriodicModel(50), deadline=50)
            .task("c.a", priority=1, wcet=10)
            .build()
        )
        result = Simulator(system).run({"c": []}, 100)
        assert render_gantt(result) == "(empty schedule)"

    def test_width_respected(self):
        text = render_gantt(_result(), until=100, width=40)
        for line in text.splitlines()[:-1]:
            body = line.split("|")[1]
            assert len(body) == 40
