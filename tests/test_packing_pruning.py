"""The minimal-combination pruning must never change the DMM optimum.

Theorem 3's packing only needs inclusion-minimal unschedulable
combinations: a packed superset can always be swapped for a minimal
subset without losing count or feasibility.  These tests verify the
claim empirically against the unpruned ILP.
"""

import random

import pytest

from repro import analyze_twca
from repro.synth import (GeneratorConfig, generate_feasible_system,
                         random_systems)


def _dmm_without_pruning(result, k):
    """Re-solve the packing over the full unschedulable set."""
    import math
    from repro.ilp import IntegerProgram, solve

    if not result.unschedulable:
        return 0
    omegas = {name: result.omega(name, k)
              for name in result.active_segments}
    if any(math.isinf(o) for o in omegas.values()):
        return k
    rows, rhs = [], []
    for name in sorted(result.active_segments):
        for segment in result.active_segments[name]:
            row = [1.0 if c.uses(segment) else 0.0
                   for c in result.unschedulable]
            if any(row):
                rows.append(row)
                rhs.append(float(omegas[name]))
    solution = solve(IntegerProgram(
        objective=[1.0] * len(result.unschedulable),
        rows=rows, rhs=rhs,
        upper_bounds=[max(omegas.values())] * len(result.unschedulable)))
    return min(k, result.n_b * int(round(solution.objective)))


class TestPruningPreservesOptimum:
    def test_case_study(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        for k in (1, 3, 7, 10, 20):
            assert result.dmm(k) == _dmm_without_pruning(result, k)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_systems(self, seed):
        rng = random.Random(300 + seed)
        system = generate_feasible_system(rng, GeneratorConfig(
            chains=2, overload_chains=3, utilization=0.5,
            overload_utilization=0.12, deadline_factor=0.85,
            tasks_per_chain=(2, 4)))
        for chain in system.typical_chains:
            result = analyze_twca(system, chain)
            if not result.unschedulable:
                continue
            for k in (2, 5, 10):
                assert result.dmm(k) == _dmm_without_pruning(result, k), (
                    f"seed {seed}, chain {chain.name}, k={k}")

    def test_priority_permutations(self, figure4):
        rng = random.Random(9)
        for system in random_systems(figure4, 5, rng):
            for name in ("sigma_c", "sigma_d"):
                result = analyze_twca(system, system[name])
                if not result.unschedulable:
                    continue
                for k in (3, 10):
                    assert result.dmm(k) == _dmm_without_pruning(
                        result, k)


class TestMinimalSetStructure:
    def test_minimal_set_is_antichain(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        minimal = result.minimal_unschedulable()
        keys = [frozenset(c.keys) for c in minimal]
        for i, left in enumerate(keys):
            for right in keys[i + 1:]:
                assert not (left < right or right < left)

    def test_minimal_subset_of_unschedulable(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        full = {frozenset(c.keys) for c in result.unschedulable}
        minimal = {frozenset(c.keys)
                   for c in result.minimal_unschedulable()}
        assert minimal <= full
