"""Tests of the baseline analyses and their relationship to the
chain-aware analysis."""

import random

import pytest

from repro import PeriodicModel, SporadicModel, analyze_latency, analyze_twca
from repro.baselines import (AnalyzedTask, analyze_collapsed_twca,
                             analyze_latency_arbitrary,
                             analyze_response_time, analyze_task_twca,
                             collapse_system, pessimism_ratio,
                             response_times, tasks_to_system)
from repro.synth import GeneratorConfig, generate_feasible_system


class TestClassicRta:
    def _tasks(self):
        return [
            AnalyzedTask("hi", priority=3, wcet=2,
                         activation=PeriodicModel(10), deadline=10),
            AnalyzedTask("mid", priority=2, wcet=3,
                         activation=PeriodicModel(20), deadline=20),
            AnalyzedTask("lo", priority=1, wcet=5,
                         activation=PeriodicModel(50), deadline=50),
        ]

    def test_textbook_example(self):
        # Classic rate-monotonic example, hand-computable:
        # R_hi = 2; R_mid = 3 + 2 = 5;
        # lo: w = 5 + ceil(w/10)*2 + ceil(w/20)*3 -> w = 10 (finishes
        # exactly as the second hi job arrives).
        results = response_times(self._tasks())
        assert results["hi"].wcrt == 2
        assert results["mid"].wcrt == 5
        assert results["lo"].wcrt == 10

    def test_busy_window_spans_multiple_jobs(self):
        # hi (P=10, C=6), lo (P=13, C=5): utilization 0.985, the level-1
        # busy window holds three lo jobs (B = 17, 28, 39).
        tasks = [
            AnalyzedTask("hi", priority=2, wcet=6,
                         activation=PeriodicModel(10)),
            AnalyzedTask("lo", priority=1, wcet=5,
                         activation=PeriodicModel(13)),
        ]
        result = analyze_response_time(tasks, tasks[1])
        assert result.max_queue == 3
        assert result.busy_times == (17, 28, 39)
        assert result.wcrt == 17

    def test_overload_detection(self):
        tasks = [
            AnalyzedTask("a", priority=2, wcet=10,
                         activation=PeriodicModel(10)),
            AnalyzedTask("b", priority=1, wcet=1,
                         activation=PeriodicModel(100)),
        ]
        with pytest.raises(OverflowError):
            analyze_response_time(tasks, tasks[1])

    def test_matches_single_task_chain_analysis(self):
        """For singleton chains the chain analysis must reduce to the
        classic RTA."""
        tasks = self._tasks()
        system = tasks_to_system(tasks, overload_names=[])
        for task in tasks:
            rta = analyze_response_time(tasks, task)
            chain_result = analyze_latency(
                system, system[f"chain[{task.name}]"])
            assert chain_result.wcl == rta.wcrt


class TestIndependentTwca:
    def _tasks(self):
        return [
            AnalyzedTask("isr", priority=3, wcet=4,
                         activation=SporadicModel(100)),
            AnalyzedTask("app", priority=2, wcet=6,
                         activation=PeriodicModel(10), deadline=9),
            AnalyzedTask("bg", priority=1, wcet=1,
                         activation=PeriodicModel(20), deadline=20),
        ]

    def test_dmm_for_overloaded_task(self):
        result = analyze_task_twca(self._tasks(), "app", ["isr"])
        # Without the ISR, app's WCRT is 6 <= 9; with it 10 > 9.
        assert result.has_guarantee
        assert not result.is_schedulable
        # Omega = eta_isr(delta_plus(10) + WCL) + 1 = eta(100) + 1 = 2.
        assert result.dmm(10) == 2

    def test_unknown_overload_name_rejected(self):
        with pytest.raises(ValueError):
            tasks_to_system(self._tasks(), ["nope"])

    def test_schedulable_task_gets_zero_dmm(self):
        result = analyze_task_twca(self._tasks(), "bg", ["isr"])
        if result.is_schedulable:
            assert result.dmm(10) == 0


class TestCollapsedBaseline:
    def test_collapse_shape(self, figure4):
        collapsed = collapse_system(figure4, target_name="sigma_c")
        by_name = {t.name: t for t in collapsed}
        # The target collapses to its minimum priority, interferers to
        # their maximum.
        assert by_name["sigma_c"].wcet == 51
        assert by_name["sigma_c"].priority == 1
        assert by_name["sigma_d"].wcet == 115
        assert by_name["sigma_d"].priority == 11

    def test_collapsed_never_tighter_on_case_study(self, figure4):
        chain_aware = analyze_twca(figure4, figure4["sigma_c"])
        collapsed = analyze_collapsed_twca(figure4, "sigma_c")
        for k in (1, 3, 7, 10, 20):
            assert collapsed.dmm(k) >= chain_aware.dmm(k) or \
                collapsed.dmm(k) == k

    def test_collapsed_loses_sigma_d(self, figure4):
        """Collapsing hurts sigma_d: at its minimum priority (2) it sees
        sigma_c's full WCET per activation instead of one critical
        segment (10)."""
        chain_aware = analyze_twca(figure4, figure4["sigma_d"])
        collapsed = analyze_collapsed_twca(figure4, "sigma_d")
        assert chain_aware.is_schedulable
        assert collapsed.wcl > chain_aware.wcl


class TestArbitraryOnlyAblation:
    def test_dominates_segment_aware(self, figure4, figure1):
        for system in (figure4, figure1):
            for chain in system.chains:
                aware = analyze_latency(system, chain).wcl
                blunt = analyze_latency_arbitrary(system, chain).wcl
                assert blunt >= aware

    def test_pessimism_ratio_on_case_study(self, figure4):
        ratio = pessimism_ratio(figure4, figure4["sigma_d"])
        assert ratio > 1.5  # the segment analysis buys > 50 % on sigma_d

    def test_random_systems_dominance(self):
        rng = random.Random(42)
        for _ in range(6):
            system = generate_feasible_system(rng, GeneratorConfig(
                chains=3, overload_chains=1, utilization=0.45))
            for chain in system.typical_chains:
                aware = analyze_latency(system, chain).wcl
                try:
                    blunt = analyze_latency_arbitrary(system, chain).wcl
                except Exception:
                    continue  # arbitrary-only may diverge where aware not
                assert blunt >= aware - 1e-9
