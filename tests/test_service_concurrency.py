"""Concurrency tests for the thread-safe analysis stack: the
context-local memoization hook, the internally locked
:class:`AnalysisCache`, and the :class:`AnalysisService` compute pool —
overlapping computes must produce byte-identical results with balanced
cache/service counters, and per-thread caches must never cross-talk."""

import json
import threading

import pytest

from repro.analysis import analyze_latency
from repro.analysis.memo import active_cache, content_key, set_active_cache, using_cache
from repro.runner.cache import CATEGORIES, AnalysisCache
from repro.service import AnalysisRequest, AnalysisService, ServiceClient, start_server
from repro.synth import figure4_system, labeled_random_systems

WORKERS = 4

KS = (1, 5, 25)


def distinct_requests(count=6):
    """``count`` analysis requests over *distinct* systems (random
    priority permutations of the Figure 4 case study) — no two share a
    compat key, so nothing coalesces and every request is a compute."""
    samples = labeled_random_systems(figure4_system(), count, seed=7)
    return [
        AnalysisRequest.from_system(system, ks=KS, label=label)
        for label, system in samples
    ]


def fire_threads(worker, count):
    """Run ``worker(index)`` on ``count`` threads through a barrier (so
    they genuinely overlap), re-raising the first worker exception."""
    barrier = threading.Barrier(count)
    errors = []

    def run(index):
        try:
            barrier.wait(timeout=30)
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(index,)) for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    if errors:
        raise errors[0]
    return threads


class TestServiceConcurrency:
    def test_concurrent_distinct_systems_match_serial(self):
        """N threads firing distinct systems at one pooled service:
        every response byte-identical to the serialized reference, and
        the shared cache's counters identical too (keys are disjoint
        per system, so interleaving must not change the accounting)."""
        requests = distinct_requests()
        with AnalysisService(workers=1) as serial:
            reference = [serial.analyze(request).to_json() for request in requests]
            serial_stats = serial.cache.stats_dict()

        with AnalysisService(workers=WORKERS) as service:
            payloads = [None] * len(requests)

            def worker(index):
                payloads[index] = service.analyze(requests[index]).to_json()

            fire_threads(worker, len(requests))

            assert payloads == reference
            assert service.counters["computes"] == len(requests)
            assert service.counters["requests"] == len(requests)
            assert service.counters["coalesced"] == 0
            assert service.cache.stats_dict() == serial_stats
            stats = service.cache.stats()
            assert sum(s.lookups for s in stats.values()) > 0
            for category, s in stats.items():
                assert s.hits + s.misses == s.lookups, category

    def test_concurrent_identical_requests_still_coalesce(self, monkeypatch):
        """The pool must not break coalescing: identical in-flight
        requests stay one compute, N responders."""
        request = distinct_requests(1)[0]
        with AnalysisService(workers=WORKERS) as service:
            release = threading.Event()
            original = AnalysisService._execute

            def gated(self, req):
                release.wait(timeout=30)
                return original(self, req)

            monkeypatch.setattr(AnalysisService, "_execute", gated)
            responses = [None] * WORKERS

            def worker(index):
                responses[index] = service.analyze(request)

            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(WORKERS)
            ]
            for thread in threads:
                thread.start()
            # Hold the compute until every follower has attached to the
            # leader's in-flight entry, then let the leader answer all.
            for _ in range(600):
                if service.counters["coalesced"] == WORKERS - 1:
                    break
                threading.Event().wait(0.05)
            release.set()
            for thread in threads:
                thread.join(timeout=60)

            assert service.counters["coalesced"] == WORKERS - 1
            assert service.counters["computes"] == 1
            assert service.counters["coalesced"] == WORKERS - 1
            assert len({r.to_json() for r in responses}) == 1

    def test_batch_groups_fan_out_identically(self):
        """``batch`` runs its merged groups on the pool; the
        deterministic export must match the workers=1 service."""
        requests = distinct_requests(4)
        with AnalysisService(workers=1) as serial:
            reference = serial.batch(requests).to_json(deterministic=True)
        with AnalysisService(workers=WORKERS) as service:
            export = service.batch(requests).to_json(deterministic=True)
        assert export == reference

    def test_workers_validated_and_surfaced(self):
        with pytest.raises(ValueError, match="workers"):
            AnalysisService(workers=0)
        with AnalysisService(workers=3) as service:
            stats = service.cache_stats()
            assert stats["service"]["workers"] == 3
            assert stats["service"]["inflight"] == 0
        service.close()  # idempotent

    def test_http_concurrent_exports_byte_identical(self):
        """End to end over HTTP at ``--workers 4``: concurrent
        distinct-system requests answer byte-identically to the serial
        reference, and ``/cache/stats`` surfaces the pool."""
        requests = distinct_requests()
        with AnalysisService(workers=1) as serial:
            reference = [serial.analyze(request).to_json() for request in requests]

        service = AnalysisService(workers=WORKERS)
        server = start_server(service)
        try:
            client = ServiceClient(server.url)
            payloads = [None] * len(requests)

            def worker(index):
                raw = client._request("POST", "/analyze", requests[index].to_dict())
                payloads[index] = raw[1]

            fire_threads(worker, len(requests))
            assert payloads == reference

            stats = client.cache_stats()
            assert stats["service"]["workers"] == WORKERS
            assert stats["service"]["inflight"] == 0
            assert stats["service"]["computes"] == len(requests)
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestSharedCacheAccounting:
    def test_lru_and_stats_balance_under_threads(self):
        """Threads hammering one small cache with overlapping keys:
        ``hits + misses == lookups`` must balance exactly against the
        per-thread tallies, and the LRU bound must hold throughout."""
        maxsize = 32
        cache = AnalysisCache(maxsize=maxsize)
        threads_n, ops = 8, 400
        keyspace = [("digest", i) for i in range(2 * maxsize)]
        tallies = [{"hits": 0, "misses": 0} for _ in range(threads_n)]

        def worker(index):
            tally = tallies[index]
            for op in range(ops):
                key = keyspace[(op * (index + 1)) % len(keyspace)]
                value = cache.lookup("busy_time", key)
                if value is None:
                    tally["misses"] += 1
                    cache.store("busy_time", key, key)
                else:
                    assert value == key
                    tally["hits"] += 1
                assert len(cache._stores["busy_time"]) <= maxsize

        fire_threads(worker, threads_n)

        stats = cache.stats()["busy_time"]
        assert stats.hits == sum(t["hits"] for t in tallies)
        assert stats.misses == sum(t["misses"] for t in tallies)
        assert stats.hits + stats.misses == stats.lookups == threads_n * ops
        assert stats.entries <= maxsize

    def test_concurrent_store_and_clear_safe(self):
        """clear() racing stores must neither crash nor corrupt the
        final snapshot (all categories consistent afterwards)."""
        cache = AnalysisCache(maxsize=16)

        def worker(index):
            for op in range(200):
                if index == 0 and op % 50 == 0:
                    cache.clear()
                else:
                    cache.store("omega", ("d", index, op % 8), op)
                    cache.lookup("omega", ("d", index, op % 8))

        fire_threads(worker, 4)
        stats = cache.stats()
        for category in CATEGORIES:
            assert stats[category].entries <= 16


class TestContextLocalMemo:
    def test_two_threads_two_caches_no_cross_talk(self):
        """Each thread installs its own cache; entries land only in the
        installing thread's cache, and the main thread stays at None."""
        system = figure4_system()
        chains = sorted(c.name for c in system.chains)[:2]
        caches = [AnalysisCache(), AnalysisCache()]
        seen = [None, None]

        def worker(index):
            with using_cache(caches[index]):
                seen[index] = active_cache()
                analyze_latency(system, system[chains[index]])

        fire_threads(worker, 2)

        assert seen[0] is caches[0]
        assert seen[1] is caches[1]
        assert active_cache() is None  # main thread untouched
        for cache in caches:
            assert cache.miss_count > 0  # each thread really memoized
        # No cross-talk: each cache holds exactly the lookups its own
        # thread performed — the two threads analyzed different chains,
        # so the busy_time key sets must differ.
        keys = [set(cache._stores["busy_time"]) for cache in caches]
        assert keys[0] != keys[1]

    def test_set_active_cache_is_context_local(self):
        """The compat shim installs per-context, not process-wide."""
        marker = AnalysisCache()
        installed_in_thread = []

        def worker(index):
            previous = set_active_cache(marker)
            installed_in_thread.append((previous, active_cache()))

        fire_threads(worker, 1)
        assert installed_in_thread == [(None, marker)]
        assert active_cache() is None  # thread's install never leaked

    def test_using_cache_restores_previous(self):
        outer = AnalysisCache()
        inner = AnalysisCache()
        with using_cache(outer):
            with using_cache(inner):
                assert active_cache() is inner
            assert active_cache() is outer
        assert active_cache() is None


class TestContentKey:
    def test_object_without_content_digest_is_uncacheable(self):
        assert content_key(object()) is None

    def test_unserializable_system_is_uncacheable(self):
        class Unserializable:
            def content_digest(self):
                raise TypeError("user-defined event model")

        assert content_key(Unserializable()) is None

    def test_real_system_keys_by_digest(self):
        system = figure4_system()
        assert content_key(system) == system.content_digest()


def test_response_payloads_are_json():
    """Sanity anchor for the byte-identity assertions above: the
    payloads being compared are complete JSON documents."""
    request = distinct_requests(1)[0]
    with AnalysisService(workers=2) as service:
        payload = service.analyze(request).to_json()
    assert json.loads(payload)["jobs"]
