"""Tests for segments, header/critical segments and active segments
(Defs. 3-5, 8), pinned against the paper's examples."""

import pytest

from repro import PeriodicModel, SystemBuilder
from repro.analysis import (active_segments, critical_segment,
                            header_segment, segments)


class TestFigure1Examples:
    """Sec. IV examples on the Fig. 1 system."""

    def test_segments_of_sigma_a_wrt_sigma_b(self, figure1):
        segs = segments(figure1["sigma_a"], figure1["sigma_b"])
        names = [seg.task_names for seg in segs]
        assert names == [("tau_a^1", "tau_a^2", "tau_a^3"), ("tau_a^5",)]

    def test_active_segments_of_sigma_a_wrt_sigma_b(self, figure1):
        active = active_segments(figure1["sigma_a"], figure1["sigma_b"])
        names = [seg.task_names for seg in active]
        assert names == [("tau_a^1", "tau_a^2"), ("tau_a^3",),
                         ("tau_a^5",)]

    def test_active_segments_carry_segment_identity(self, figure1):
        active = active_segments(figure1["sigma_a"], figure1["sigma_b"])
        assert [seg.segment_index for seg in active] == [0, 0, 1]

    def test_critical_segment_is_first(self, figure1):
        crit = critical_segment(figure1["sigma_a"], figure1["sigma_b"])
        assert crit.task_names == ("tau_a^1", "tau_a^2", "tau_a^3")
        assert crit.wcet == 3  # unit WCETs


class TestFigure4Examples:
    def test_sigma_c_has_one_segment_wrt_sigma_d(self, figure4):
        segs = segments(figure4["sigma_c"], figure4["sigma_d"])
        assert [seg.task_names for seg in segs] == [
            ("tau_c^1", "tau_c^2")]
        assert segs[0].wcet == 10

    def test_segments_undefined_for_non_deferred(self, figure4):
        with pytest.raises(ValueError):
            segments(figure4["sigma_a"], figure4["sigma_c"])

    def test_header_segment_of_sigma_c_wrt_sigma_d(self, figure4):
        header = header_segment(figure4["sigma_c"], figure4["sigma_d"])
        assert header.task_names == ("tau_c^1", "tau_c^2")

    def test_header_segment_empty_when_header_below(self, figure4):
        # sigma_d's header tau_d^1 (11) is above sigma_b's floor (6), so
        # take the reverse: sigma_d w.r.t. a high-priority chain.
        header = header_segment(figure4["sigma_d"], figure4["sigma_b"])
        assert header.task_names == ("tau_d^1", "tau_d^2", "tau_d^3")


class TestWrapAround:
    """Def. 3's modulo convention: segments may wrap tail-to-header."""

    def _system(self, priorities, floor_priority=5):
        builder = SystemBuilder("wrap", allow_shared_priorities=True)
        builder.chain("a", PeriodicModel(100))
        for i, priority in enumerate(priorities):
            builder.task(f"a{i}", priority=priority, wcet=i + 1)
        builder.chain("b", PeriodicModel(70), deadline=70)
        builder.task("b0", priority=floor_priority, wcet=1)
        return builder.build()

    def test_wrapping_segment(self):
        # Priorities 9, 3, 8, 9: tasks 0 and 2,3 are high (floor 5);
        # the run wraps: (a2, a3, a0).
        system = self._system([9, 3, 8, 9])
        segs = segments(system["a"], system["b"])
        assert len(segs) == 1
        assert segs[0].task_names == ("a2", "a3", "a0")
        assert segs[0].wraps

    def test_wrapping_segment_wcet(self):
        system = self._system([9, 3, 8, 9])
        seg = segments(system["a"], system["b"])[0]
        assert seg.wcet == 3 + 4 + 1  # a2 + a3 + a0

    def test_no_wrap_when_tail_low(self):
        system = self._system([9, 3, 8, 2])
        segs = segments(system["a"], system["b"])
        assert [s.task_names for s in segs] == [("a0",), ("a2",)]
        assert not any(s.wraps for s in segs)

    def test_single_low_task_yields_one_wrapped_run(self):
        system = self._system([9, 8, 3, 7])
        segs = segments(system["a"], system["b"])
        assert len(segs) == 1
        assert segs[0].task_names == ("a3", "a0", "a1")

    def test_all_low_yields_no_segments(self):
        system = self._system([1, 2, 1, 2])
        assert segments(system["a"], system["b"]) == []
        assert critical_segment(system["a"], system["b"]) is None

    def test_active_segments_of_wrapped_segment(self):
        # Wrapped segment (a2, a3, a0); tail of b is b0 (priority 5).
        # a3 (9) > 5 continues; a0 (9) > 5 continues -> one active
        # segment spanning the wrap.
        system = self._system([9, 3, 8, 9])
        active = active_segments(system["a"], system["b"])
        assert [seg.task_names for seg in active] == [("a2", "a3", "a0")]

    def test_active_segments_split_at_tail_priority(self):
        # floor 5, tail priority 5: a2 (6) starts, a3 (5) not > 5 ->
        # split.
        system = self._system([9, 3, 6, 5], floor_priority=4)
        # floor is 4: high tasks are a0 (9), a2 (6), a3 (5).
        segs = segments(system["a"], system["b"])
        assert [s.task_names for s in segs] == [("a2", "a3", "a0")]
        active = active_segments(system["a"], system["b"])
        # tail priority is 4: a3 (5) > 4 continues, a0 (9) > 4 continues.
        assert [seg.task_names for seg in active] == [("a2", "a3", "a0")]


class TestActiveSegmentInvariants:
    def test_active_segments_partition_segments(self, figure1, figure4):
        for system in (figure1, figure4):
            for interferer in system.chains:
                for target in system.others(interferer):
                    try:
                        segs = segments(interferer, target)
                    except ValueError:
                        continue
                    active = active_segments(interferer, target)
                    by_segment = {}
                    for act in active:
                        by_segment.setdefault(act.segment_index,
                                              []).append(act)
                    for index, seg in enumerate(segs):
                        parts = by_segment.get(index, [])
                        glued = tuple(
                            name for part in parts
                            for name in part.task_names)
                        assert glued == seg.task_names

    def test_active_segment_interior_above_tail(self, figure1):
        target = figure1["sigma_b"]
        for act in active_segments(figure1["sigma_a"], target):
            for task in act.tasks[1:]:
                assert task.priority > target.tail.priority
