"""Tests for the parallel batch runner and the analysis cache.

Covers the four properties the runner guarantees:

* determinism — serial and parallel runs export byte-identical JSON;
* cache correctness — memoized analyses equal cold ones on random
  systems, with LRU recency in the in-process front;
* worker-side loading — path jobs parse files inside the workers,
  memoized per process and revalidated by content digest;
* error propagation — analysis failures are data, everything else
  (missing chains, unreadable files, worker crashes) raises in the
  parent.

The persistent disk backend has its own differential suite in
``test_cache_differential.py``.
"""

import json
import math
import os
import random

import pytest

from repro.analysis import analyze_twca, busy_time
from repro.analysis.memo import active_cache, using_cache
from repro.model.serialization import system_to_json
from repro.runner import (
    AnalysisCache,
    AnalysisJob,
    BatchExecutionError,
    BatchRunner,
    SystemLoader,
    SystemPathJob,
    execute_job,
    execute_path_job,
)
from repro.synth import (
    GeneratorConfig,
    figure4_system,
    generate_feasible_system,
    labeled_random_systems,
)


def small_sweep(count=10, seed=7):
    base = figure4_system(calibrated=True)
    labeled = labeled_random_systems(base, count, seed)
    return [label for label, _ in labeled], [s for _, s in labeled]


class TestDeterminism:
    def test_serial_and_parallel_json_identical(self):
        labels, systems = small_sweep(10)
        serial = BatchRunner(workers=1).run_systems(
            systems, ["sigma_c", "sigma_d"], labels=labels
        )
        parallel = BatchRunner(workers=2).run_systems(
            systems, ["sigma_c", "sigma_d"], labels=labels
        )
        assert serial.to_json() == parallel.to_json()
        assert len(serial) == 20

    def test_serial_rerun_identical(self):
        labels, systems = small_sweep(5)
        first = BatchRunner(workers=1).run_systems(systems, labels=labels)
        second = BatchRunner(workers=1).run_systems(systems, labels=labels)
        assert first.to_json() == second.to_json()

    def test_deterministic_export_hides_timings(self):
        labels, systems = small_sweep(2)
        batch = BatchRunner(workers=1).run_systems(systems, labels=labels)
        det = batch.to_dict()
        full = batch.to_dict(deterministic=False)
        assert "wall_time" not in det and "cache" not in det
        assert full["wall_time"] >= 0 and full["workers"] == 1
        for job in det["jobs"]:
            assert "elapsed" not in job

    def test_order_follows_submission(self):
        labels, systems = small_sweep(6)
        batch = BatchRunner(workers=2).run_systems(
            systems, ["sigma_c"], labels=labels
        )
        assert [job.label for job in batch.jobs] == labels


class TestCacheCorrectness:
    def sample_systems(self, count=4, seed=13):
        rng = random.Random(seed)
        config = GeneratorConfig(chains=3, overload_chains=1, utilization=0.55)
        return [generate_feasible_system(rng, config) for _ in range(count)]

    def test_cached_equals_cold_on_random_systems(self):
        ks = (1, 5, 10, 50)
        for system in self.sample_systems():
            for chain in system.typical_chains:
                if not chain.has_deadline:
                    continue
                cold = analyze_twca(system, chain)
                cold_dmm = {k: cold.dmm(k) for k in ks}
                cache = AnalysisCache()
                with cache.activate():
                    warm_up = analyze_twca(system, chain)
                    warm_up_dmm = {k: warm_up.dmm(k) for k in ks}
                    cached = analyze_twca(system, chain)
                    cached_dmm = {k: cached.dmm(k) for k in ks}
                assert cached.status is cold.status
                assert cached_dmm == cold_dmm == warm_up_dmm
                assert cached.wcl == cold.wcl
                assert cache.hit_count > 0

    def test_busy_time_memoized_breakdown_equal(self):
        system = figure4_system()
        chain = system["sigma_c"]
        cold = busy_time(system, chain, 2)
        cache = AnalysisCache()
        with cache.activate():
            first = busy_time(system, chain, 2)
            second = busy_time(system, chain, 2)
        assert first == cold
        assert second == cold
        stats = cache.stats()["busy_time"]
        assert stats.hits == 1 and stats.misses == 1
        assert stats.entries == 1
        assert stats.disk_hits == 0

    def test_cache_distinguishes_system_content(self):
        system = figure4_system(calibrated=False)
        other = figure4_system(calibrated=True)
        assert system.content_digest() != other.content_digest()
        cache = AnalysisCache()
        with cache.activate():
            a = analyze_twca(system, system["sigma_c"])
            b = analyze_twca(other, other["sigma_c"])
        # Calibration changes the overload curves, hence the DMM tail.
        assert a.dmm(250) != b.dmm(250)

    def test_identical_content_shares_digest(self):
        one = figure4_system()
        two = figure4_system()
        assert one is not two
        assert one.content_digest() == two.content_digest()

    def test_maxsize_bounds_entries(self):
        cache = AnalysisCache(maxsize=3)
        for index in range(10):
            cache.store("busy_time", ("key", index), index)
        assert cache.stats()["busy_time"].entries == 3

    def test_lookup_refreshes_lru_order(self):
        cache = AnalysisCache(maxsize=2)
        cache.store("busy_time", "a", 1)
        cache.store("busy_time", "b", 2)
        assert cache.lookup("busy_time", "a") == 1  # refresh "a"
        cache.store("busy_time", "c", 3)  # evicts "b", not "a"
        assert cache.lookup("busy_time", "a") == 1
        assert cache.lookup("busy_time", "b") is None
        assert cache.lookup("busy_time", "c") == 3

    def test_counters_track_disk_hits_field(self):
        cache = AnalysisCache()
        counters = cache.counters()
        assert set(counters) == {
            "busy_time",
            "omega",
            "segments",
            "combo_exact",
            "packing",
            "jobs",
        }
        for fields in counters.values():
            assert fields == {"hits": 0, "misses": 0, "disk_hits": 0}

    def test_no_cache_outside_activation(self):
        cache = AnalysisCache()
        assert active_cache() is None
        with using_cache(cache):
            assert active_cache() is cache
        assert active_cache() is None

    def test_runner_batch_warm_cache_hits(self):
        """Re-running identical jobs through one runner hits the cache."""
        labels, systems = small_sweep(3)
        runner = BatchRunner(workers=1)
        first = runner.run_systems(systems, ["sigma_c"], labels=labels)
        second = runner.run_systems(systems, ["sigma_c"], labels=labels)
        assert first.to_json() == second.to_json()
        assert second.cache_hit_rate > first.cache_hit_rate
        assert second.cache_hit_rate > 0.9

    def test_use_cache_false_disables_memoization(self):
        labels, systems = small_sweep(2)
        runner = BatchRunner(workers=1, use_cache=False)
        assert runner.cache is None
        batch = runner.run_systems(systems, ["sigma_c"], labels=labels)
        assert batch.cache_stats == {}
        assert batch.cache_hit_rate == 0.0


class TestWorkerSideLoading:
    def write_systems(self, tmp_path, count=3, seed=7):
        labels, systems = small_sweep(count, seed)
        paths = []
        for label, system in zip(labels, systems):
            path = tmp_path / f"{label}.json"
            path.write_text(system_to_json(system))
            paths.append(str(path))
        return paths, systems

    def test_run_paths_matches_run_systems(self, tmp_path):
        paths, systems = self.write_systems(tmp_path)
        by_paths = BatchRunner(workers=1).run_paths(paths)
        by_systems = BatchRunner(workers=1).run_systems(systems, labels=paths)
        assert by_paths.to_json() == by_systems.to_json()

    def test_run_paths_parallel_identical(self, tmp_path):
        paths, _ = self.write_systems(tmp_path, count=4)
        serial = BatchRunner(workers=1).run_paths(paths, ["sigma_c"])
        parallel = BatchRunner(workers=2).run_paths(paths, ["sigma_c"])
        assert serial.to_json() == parallel.to_json()
        assert [job.label for job in serial.jobs] == paths

    def test_path_job_defaults_and_chain_display(self):
        job = SystemPathJob(path="x.json")
        assert job.chains is None
        assert job.chain_name == "*"
        named = SystemPathJob(path="x.json", chains=("sigma_c", "sigma_d"))
        assert named.chain_name == "sigma_c, sigma_d"

    def test_loader_memoizes_and_revalidates(self, tmp_path):
        path = tmp_path / "system.json"
        path.write_text(system_to_json(figure4_system()))
        loader = SystemLoader()
        first = loader.load(str(path))
        assert loader.load(str(path)) is first
        assert loader.parses == 1 and loader.reuses == 1
        # A touched-but-identical file revalidates by digest, no reparse.
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns + 10**9, stat.st_mtime_ns + 10**9))
        assert loader.load(str(path)) is first
        assert loader.parses == 1 and loader.reuses == 2
        # Changed content reparses.
        path.write_text(system_to_json(figure4_system(calibrated=True)))
        changed = loader.load(str(path))
        assert changed is not first
        assert loader.parses == 2

    def test_loader_never_serves_stale_same_tick_rewrite(self, tmp_path):
        """Rewriting a file without advancing its mtime (the clock-tick
        race) must still invalidate the memoized parse: revalidation is
        by content digest, not stat signature."""
        path = tmp_path / "system.json"
        path.write_text(system_to_json(figure4_system()))
        loader = SystemLoader()
        first = loader.load(str(path))
        stat = path.stat()
        path.write_text(system_to_json(figure4_system(calibrated=True)))
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        changed = loader.load(str(path))
        assert changed is not first
        assert changed.content_digest() != first.content_digest()
        assert loader.parses == 2

    def test_named_chains_fan_out_per_file_and_chain(self, tmp_path):
        """Explicit chains split into one path job per (file, chain),
        so few files with many chains still fill the pool; default
        chain discovery stays per-file."""
        paths, _ = self.write_systems(tmp_path, count=2)
        runner = BatchRunner(workers=1)
        jobs = runner.path_jobs_for(paths, ["sigma_c", "sigma_d"])
        assert len(jobs) == 4
        assert [job.chains for job in jobs] == [("sigma_c",), ("sigma_d",)] * 2
        assert len(runner.path_jobs_for(paths)) == 2
        fanned = BatchRunner(workers=2).run_paths(paths, ["sigma_c", "sigma_d"])
        reference = BatchRunner(workers=1).run_paths(paths, ["sigma_c", "sigma_d"])
        assert fanned.to_json() == reference.to_json()

    def test_execute_path_job_selects_default_chains(self, tmp_path):
        path = tmp_path / "system.json"
        path.write_text(system_to_json(figure4_system()))
        results = execute_path_job(SystemPathJob(path=str(path)))
        assert sorted(result.chain_name for result in results) == [
            "sigma_c",
            "sigma_d",
        ]
        assert all(result.label == str(path) for result in results)

    def test_missing_file_raises_with_job(self, tmp_path):
        missing = str(tmp_path / "absent.json")
        with pytest.raises(BatchExecutionError) as excinfo:
            BatchRunner(workers=1).run_paths([missing])
        assert missing in str(excinfo.value)

    def test_invalid_json_raises_parallel(self, tmp_path):
        paths, _ = self.write_systems(tmp_path, count=2)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BatchExecutionError) as excinfo:
            BatchRunner(workers=2).run_paths(paths + [str(bad)])
        assert excinfo.value.job.path == str(bad)


class TestErrorPropagation:
    def test_analysis_error_is_data(self):
        system = figure4_system()
        # sigma_a is an overload chain: TWCA raises NotAnalyzable, which
        # must surface as an error *result*, not an exception.
        job = AnalysisJob.from_system(system, "sigma_a")
        result = execute_job(job)
        assert result.status == "error"
        assert "NotAnalyzable" in result.error
        assert result.dmm == {}

    def test_missing_chain_raises_serial(self):
        system = figure4_system()
        job = AnalysisJob.from_system(system, "sigma_zz")
        with pytest.raises(BatchExecutionError) as excinfo:
            BatchRunner(workers=1).run([job])
        assert "sigma_zz" in str(excinfo.value)
        assert isinstance(excinfo.value.cause, KeyError)

    def test_missing_chain_raises_parallel(self):
        system = figure4_system()
        good = AnalysisJob.from_system(system, "sigma_c")
        bad = AnalysisJob.from_system(system, "sigma_zz")
        with pytest.raises(BatchExecutionError) as excinfo:
            BatchRunner(workers=2).run([good, bad, good])
        assert excinfo.value.job is bad

    def test_corrupt_system_json_raises(self):
        job = AnalysisJob(system_json="{not json", chain_name="x")
        with pytest.raises(BatchExecutionError):
            BatchRunner(workers=1).run([job])

    def test_errors_listed_on_result(self):
        system = figure4_system()
        jobs = [
            AnalysisJob.from_system(system, "sigma_c"),
            AnalysisJob.from_system(system, "sigma_a"),
        ]
        batch = BatchRunner(workers=1).run(jobs)
        assert len(batch.errors) == 1
        assert batch.status_counts["error"] == 1


class TestJobsAndResults:
    def test_job_digest_stable_and_content_sensitive(self):
        system = figure4_system()
        job1 = AnalysisJob.from_system(system, "sigma_c")
        job2 = AnalysisJob.from_system(figure4_system(), "sigma_c")
        job3 = AnalysisJob.from_system(system, "sigma_d")
        assert job1.digest == job2.digest
        assert job1.digest != job3.digest

    def test_job_roundtrips_system(self):
        system = figure4_system()
        job = AnalysisJob.from_system(system, "sigma_c")
        clone = job.system()
        assert clone.content_digest() == system.content_digest()

    def test_jobs_for_defaults_to_deadline_chains(self):
        system = figure4_system()
        jobs = BatchRunner().jobs_for([system])
        assert sorted(job.chain_name for job in jobs) == ["sigma_c", "sigma_d"]

    def test_result_json_is_strict(self):
        """Exported JSON must reparse (no Infinity/NaN literals)."""
        labels, systems = small_sweep(2)
        batch = BatchRunner().run_systems(systems, labels=labels)
        payload = json.loads(batch.to_json())
        assert payload["job_count"] == len(batch)
        for job in payload["jobs"]:
            assert job["wcl"] is None or math.isfinite(job["wcl"])

    def test_summary_mentions_counts(self):
        labels, systems = small_sweep(2)
        batch = BatchRunner().run_systems(systems, labels=labels)
        text = batch.summary()
        assert "jobs" in text and "cache hit rate" in text
        assert labels[0] in text

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            BatchRunner(workers=0)
        with pytest.raises(ValueError):
            AnalysisCache(maxsize=0)
