"""Tests for the DeadlineMissModel wrapper."""

import pytest

from repro import DeadlineMissModel
from repro.analysis.dmm import dominates


class TestBasics:
    def test_clamps_to_window(self):
        model = DeadlineMissModel(lambda k: 999)
        assert model(5) == 5

    def test_clamps_negative_to_zero(self):
        model = DeadlineMissModel(lambda k: -3)
        assert model(5) == 0

    def test_rejects_k_below_one(self):
        model = DeadlineMissModel(lambda k: 0)
        with pytest.raises(ValueError):
            model(0)

    def test_memoizes(self):
        calls = []

        def evaluator(k):
            calls.append(k)
            return 1

        model = DeadlineMissModel(evaluator)
        model(4)
        model(4)
        assert calls == [4]


class TestFromTable:
    def test_steps_between_samples(self):
        model = DeadlineMissModel.from_table({3: 3, 76: 4, 250: 5})
        assert model(3) == 3
        assert model(50) == 3
        assert model(76) == 4
        assert model(249) == 4
        assert model(250) == 5
        assert model(1000) == 5

    def test_below_first_sample_is_zero_clamped(self):
        model = DeadlineMissModel.from_table({5: 2})
        assert model(1) == 0
        assert model(2) == 0

    def test_bisect_matches_linear_interpolation(self):
        table = {3: 1, 9: 2, 27: 5, 81: 13, 243: 40}
        model = DeadlineMissModel.from_table(table)
        samples = sorted(table.items())
        for k in range(1, 300):
            expected = 0
            for sample_k, misses in samples:
                if sample_k <= k:
                    expected = misses
            assert model(k) == min(k, expected)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            DeadlineMissModel.from_table({})


class TestQueries:
    def _model(self):
        return DeadlineMissModel.from_table({1: 1, 3: 3, 7: 4, 10: 5})

    def test_any_n_in_m(self):
        model = self._model()
        assert model.satisfies_any_n_in_m(5, 10)
        assert not model.satisfies_any_n_in_m(4, 10)

    def test_m_k_firm(self):
        model = self._model()
        # dmm(10) = 5 -> at least 5 of 10 met.
        assert model.satisfies_m_k(5, 10)
        assert not model.satisfies_m_k(6, 10)

    def test_invalid_constraints_rejected(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.satisfies_any_n_in_m(5, 4)
        with pytest.raises(ValueError):
            model.satisfies_m_k(11, 10)

    def test_miss_ratio(self):
        assert self._model().miss_ratio_bound(10) == pytest.approx(0.5)

    def test_first_violation(self):
        model = self._model()
        assert model.first_violation(0) == 1
        assert model.first_violation(3) == 7
        assert model.first_violation(5, k_max=50) is None

    def test_first_violation_bisect_matches_linear_scan(self):
        """The binary search over the staircase must agree with the
        historic linear scan for every threshold."""
        model = self._model()

        def linear(n, k_max=10_000):
            for k in range(1, k_max + 1):
                if model(k) > n:
                    return k
            return None

        for n in range(0, 8):
            assert model.first_violation(n) == linear(n)

    def test_first_violation_probes_log_many_points(self):
        calls = []

        def evaluator(k):
            calls.append(k)
            return k // 1000  # non-decreasing staircase

        model = DeadlineMissModel(evaluator)
        assert model.first_violation(3, k_max=100_000) == 4000
        assert len(set(calls)) < 40  # O(log answer), not O(k_max)

    def test_first_violation_early_answer_never_probes_far(self):
        """An early violation must be found without probing large k —
        evaluators can be expensive (or undefined) far out."""

        def evaluator(k):
            if k > 100:
                raise RuntimeError("probed past the violation")
            return k

        model = DeadlineMissModel(evaluator)
        assert model.first_violation(0) == 1
        assert model.first_violation(7, k_max=100_000) == 8

    def test_transitions(self):
        model = self._model()
        assert model.transitions(12) == [(1, 1), (3, 3), (7, 4), (10, 5)]

    def test_table(self):
        model = self._model()
        assert model.table([1, 3, 10]) == {1: 1, 3: 3, 10: 5}


class TestDominates:
    def test_dominance(self):
        tight = DeadlineMissModel.from_table({10: 2})
        loose = DeadlineMissModel.from_table({10: 5})
        ks = [1, 5, 10, 20]
        assert dominates(tight, loose, ks)
        assert not dominates(loose, tight, ks)


class TestAnalysisAdapter:
    def test_wraps_twca_result(self, figure4):
        from repro import analyze_twca
        result = analyze_twca(figure4, figure4["sigma_c"])
        model = DeadlineMissModel(result.dmm, name="sigma_c")
        assert model(3) == 3
        assert model.satisfies_m_k(0, 3)
        assert not model.satisfies_m_k(1, 3)

    def test_from_result_adapter(self, figure4):
        from repro import analyze_twca
        result = analyze_twca(figure4, figure4["sigma_c"])
        model = DeadlineMissModel.from_result(result)
        assert model.name == "dmm[sigma_c]"
        assert model.source == "twca"
        assert model.table([1, 3, 10]) == result.dmm_curve([1, 3, 10])
        # The adapter's queries run through the result's engine.
        assert result.packing_stats().get("resolves", 0) > 0
