"""Differential tests for the persistent cross-process AnalysisCache.

The contract under test: for the same job list, the batch export is
byte-identical across every execution shape —

* serial vs. parallel (any worker count),
* cold vs. warm persistent cache (in-process and on-disk),
* pristine vs. corrupted/poisoned on-disk entries (detected, dropped,
  recomputed — never trusted),
* parent-parsed systems vs. worker-side file loading,

and the merged cross-process ``CacheStats`` account exactly for every
lookup of every job.

``REPRO_CACHE_DIR`` (used by CI) points the shared-directory tests at a
persistent location so a second pytest run exercises the warm path; the
assertions here hold whether that directory starts cold or warm.
"""

import json
import os
import random
from pathlib import Path

from repro.analysis import analyze_twca
from repro.model.serialization import system_from_json, system_to_json
from repro.runner import (
    AnalysisCache,
    BatchRunner,
    CacheStats,
    DiskStore,
    PersistentAnalysisCache,
    merge_stats,
)
from repro.runner.diskcache import decode_entry, encode_entry, key_digest
from repro.synth import GeneratorConfig, generate_feasible_system

KS = (1, 5, 10)


def synth_systems(count=4, seed=101):
    """Seeded random synth systems (deterministic across runs)."""
    rng = random.Random(seed)
    config = GeneratorConfig(chains=3, overload_chains=1, utilization=0.55)
    return [generate_feasible_system(rng, config) for _ in range(count)]


def corrupt_entries(root: Path):
    """Damage every on-disk entry, cycling through the three faces of
    corruption: emptied, truncated mid-payload, and bit-flipped."""
    paths = sorted(root.glob("*/??/*.bin"))
    assert paths, f"no cache entries under {root}"
    for index, path in enumerate(paths):
        blob = path.read_bytes()
        if index % 3 == 0:
            path.write_bytes(b"")
        elif index % 3 == 1:
            path.write_bytes(blob[: max(1, len(blob) - 7)])
        else:
            flipped = bytearray(blob)
            flipped[-1] ^= 0xFF
            path.write_bytes(bytes(flipped))
    return len(paths)


class TestDifferentialExports:
    """Batch JSON must be byte-identical across {serial, parallel xN} x
    {cold, warm disk, corrupted-entry-on-disk}."""

    def test_export_matrix_byte_identical(self, tmp_path):
        systems = synth_systems()
        reference = (
            BatchRunner(workers=1, use_cache=False, ks=KS)
            .run_systems(systems)
            .to_json()
        )
        for workers in (1, 2, 3):
            cache_dir = tmp_path / f"cache-{workers}"
            for state in ("cold", "warm", "corrupted"):
                if state == "corrupted":
                    corrupt_entries(cache_dir)
                runner = BatchRunner(workers=workers, cache_dir=cache_dir, ks=KS)
                exported = runner.run_systems(systems).to_json()
                assert exported == reference, (workers, state)

    def test_worker_side_loading_matches_parent_parsing(self, tmp_path):
        systems = synth_systems(3, seed=202)
        paths = []
        for index, system in enumerate(systems):
            path = tmp_path / f"system-{index}.json"
            path.write_text(system_to_json(system))
            paths.append(str(path))
        reference = (
            BatchRunner(workers=1, use_cache=False, ks=KS)
            .run_systems(systems, labels=paths)
            .to_json()
        )
        cache_dir = tmp_path / "cache"
        for workers in (1, 2):
            for _state in ("cold", "warm"):
                runner = BatchRunner(workers=workers, cache_dir=cache_dir, ks=KS)
                assert runner.run_paths(paths).to_json() == reference

    def test_shared_cache_dir_stable_across_invocations(self, tmp_path):
        """The CI cold/warm job runs this twice against one
        REPRO_CACHE_DIR; the export must not depend on what the
        directory already contains."""
        root = os.environ.get("REPRO_CACHE_DIR")
        cache_dir = Path(root) / "differential" if root else tmp_path / "shared"
        systems = synth_systems(3, seed=303)
        golden = (
            BatchRunner(workers=1, use_cache=False, ks=KS)
            .run_systems(systems)
            .to_json()
        )
        batch = BatchRunner(workers=2, cache_dir=cache_dir, ks=KS).run_systems(
            systems
        )
        assert batch.to_json() == golden
        # Whatever this invocation found cold, the next finds on disk.
        rerun = BatchRunner(workers=2, cache_dir=cache_dir, ks=KS).run_systems(
            systems
        )
        assert rerun.to_json() == golden
        assert sum(s["misses"] for s in rerun.cache_stats.values()) == 0


class TestWarmAcceptance:
    def test_warm_duplicated_sweep_recomputes_nothing(self, tmp_path):
        """Acceptance: a duplicated system list against a warm
        --cache-dir performs zero busy-window fixed-point
        recomputations — every job is served whole from the ``jobs``
        result cache, skipping even per-job assembly — and its export
        is byte-identical to the cold serial run."""
        systems = synth_systems(3, seed=404)
        duplicated = systems + systems
        cache_dir = tmp_path / "cache"
        cold = BatchRunner(workers=1, cache_dir=cache_dir, ks=KS).run_systems(
            duplicated
        )
        warm = BatchRunner(workers=3, cache_dir=cache_dir, ks=KS).run_systems(
            duplicated
        )
        assert warm.to_json() == cold.to_json()
        assert warm.cache_stats["busy_time"]["misses"] == 0
        assert warm.cache_stats["omega"]["misses"] == 0
        assert warm.cache_stats["segments"]["misses"] == 0
        assert warm.cache_stats["jobs"]["misses"] == 0
        assert warm.job_hits == len(warm.jobs)

    def test_duplicates_deduplicate_within_one_cold_batch(self, tmp_path):
        """Content-identical jobs share whole results through the store
        even in the *first* run: a triplicated sweep misses exactly as
        often as the unique sweep alone, and the duplicates are served
        from the ``jobs`` category.  (Serial execution keeps the count
        deterministic; racing parallel workers may duplicate a miss in
        flight, which costs work but never correctness.)"""
        systems = synth_systems(2, seed=505)
        duplicated = systems + systems + systems
        cache_dir = tmp_path / "cache"
        batch = BatchRunner(workers=1, cache_dir=cache_dir, ks=KS).run_systems(
            duplicated
        )
        unique = BatchRunner(workers=1, cache_dir=tmp_path / "u", ks=KS).run_systems(
            systems
        )
        assert (
            batch.cache_stats["busy_time"]["misses"]
            == unique.cache_stats["busy_time"]["misses"]
        )
        assert batch.job_hits == 2 * len(unique.jobs)
        assert unique.job_hits == 0


class TestCorruptionHandling:
    def test_poisoned_entries_detected_and_recomputed(self, tmp_path):
        system = synth_systems(1, seed=606)[0]
        chain = next(c for c in system.typical_chains if c.has_deadline)
        cache_dir = tmp_path / "cache"
        cache = PersistentAnalysisCache(cache_dir)
        with cache.activate():
            fresh = analyze_twca(system, chain)
        fresh_dmm = {k: fresh.dmm(k) for k in KS}
        damaged = corrupt_entries(cache_dir)
        again = PersistentAnalysisCache(cache_dir)
        with again.activate():
            recomputed = analyze_twca(system, chain)
        assert {k: recomputed.dmm(k) for k in KS} == fresh_dmm
        assert recomputed.status is fresh.status
        # Every damaged entry consulted was detected, not trusted.
        assert again.disk.corrupt_dropped > 0
        assert again.disk.corrupt_dropped <= damaged
        assert again.disk_hit_count == 0

    def test_garbage_files_are_dropped_and_replaced(self, tmp_path):
        store = DiskStore(tmp_path)
        store.store("busy_time", ("digest", "sigma", 1), {"value": 1})
        path = store.path_for("busy_time", ("digest", "sigma", 1))
        path.write_bytes(b"not a cache entry at all")
        assert store.load("busy_time", ("digest", "sigma", 1)) is None
        assert store.corrupt_dropped == 1
        assert not path.exists()
        store.store("busy_time", ("digest", "sigma", 1), {"value": 2})
        assert store.load("busy_time", ("digest", "sigma", 1)) == {"value": 2}

    def test_frame_round_trip_and_rejection(self):
        value = {"total": 12.5, "names": ("a", "b")}
        blob = encode_entry(value)
        assert decode_entry(blob) == value
        for bad in (b"", blob[:10], blob[:-1], b"x" + blob, blob[:-3] + b"zzz"):
            try:
                decode_entry(bad)
            except ValueError:
                continue
            raise AssertionError(f"accepted corrupt frame {bad[:20]!r}")


class TestRoundTripProperty:
    def test_serialized_round_trip_shares_cache_with_equal_results(self):
        """Guards ``content_digest()`` against fields it silently
        ignores: a round-tripped system shares the original's digest,
        so it *will* be served the original's cached Omega/DMM
        artifacts — those must equal its own fresh analysis."""
        for seed in (11, 12, 13):
            system = synth_systems(1, seed=seed)[0]
            clone = system_from_json(system_to_json(system))
            assert clone.content_digest() == system.content_digest()
            for chain in system.typical_chains:
                if not chain.has_deadline:
                    continue
                cold = analyze_twca(clone, clone[chain.name])
                cold_dmm = {k: cold.dmm(k) for k in KS}
                cache = AnalysisCache()
                with cache.activate():
                    analyze_twca(system, chain)
                    served = analyze_twca(clone, clone[chain.name])
                    served_dmm = {k: served.dmm(k) for k in KS}
                assert cache.hit_count > 0
                assert served_dmm == cold_dmm
                assert served.status is cold.status
                assert served.wcl == cold.wcl

    def test_key_digest_stable_for_primitive_tuples(self):
        key = ("deadbeef", "sigma_c", 3, False, 0.0, None, 12.5)
        assert key_digest(key) == key_digest(("deadbeef",) + key[1:])
        assert key_digest(key) != key_digest(key[:-1] + (12.6,))


class TestStatsAccounting:
    def test_merged_stats_sum_per_job_lookups(self, tmp_path):
        """Hits + misses merged across processes equal the summed
        per-job lookup counts, category by category."""
        systems = synth_systems(3, seed=707)
        batch = BatchRunner(
            workers=2, cache_dir=tmp_path / "cache", ks=KS
        ).run_systems(systems + systems)
        totals = {}
        for job in batch.jobs:
            assert job.cache, "worker jobs must report counter deltas"
            merge_stats(totals, job.cache)
        assert totals == batch.cache_stats
        for category, stats in batch.cache_stats.items():
            per_job = sum(
                job.cache[category]["hits"] + job.cache[category]["misses"]
                for job in batch.jobs
            )
            assert stats["hits"] + stats["misses"] == per_job
            assert 0 <= stats["disk_hits"] <= stats["hits"]

    def test_hit_rate_zero_lookup_edge(self):
        assert CacheStats().hit_rate == 0.0
        assert CacheStats().lookups == 0
        assert CacheStats(hits=3, misses=1).hit_rate == 0.75
        empty = BatchRunner(workers=1).run([])
        assert empty.cache_hit_rate == 0.0
        assert json.loads(empty.to_json())["job_count"] == 0

    def test_disk_hits_after_front_eviction(self, tmp_path):
        """A tiny LRU front spills to disk and promotes back, counting
        the promotion as hit + disk_hit."""
        cache = PersistentAnalysisCache(tmp_path, maxsize=1)
        cache.store("busy_time", "a", 1)
        cache.store("busy_time", "b", 2)  # evicts "a" from the front
        assert cache.lookup("busy_time", "a") == 1  # promoted from disk
        stats = cache.stats()["busy_time"]
        assert stats.hits == 1 and stats.disk_hits == 1 and stats.misses == 0
        assert stats.entries == 1  # the front stays bounded


class TestOptIntegration:
    def test_sensitivity_sweep_with_persistent_runner_matches_plain(self, tmp_path):
        from repro.opt import dmm_vs_scale
        from repro.synth import figure4_system

        system = figure4_system(calibrated=True)
        factors = [1.0, 1.25, 1.5]
        plain = dmm_vs_scale(system, "sigma_a", "sigma_c", factors, k=10)
        cache_dir = tmp_path / "cache"
        runner = BatchRunner(workers=2, cache_dir=cache_dir, ks=(10,))
        routed = dmm_vs_scale(
            system, "sigma_a", "sigma_c", factors, k=10, runner=runner
        )
        assert routed == plain
        warm_runner = BatchRunner(workers=1, cache_dir=cache_dir, ks=(10,))
        warm = dmm_vs_scale(
            system, "sigma_a", "sigma_c", factors, k=10, runner=warm_runner
        )
        assert warm == plain
        assert warm_runner.cache.miss_count == 0
        assert warm_runner.cache.disk_hit_count > 0
