"""Tests for the workload generators (case study, priorities, random)."""

import random

import pytest

from repro import GuaranteeStatus, analyze_twca
from repro.synth import (GeneratorConfig, exhaustive_assignments,
                         generate_feasible_system, generate_system,
                         priority_values, random_assignment, random_systems,
                         uunifast)


class TestCaseStudy:
    def test_figure4_structure(self, figure4):
        assert len(figure4) == 4
        assert {c.name for c in figure4.overload_chains} == {
            "sigma_a", "sigma_b"}
        assert figure4["sigma_c"].total_wcet == 51
        assert figure4["sigma_d"].total_wcet == 115
        assert figure4["sigma_a"].activation.delta_minus(2) == 700
        assert figure4["sigma_b"].activation.delta_minus(2) == 600

    def test_figure4_priorities_are_1_to_13(self, figure4):
        priorities = sorted(t.priority for t in figure4.tasks)
        assert priorities == list(range(1, 14))

    def test_figure4_validates(self, figure4):
        figure4.validate()
        assert figure4.utilization() < 1

    def test_calibrated_variant_differs_only_in_overload(self, figure4,
                                                         figure4_calibrated):
        for name in ("sigma_c", "sigma_d"):
            plain = figure4[name]
            calibrated = figure4_calibrated[name]
            assert plain.activation == calibrated.activation
        for name in ("sigma_a", "sigma_b"):
            assert (figure4[name].activation
                    != figure4_calibrated[name].activation)

    def test_figure1_structure(self, figure1):
        assert len(figure1["sigma_a"]) == 6
        assert len(figure1["sigma_b"]) == 3


class TestPriorityPermutations:
    def test_priority_values(self, figure4):
        assert priority_values(figure4) == list(range(1, 14))

    def test_random_assignment_is_permutation(self, figure4):
        rng = random.Random(1)
        assignment = random_assignment(figure4, rng)
        assert sorted(assignment.values()) == list(range(1, 14))
        assert set(assignment) == {t.name for t in figure4.tasks}

    def test_random_systems_preserve_structure(self, figure4):
        rng = random.Random(2)
        for system in random_systems(figure4, 5, rng):
            assert len(system) == 4
            assert sorted(t.priority for t in system.tasks) == \
                list(range(1, 14))
            # WCETs untouched.
            assert system["sigma_c"].total_wcet == 51

    def test_exhaustive_assignments_small(self):
        from repro import PeriodicModel, SystemBuilder
        system = (
            SystemBuilder("tiny", allow_shared_priorities=True)
            .chain("c", PeriodicModel(10), deadline=10)
            .task("a", priority=1, wcet=1)
            .task("b", priority=2, wcet=1)
            .task("d", priority=3, wcet=1)
            .build()
        )
        assignments = list(exhaustive_assignments(system))
        assert len(assignments) == 6
        assert len({tuple(sorted(a.items())) for a in assignments}) == 6

    def test_exhaustive_limit(self, figure4):
        with pytest.raises(ValueError):
            list(exhaustive_assignments(figure4, limit=100))


class TestUUniFast:
    @pytest.mark.parametrize("seed", range(5))
    def test_sums_to_total(self, seed):
        rng = random.Random(seed)
        utils = uunifast(rng, 6, 0.75)
        assert sum(utils) == pytest.approx(0.75)
        assert all(u >= 0 for u in utils)

    def test_single_bucket(self):
        assert uunifast(random.Random(0), 1, 0.4) == [0.4]

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            uunifast(random.Random(0), 0, 0.5)


class TestGenerator:
    @pytest.mark.parametrize("seed", range(6))
    def test_generated_system_is_valid(self, seed):
        rng = random.Random(seed)
        system = generate_system(rng, GeneratorConfig())
        # Unique priorities, disjoint chains: System() enforces both; a
        # successful construction plus curve checks is the contract.
        for chain in system.chains:
            chain.activation.validate(up_to=8)

    @pytest.mark.parametrize("seed", range(6))
    def test_feasible_generator_bounds_utilization(self, seed):
        rng = random.Random(100 + seed)
        system = generate_feasible_system(rng, GeneratorConfig(
            chains=3, overload_chains=2, utilization=0.6))
        assert system.utilization() < 1

    def test_overload_chains_marked(self):
        rng = random.Random(3)
        system = generate_system(rng, GeneratorConfig(
            chains=2, overload_chains=2))
        assert len(system.overload_chains) == 2

    def test_asynchronous_fraction(self):
        rng = random.Random(4)
        system = generate_system(rng, GeneratorConfig(
            chains=6, overload_chains=0, asynchronous_fraction=1.0))
        assert all(c.is_asynchronous for c in system.typical_chains)

    def test_generated_systems_are_analyzable(self):
        rng = random.Random(5)
        for _ in range(4):
            system = generate_feasible_system(rng, GeneratorConfig(
                chains=2, overload_chains=1, utilization=0.5))
            for chain in system.typical_chains:
                result = analyze_twca(system, chain)
                assert result.status in GuaranteeStatus
