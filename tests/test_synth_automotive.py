"""Tests for the automotive (WATERS-style) workload generator."""

import random

import pytest

from repro import analyze_all
from repro.synth.automotive import (PERIOD_PROFILE, AutomotiveConfig,
                                    draw_period,
                                    generate_automotive_system,
                                    generate_feasible_automotive)


class TestPeriodProfile:
    def test_shares_sum_to_one(self):
        assert sum(share for _, share in PERIOD_PROFILE) == pytest.approx(
            1.0)

    def test_draw_period_in_pool(self):
        rng = random.Random(0)
        pool = {period for period, _ in PERIOD_PROFILE}
        for _ in range(200):
            assert draw_period(rng) in pool

    def test_draw_distribution_roughly_matches(self):
        rng = random.Random(1)
        draws = [draw_period(rng) for _ in range(4000)]
        frequent = sum(1 for p in draws if p in (10_000, 20_000))
        # Profile puts 50 % of tasks on 10/20 ms.
        assert 0.4 <= frequent / len(draws) <= 0.6


class TestGenerator:
    @pytest.mark.parametrize("seed", range(5))
    def test_structure(self, seed):
        rng = random.Random(seed)
        system = generate_automotive_system(rng)
        config = AutomotiveConfig()
        assert len(system.typical_chains) == config.chains
        assert len(system.overload_chains) == config.overload_chains
        # Unique priorities are validated by System(); spot-check range.
        priorities = sorted(t.priority for t in system.tasks)
        assert priorities == list(range(1, len(priorities) + 1))

    def test_overload_has_top_priorities(self):
        rng = random.Random(2)
        system = generate_automotive_system(rng)
        top = max(t.priority for t in system.tasks)
        overload_priorities = {
            t.priority for c in system.overload_chains for t in c.tasks}
        assert top in overload_priorities

    def test_rate_monotonic_bands(self):
        rng = random.Random(3)
        system = generate_automotive_system(rng)
        chains = sorted(system.typical_chains,
                        key=lambda c: c.activation.period)
        for faster, slower in zip(chains, chains[1:]):
            if faster.activation.period == slower.activation.period:
                continue
            assert faster.min_priority > slower.max_priority

    @pytest.mark.parametrize("seed", range(4))
    def test_feasible_generator(self, seed):
        rng = random.Random(100 + seed)
        system = generate_feasible_automotive(rng)
        assert system.utilization() < 0.98

    def test_generated_system_analyzes(self):
        rng = random.Random(5)
        system = generate_feasible_automotive(rng, AutomotiveConfig(
            chains=4, utilization=0.5))
        results = analyze_all(system)
        assert len(results) == 4
        for result in results.values():
            assert result.dmm(10) <= 10
