"""Tests of the Theorem 2 latency analysis — Table I of the paper."""

import pytest

from repro import BusyWindowDivergence, analyze_latency
from repro import PeriodicModel, SystemBuilder


class TestTableI:
    """Experiment 1, first analysis: WCL(sigma_c)=331, WCL(sigma_d)=175."""

    def test_wcl_sigma_c(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_c"])
        assert result.wcl == 331

    def test_wcl_sigma_d(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_d"])
        assert result.wcl == 175

    def test_sigma_c_misses_its_deadline(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_c"])
        assert not result.meets(figure4["sigma_c"].deadline)

    def test_sigma_d_meets_its_deadline(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_d"])
        assert result.meets(figure4["sigma_d"].deadline)

    def test_k_c_is_2(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_c"])
        assert result.max_queue == 2
        assert result.latencies == (331, 182)
        assert result.critical_q == 1

    def test_k_d_is_1(self, figure4):
        assert analyze_latency(figure4, figure4["sigma_d"]).max_queue == 1

    def test_busy_time_accessor(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_c"])
        assert result.busy_time(1) == 331
        assert result.busy_time(2) == 382
        with pytest.raises(IndexError):
            result.busy_time(3)

    def test_deadline_miss_count_lemma3(self, figure4):
        # N_c = 1: only the q=1 position can miss (331 > 200; 182 <= 200).
        result = analyze_latency(figure4, figure4["sigma_c"])
        assert result.deadline_miss_count(200) == 1


class TestTypicalAnalysis:
    """Experiment 1, second analysis: without overload the system is
    schedulable."""

    def test_sigma_c_schedulable_without_overload(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_c"],
                                 include_overload=False)
        assert result.wcl <= 200
        assert not result.include_overload

    def test_sigma_d_schedulable_without_overload(self, figure4):
        result = analyze_latency(figure4, figure4["sigma_d"],
                                 include_overload=False)
        assert result.wcl <= 200

    def test_typical_never_exceeds_full(self, figure4):
        for name in ("sigma_c", "sigma_d"):
            full = analyze_latency(figure4, figure4[name]).wcl
            typical = analyze_latency(figure4, figure4[name],
                                      include_overload=False).wcl
            assert typical <= full


class TestStructuralProperties:
    def test_wcl_at_least_chain_wcet(self, figure4, figure1):
        for system in (figure4, figure1):
            for chain in system.chains:
                result = analyze_latency(system, chain)
                assert result.wcl >= chain.total_wcet

    def test_single_chain_system_wcl_is_wcet(self):
        system = (
            SystemBuilder("solo")
            .chain("only", PeriodicModel(100), deadline=100)
            .task("only.a", priority=2, wcet=10)
            .task("only.b", priority=1, wcet=15)
            .build()
        )
        result = analyze_latency(system, system["only"])
        assert result.wcl == 25
        assert result.max_queue == 1

    def test_max_q_guard(self, figure4):
        with pytest.raises(BusyWindowDivergence):
            analyze_latency(figure4, figure4["sigma_c"], max_q=1)

    def test_latencies_match_busy_minus_delta(self, figure4):
        chain = figure4["sigma_c"]
        result = analyze_latency(figure4, chain)
        for q, latency in enumerate(result.latencies, start=1):
            expected = (result.busy_time(q)
                        - chain.activation.delta_minus(q))
            assert latency == expected


class TestDeferredChainBenefit:
    """The segment machinery must beat all-arbitrary interference on
    systems with deferred chains (sigma_d's analysis benefits from
    sigma_c's segments)."""

    def test_segment_aware_beats_arbitrary_on_sigma_d(self, figure4):
        from repro.baselines import analyze_latency_arbitrary
        aware = analyze_latency(figure4, figure4["sigma_d"]).wcl
        blunt = analyze_latency_arbitrary(figure4, figure4["sigma_d"]).wcl
        assert aware < blunt

    def test_equal_when_no_deferred_chain(self, figure4):
        from repro.baselines import analyze_latency_arbitrary
        # All interferers of sigma_c are arbitrary already.
        aware = analyze_latency(figure4, figure4["sigma_c"]).wcl
        blunt = analyze_latency_arbitrary(figure4, figure4["sigma_c"]).wcl
        assert aware == blunt
