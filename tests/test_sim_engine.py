"""Hand-checkable scenarios for the SPP chain simulator."""

import pytest

from repro import ChainKind, PeriodicModel, SporadicModel, SystemBuilder
from repro.sim import Simulator


def run(system, activations, horizon=10_000):
    return Simulator(system).run(activations, horizon)


class TestSingleChain:
    def _system(self):
        return (
            SystemBuilder("solo")
            .chain("c", PeriodicModel(100), deadline=100)
            .task("c.a", priority=2, wcet=10)
            .task("c.b", priority=1, wcet=5)
            .build()
        )

    def test_isolated_latency_is_sum_of_wcets(self):
        result = run(self._system(), {"c": [0.0]})
        assert result.latencies("c") == [15]

    def test_task_finish_times(self):
        result = run(self._system(), {"c": [0.0]})
        record = result.instances["c"][0]
        assert record.task_finishes["c.a"] == 10
        assert record.task_finishes["c.b"] == 15

    def test_back_to_back_instances(self):
        result = run(self._system(), {"c": [0.0, 100.0, 200.0]})
        assert result.latencies("c") == [15, 15, 15]

    def test_unsorted_activations_rejected(self):
        with pytest.raises(ValueError):
            run(self._system(), {"c": [100.0, 0.0]})


class TestPreemption:
    def _system(self):
        return (
            SystemBuilder("pre")
            .chain("low", PeriodicModel(1000), deadline=1000)
            .task("low.t", priority=1, wcet=50)
            .chain("high", PeriodicModel(1000))
            .task("high.t", priority=2, wcet=10)
            .build()
        )

    def test_high_priority_preempts(self):
        result = run(self._system(), {"low": [0.0], "high": [20.0]})
        # low runs [0,20), preempted, high [20,30), low resumes [30,60).
        assert result.latencies("low") == [60]
        assert result.latencies("high") == [10]
        low_slices = [s for s in result.slices if s.chain == "low"]
        assert [(s.start, s.end) for s in low_slices] == [(0, 20), (30, 60)]

    def test_lower_priority_waits(self):
        result = run(self._system(), {"low": [0.0], "high": [0.0]})
        assert result.latencies("high") == [10]
        assert result.latencies("low") == [60]


class TestSynchronousSemantics:
    def _system(self, kind):
        return (
            SystemBuilder("sem")
            .chain("c", PeriodicModel(10), deadline=100, kind=kind)
            .task("c.head", priority=2, wcet=8)
            .task("c.tail", priority=1, wcet=8)
            .build()
        )

    def test_sync_chain_serializes_instances(self):
        system = self._system(ChainKind.SYNCHRONOUS)
        result = run(system, {"c": [0.0, 10.0]})
        # Second instance must wait for the first to finish (t=16).
        first, second = result.instances["c"]
        assert first.finish == 16
        assert second.start == 16
        assert second.finish == 32
        assert result.latencies("c") == [16, 22]

    def test_async_chain_overlaps_instances(self):
        system = self._system(ChainKind.ASYNCHRONOUS)
        result = run(system, {"c": [0.0, 10.0]})
        # head of instance 1 (priority 2) preempts tail of instance 0
        # (priority 1): tail-0 runs [8,10), head-1 [10,18),
        # tail-0 resumes [18,24), tail-1 [24,32).
        first, second = result.instances["c"]
        assert first.finish == 24
        assert second.finish == 32

    def test_async_respects_per_task_fifo(self):
        system = self._system(ChainKind.ASYNCHRONOUS)
        result = run(system, {"c": [0.0, 0.0]})
        # Two simultaneous activations: head-1 cannot run before head-0
        # finished (FIFO), even though both are ready at t=0.
        head_slices = [s for s in result.slices if s.task == "c.head"]
        assert [s.instance for s in head_slices] == [0, 1]


class TestDeadlineAgnostic:
    def test_missing_instances_run_to_completion(self):
        system = (
            SystemBuilder("miss")
            .chain("c", PeriodicModel(10), deadline=5)
            .task("c.t", priority=1, wcet=8)
            .build()
        )
        result = run(system, {"c": [0.0, 10.0]})
        # Both instances finish despite missing deadline 5.
        assert result.latencies("c") == [8, 8]
        assert result.miss_count("c") == 2
        assert result.miss_flags("c") == [True, True]


class TestMetrics:
    def _missy_result(self):
        system = (
            SystemBuilder("m")
            .chain("c", PeriodicModel(10), deadline=12)
            .task("c.t", priority=1, wcet=9)
            .chain("noise", SporadicModel(50), overload=True)
            .task("noise.t", priority=2, wcet=6)
            .build()
        )
        acts = {"c": [0.0, 10.0, 20.0, 30.0, 40.0], "noise": [0.0]}
        return run(system, acts)

    def test_empirical_dmm_window(self):
        result = self._missy_result()
        flags = result.miss_flags("c")
        k = 2
        expected = max(sum(flags[i:i + k])
                       for i in range(len(flags) - k + 1))
        assert result.empirical_dmm("c", k) == expected

    def test_empirical_dmm_window_larger_than_run(self):
        result = self._missy_result()
        assert result.empirical_dmm("c", 99) == result.miss_count("c")

    def test_busy_windows_merge_overlaps(self):
        result = self._missy_result()
        windows = result.busy_windows("c")
        assert all(start < end for start, end in windows)
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert e1 < s2  # disjoint and sorted

    def test_max_latency(self):
        result = self._missy_result()
        assert result.max_latency("c") == max(result.latencies("c"))


class TestBcetMode:
    def test_bcet_runs_shorter(self):
        system = (
            SystemBuilder("b")
            .chain("c", PeriodicModel(100), deadline=100)
            .task("c.t", priority=1, wcet=10, bcet=4)
            .build()
        )
        wcet_result = Simulator(system).run({"c": [0.0]}, 100)
        bcet_result = Simulator(system, use_bcet=True).run({"c": [0.0]}, 100)
        assert wcet_result.latencies("c") == [10]
        assert bcet_result.latencies("c") == [4]


class TestBoundaryTieBreak:
    """Half-open window convention: completions at t precede arrivals
    at t.  Regression for fuzz seed 5091: a zero-wcet chain tail must
    complete at the instant the busy window closes, not be preempted by
    an arrival at exactly that instant."""

    def _system(self):
        return (
            SystemBuilder("tie")
            .chain("low", PeriodicModel(200), deadline=200)
            .task("low.work", priority=1, wcet=40)
            .task("low.signal", priority=3, wcet=0)
            .chain("high", PeriodicModel(40), deadline=40)
            .task("high.t", priority=2, wcet=10)
            .build()
        )

    def test_zero_wcet_tail_completes_at_boundary(self):
        system = self._system()
        result = run(system, {"low": [0.0],
                              "high": [0.0, 40.0, 80.0]})
        # low.work executes in the gaps [10,40) and [50,60); the
        # zero-wcet signal completes at t=60 immediately after it, and
        # the observed latency must respect the busy-window bound.
        from repro import analyze_latency
        bound = analyze_latency(system, system["low"]).wcl
        assert result.latencies("low") == [60]
        assert 60 <= bound

    def test_fuzz_seed_5091_shape(self):
        """Distilled seed-5091 scenario: the interferer's period equals
        the victim's one-event busy time, and the victim's tail has
        zero wcet."""
        system = (
            SystemBuilder("knife")
            .chain("victim", PeriodicModel(480), deadline=480)
            .task("victim.t0", priority=1, wcet=20)
            .task("victim.t1", priority=3, wcet=0)
            .chain("noise", PeriodicModel(40), deadline=40)
            .task("noise.t", priority=2, wcet=20)
            .build()
        )
        from repro import analyze_latency
        # B(1) = 20 + eta_noise(B) * 20 -> fixed point 40: the second
        # noise arrival lands exactly at 40.
        bound = analyze_latency(system, system["victim"]).wcl
        assert bound == 40
        result = run(system, {
            "victim": [0.0],
            "noise": [0.0, 40.0, 80.0, 120.0]})
        assert result.latencies("victim") == [40]
