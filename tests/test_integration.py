"""End-to-end integration tests crossing all subsystems."""

import random

import pytest

from repro import DeadlineMissModel, analyze_latency, analyze_twca
from repro.ilp import scipy_available
from repro.model.serialization import system_from_json, system_to_json
from repro.sim import Simulator, simulate_worst_case, worst_case_activations
from repro.synth import GeneratorConfig, generate_feasible_system
from repro.weaklyhard import AnyMisses, MKFirm


class TestFullPipelineCaseStudy:
    """The complete paper workflow: model -> latency -> TWCA -> DMM ->
    weakly-hard verdict -> simulation cross-check."""

    def test_paper_narrative(self, figure4_calibrated):
        system = figure4_calibrated
        # 1. Table I: sigma_c unschedulable, sigma_d fine.
        wcl_c = analyze_latency(system, system["sigma_c"]).wcl
        wcl_d = analyze_latency(system, system["sigma_d"]).wcl
        assert wcl_c == 331 and wcl_c > 200
        assert wcl_d == 175 and wcl_d <= 200
        # 2. Typical analysis: schedulable without overload.
        assert analyze_latency(system, system["sigma_c"],
                               include_overload=False).wcl <= 200
        # 3. TWCA: Table II.
        twca = analyze_twca(system, system["sigma_c"])
        dmm = DeadlineMissModel(twca.dmm, name="sigma_c")
        assert dmm.table([3, 76, 250]) == {3: 3, 76: 4, 250: 5}
        # 4. Weakly-hard verdicts derived from the DMM.
        assert AnyMisses(3, 3).satisfied_by(dmm)
        assert MKFirm(72, 76).satisfied_by(dmm)
        assert not MKFirm(74, 76).satisfied_by(dmm)
        # 5. Simulation never exceeds the bounds.
        result = simulate_worst_case(system, 6000)
        assert result.max_latency("sigma_c") <= wcl_c
        for k in (3, 10):
            assert result.empirical_dmm("sigma_c", k) <= dmm(k)

    def test_serialization_survives_pipeline(self, figure4):
        restored = system_from_json(system_to_json(figure4))
        twca = analyze_twca(restored, restored["sigma_c"])
        assert twca.dmm(3) == 3


class TestRandomPipeline:
    @pytest.mark.parametrize("seed", range(4))
    def test_generate_analyze_simulate_roundtrip(self, seed):
        rng = random.Random(seed)
        system = generate_feasible_system(rng, GeneratorConfig(
            chains=2, overload_chains=1, utilization=0.5))
        # Serialize / restore.
        system = system_from_json(system_to_json(system))
        simulator = Simulator(system)
        sim = simulator.run(worst_case_activations(system, 4000), 4000)
        for chain in system.typical_chains:
            twca = analyze_twca(system, chain)
            if twca.full_latency is not None:
                assert sim.max_latency(chain.name) <= twca.wcl + 1e-9
            dmm = DeadlineMissModel(twca.dmm)
            for k in (1, 4, 9):
                assert sim.empirical_dmm(chain.name, k) <= dmm(k)


class TestCrossBackendPipeline:
    def test_backends_agree_on_random_systems(self):
        rng = random.Random(99)
        for _ in range(3):
            system = generate_feasible_system(rng, GeneratorConfig(
                chains=2, overload_chains=2, utilization=0.55,
                overload_utilization=0.08))
            for chain in system.typical_chains:
                backends = ["branch_bound", "dp"]
                if scipy_available():
                    backends.append("scipy")
                results = {
                    backend: analyze_twca(system, chain, backend=backend)
                    for backend in backends}
                for k in (1, 5, 10):
                    values = {backend: result.dmm(k)
                              for backend, result in results.items()}
                    assert len(set(values.values())) == 1, values
