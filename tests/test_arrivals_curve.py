"""Unit tests for explicit staircase arrival curves."""

import math

import pytest

from repro.arrivals import ArrivalCurve
from repro.synth import calibrated_overload_curves


class TestConstruction:
    def test_requires_zero_prefix(self):
        with pytest.raises(ValueError):
            ArrivalCurve([0, 5, 10])
        with pytest.raises(ValueError):
            ArrivalCurve([1, 0, 10])
        with pytest.raises(ValueError):
            ArrivalCurve([0])

    def test_rejects_decreasing_points(self):
        with pytest.raises(ValueError):
            ArrivalCurve([0, 0, 100, 50])

    def test_rejects_zero_tail_with_points(self):
        with pytest.raises(ValueError):
            ArrivalCurve([0, 0, 100], tail_distance=0)

    def test_rejects_inconsistent_delta_plus(self):
        with pytest.raises(ValueError):
            ArrivalCurve([0, 0, 100], delta_max_points=[0, 0, 50])

    def test_default_tail_is_last_increment(self):
        curve = ArrivalCurve([0, 0, 100, 250])
        assert curve.tail_distance == 150


class TestEvaluation:
    def test_stored_prefix(self):
        curve = ArrivalCurve([0, 0, 700, 15_200, 50_000])
        assert curve.delta_minus(2) == 700
        assert curve.delta_minus(3) == 15_200
        assert curve.delta_minus(4) == 50_000

    def test_extrapolation(self):
        curve = ArrivalCurve([0, 0, 100], tail_distance=40)
        assert curve.delta_minus(3) == 140
        assert curve.delta_minus(5) == 220

    def test_delta_plus_defaults_to_infinity(self):
        curve = ArrivalCurve([0, 0, 100])
        assert curve.delta_plus(2) == math.inf

    def test_explicit_delta_plus(self):
        curve = ArrivalCurve([0, 0, 100],
                             delta_max_points=[0, 0, 300, 700])
        assert curve.delta_plus(2) == 300
        assert curve.delta_plus(3) == 700
        assert curve.delta_plus(4) == math.inf

    def test_eta_plus_from_staircase(self):
        curve = ArrivalCurve([0, 0, 700, 15_200, 50_000])
        assert curve.eta_plus(700) == 1
        assert curve.eta_plus(701) == 2
        assert curve.eta_plus(15_200) == 2
        assert curve.eta_plus(15_201) == 3
        assert curve.eta_plus(50_001) == 4

    def test_validate_passes(self):
        ArrivalCurve([0, 0, 700, 15_200, 50_000]).validate()

    def test_duality(self):
        from repro.arrivals.algebra import check_duality
        check_duality(ArrivalCurve([0, 0, 700, 15_200, 50_000]))


class TestFromTrace:
    def test_simple_periodic_trace(self):
        curve = ArrivalCurve.from_trace([0, 100, 200, 300, 400])
        assert curve.delta_minus(2) == 100
        assert curve.delta_minus(3) == 200
        assert curve.delta_plus(2) == 100

    def test_bursty_trace(self):
        # Two bursts of two close events.
        curve = ArrivalCurve.from_trace([0, 10, 500, 510])
        assert curve.delta_minus(2) == 10
        assert curve.delta_minus(3) == 500
        assert curve.delta_plus(2) == 490

    def test_trace_needs_two_events(self):
        with pytest.raises(ValueError):
            ArrivalCurve.from_trace([5])

    def test_unsorted_trace_is_sorted(self):
        curve = ArrivalCurve.from_trace([400, 0, 200, 100, 300])
        assert curve.delta_minus(2) == 100


class TestCalibratedCurves:
    """The Table II calibration (DESIGN.md §4)."""

    def test_keeps_printed_delta2(self):
        curves = calibrated_overload_curves()
        assert curves["sigma_a"].delta_minus(2) == 700
        assert curves["sigma_b"].delta_minus(2) == 600

    def test_transition_windows(self):
        # Omega = eta_plus(200 (k-1) + 331) + 1 must step exactly at
        # k = 76 and k = 250.
        for curve in calibrated_overload_curves().values():
            assert curve.eta_plus(200 * 74 + 331) == 2   # k = 75
            assert curve.eta_plus(200 * 75 + 331) == 3   # k = 76
            assert curve.eta_plus(200 * 248 + 331) == 3  # k = 249
            assert curve.eta_plus(200 * 249 + 331) == 4  # k = 250

    def test_curves_are_superadditive(self):
        from repro.arrivals.algebra import superadditive_closure_defect
        for curve in calibrated_overload_curves().values():
            assert superadditive_closure_defect(curve, up_to=6) == 0.0
