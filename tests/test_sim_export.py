"""Tests for simulation trace export."""

import csv
import io
import json

import pytest

from repro import PeriodicModel, SporadicModel, SystemBuilder
from repro.sim import Simulator
from repro.sim.export import (instance_records, instances_csv,
                              schedule_csv, schedule_records, trace_json,
                              write_trace)


@pytest.fixture()
def result():
    system = (
        SystemBuilder("exp")
        .chain("c", PeriodicModel(20), deadline=15)
        .task("c.a", priority=2, wcet=4)
        .task("c.b", priority=1, wcet=3)
        .chain("isr", SporadicModel(100), overload=True)
        .task("isr.t", priority=3, wcet=5)
        .build()
    )
    return Simulator(system).run(
        {"c": [0.0, 20.0, 40.0], "isr": [0.0]}, 60)


class TestRecords:
    def test_schedule_rows_ordered_and_complete(self, result):
        rows = schedule_records(result)
        starts = [row["start"] for row in rows]
        assert starts == sorted(starts)
        executed = sum(row["duration"] for row in rows)
        # 3 instances of c (7 each) + 1 isr (5).
        assert executed == pytest.approx(26)

    def test_instance_rows_carry_miss_verdicts(self, result):
        rows = instance_records(result)
        c_rows = [row for row in rows if row["chain"] == "c"]
        assert len(c_rows) == 3
        # First instance delayed by the ISR: 5 + 7 = 12 <= 15 -> met.
        assert c_rows[0]["latency"] == 12
        assert c_rows[0]["missed"] is False
        isr_rows = [row for row in rows if row["chain"] == "isr"]
        assert isr_rows[0]["deadline"] is None

    def test_csv_round_trip(self, result):
        text = instances_csv(result)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 4
        assert parsed[0]["chain"] in ("c", "isr")

    def test_empty_schedule_csv(self):
        system = (
            SystemBuilder("e")
            .chain("c", PeriodicModel(10), deadline=10)
            .task("c.t", priority=1, wcet=1)
            .build()
        )
        empty = Simulator(system).run({"c": []}, 10)
        assert schedule_csv(empty) == ""


class TestJson:
    def test_document_structure(self, result):
        doc = json.loads(trace_json(result))
        assert doc["system"] == "exp"
        assert doc["horizon"] == 60
        assert len(doc["schedule"]) == len(schedule_records(result))
        assert len(doc["instances"]) == 4

    def test_write_trace_json_and_csv(self, result, tmp_path):
        json_path = tmp_path / "trace.json"
        csv_path = tmp_path / "trace.csv"
        write_trace(result, str(json_path))
        write_trace(result, str(csv_path))
        assert json.loads(json_path.read_text())["system"] == "exp"
        assert csv_path.read_text().startswith("chain,")
