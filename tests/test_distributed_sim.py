"""Validation of the distributed simulator against the distributed
analysis: leg and end-to-end latencies must respect the converged
bounds."""

import pytest

from repro.arrivals import PeriodicModel, SporadicModel
from repro.distributed import (DistributedChain, DistributedSystem,
                               analyze_distributed, distributed_dmm, on)
from repro.distributed.sim import (DistributedSimulator,
                                   worst_case_distributed_activations)
from repro.model import Task


def _system(overload_wcet=25, deadline=120):
    pipeline = DistributedChain(
        "pipeline",
        [on("cpu0", Task("p.read", priority=2, wcet=10, bcet=5)),
         on("cpu0", Task("p.filter", priority=1, wcet=15, bcet=10)),
         on("cpu1", Task("p.fuse", priority=2, wcet=20, bcet=12)),
         on("cpu1", Task("p.act", priority=1, wcet=10, bcet=8))],
        PeriodicModel(100), deadline=deadline)
    noise = DistributedChain(
        "noise",
        [on("cpu1", Task("n.irq", priority=3, wcet=overload_wcet))],
        SporadicModel(400), overload=True)
    local = DistributedChain(
        "local",
        [on("cpu0", Task("l.t", priority=3, wcet=8))],
        PeriodicModel(50), deadline=50)
    return DistributedSystem([pipeline, noise, local], name="demo")


def simulate(system, horizon=4000):
    streams = worst_case_distributed_activations(system, horizon)
    return DistributedSimulator(system).run(streams, horizon)


class TestBasicExecution:
    def test_isolated_pipeline_latency(self):
        chain = DistributedChain(
            "solo",
            [on("a", Task("s.x", priority=1, wcet=10)),
             on("b", Task("s.y", priority=1, wcet=20))],
            PeriodicModel(1000), deadline=1000)
        system = DistributedSystem([chain], name="solo")
        result = DistributedSimulator(system).run({"solo": [0.0]}, 100)
        assert result.latencies("solo") == [30]
        record = result.instances["solo"][0]
        assert record.task_finishes["s.x"] == 10
        assert record.task_finishes["s.y"] == 30

    def test_resources_execute_in_parallel(self):
        left = DistributedChain(
            "left", [on("a", Task("l.t", priority=1, wcet=50))],
            PeriodicModel(1000), deadline=1000)
        right = DistributedChain(
            "right", [on("b", Task("r.t", priority=1, wcet=50))],
            PeriodicModel(1000), deadline=1000)
        system = DistributedSystem([left, right], name="par")
        result = DistributedSimulator(system).run(
            {"left": [0.0], "right": [0.0]}, 200)
        # No mutual interference across resources.
        assert result.latencies("left") == [50]
        assert result.latencies("right") == [50]

    def test_preemption_within_resource(self):
        low = DistributedChain(
            "low", [on("a", Task("lo.t", priority=1, wcet=30))],
            PeriodicModel(1000), deadline=1000)
        high = DistributedChain(
            "high", [on("a", Task("hi.t", priority=2, wcet=10))],
            PeriodicModel(1000), deadline=1000)
        system = DistributedSystem([low, high], name="pre")
        result = DistributedSimulator(system).run(
            {"low": [0.0], "high": [5.0]}, 200)
        assert result.latencies("high") == [10]
        assert result.latencies("low") == [40]

    def test_sync_chain_serializes(self):
        chain = DistributedChain(
            "s",
            [on("a", Task("s.x", priority=2, wcet=30)),
             on("b", Task("s.y", priority=1, wcet=30))],
            PeriodicModel(40), deadline=500)
        system = DistributedSystem([chain], name="sync")
        result = DistributedSimulator(system).run(
            {"s": [0.0, 40.0]}, 500)
        first, second = result.instances["s"]
        # Instance 1 may not start on 'a' before instance 0 left 'b'.
        assert second.task_finishes["s.x"] >= first.finish

    def test_unsorted_activations_rejected(self):
        system = _system()
        with pytest.raises(ValueError):
            DistributedSimulator(system).run(
                {"pipeline": [10.0, 0.0]}, 100)


class TestBoundsHold:
    def test_e2e_latency_below_analysis(self):
        system = _system()
        analysis = analyze_distributed(system)
        result = simulate(system)
        for name in ("pipeline", "local"):
            observed = result.max_latency(name)
            bound = analysis[name].wcl
            assert observed <= bound + 1e-9, (
                f"{name}: {observed} > {bound}")

    def test_leg_latencies_below_leg_bounds(self):
        system = _system()
        analysis = analyze_distributed(system)
        result = simulate(system)
        e2e = analysis["pipeline"]
        legs = system["pipeline"].legs()
        for record in result.instances["pipeline"]:
            if record.finish is None:
                continue
            leg_input = record.activation
            for leg_result, (resource, tasks) in zip(e2e.legs, legs):
                names = [t.name for t in tasks]
                finish = record.task_finishes[names[-1]]
                observed = finish - leg_input
                assert observed <= leg_result.wcl + 1e-9, (
                    f"leg on {resource}: {observed} > {leg_result.wcl}")
                leg_input = finish

    def test_empirical_dmm_below_distributed_dmm(self):
        system = _system(overload_wcet=60, deadline=95)
        analysis = analyze_distributed(system)
        result = simulate(system, horizon=8000)
        assert result.miss_flags("pipeline")
        for k in (1, 3, 10):
            bound = distributed_dmm(system, "pipeline", k,
                                    analysis=analysis)
            observed = result.empirical_dmm("pipeline", k)
            assert observed <= bound, (
                f"k={k}: observed {observed} > bound {bound}")

    @pytest.mark.parametrize("overload_wcet", [25, 45, 60])
    def test_bounds_across_overload_intensities(self, overload_wcet):
        system = _system(overload_wcet=overload_wcet)
        analysis = analyze_distributed(system)
        result = simulate(system)
        assert (result.max_latency("pipeline")
                <= analysis["pipeline"].wcl + 1e-9)
