"""Soundness validation: simulated behaviour never exceeds the analytical
bounds.  This is the library's strongest defence of the Theorem 1/2/3
implementation."""

import random

import pytest

from repro import analyze_latency, analyze_twca
from repro.kernel import HAVE_NUMPY, using_kernel
from repro.sim import (Simulator, randomized_activations,
                       simulate_worst_case, validate_against_analysis,
                       busy_window_activation_counts)
from repro.synth import (GeneratorConfig, figure4_system,
                         generate_feasible_system, random_systems)


@pytest.fixture(autouse=True,
                params=("numpy", "python") if HAVE_NUMPY else ("python",))
def sim_kernel(request):
    """Every soundness check runs once per simulation backend: the
    analytical bounds must hold for (identical) traces of both."""
    with using_kernel(request.param):
        yield request.param


class TestCaseStudy:
    def test_simulated_latency_equals_wcl(self, figure4):
        """On the case study the bound is tight: the critical-instant
        simulation reaches exactly WCL for both analyzed chains."""
        result = simulate_worst_case(figure4, 4000)
        for name in ("sigma_c", "sigma_d"):
            analytical = analyze_latency(figure4, figure4[name]).wcl
            assert result.max_latency(name) == analytical

    def test_validation_report_ok(self, figure4):
        twca = analyze_twca(figure4, figure4["sigma_c"])
        table = {k: twca.dmm(k) for k in (1, 3, 5, 10)}
        report = validate_against_analysis(
            figure4, "sigma_c", twca.wcl, table, horizon=8000)
        assert report.latency_ok
        assert report.dmm_ok
        assert report.ok

    def test_observed_misses_nonzero(self, figure4):
        """The overload really causes misses in simulation (the DMM is
        not vacuously validated)."""
        result = simulate_worst_case(figure4, 4000)
        assert result.miss_count("sigma_c") >= 1

    def test_busy_window_count_within_k(self, figure4):
        result = simulate_worst_case(figure4, 4000)
        k_c = analyze_latency(figure4, figure4["sigma_c"]).max_queue
        counts = busy_window_activation_counts(result, "sigma_c")
        assert max(counts) <= k_c


class TestRandomizedSystems:
    @pytest.mark.parametrize("seed", range(8))
    def test_worst_case_simulation_below_wcl(self, seed):
        rng = random.Random(seed)
        system = generate_feasible_system(rng, GeneratorConfig(
            chains=2, overload_chains=1, utilization=0.5,
            overload_utilization=0.05))
        result = simulate_worst_case(system, 6000)
        for chain in system.typical_chains:
            analytical = analyze_latency(system, chain).wcl
            observed = result.max_latency(chain.name)
            assert observed <= analytical + 1e-9, (
                f"{chain.name}: observed {observed} > bound {analytical}"
                f" (seed {seed})")

    @pytest.mark.parametrize("seed", range(8))
    def test_random_activations_below_wcl(self, seed):
        rng = random.Random(1000 + seed)
        system = generate_feasible_system(rng, GeneratorConfig(
            chains=2, overload_chains=1, utilization=0.5,
            overload_utilization=0.05))
        simulator = Simulator(system)
        streams = randomized_activations(system, 6000, rng,
                                         slack_scale=0.3)
        result = simulator.run(streams, 6000)
        for chain in system.typical_chains:
            analytical = analyze_latency(system, chain).wcl
            assert result.max_latency(chain.name) <= analytical + 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_empirical_dmm_below_analytical(self, seed):
        rng = random.Random(2000 + seed)
        system = generate_feasible_system(rng, GeneratorConfig(
            chains=2, overload_chains=1, utilization=0.55,
            overload_utilization=0.08, deadline_factor=0.9))
        result = simulate_worst_case(system, 8000)
        for chain in system.typical_chains:
            twca = analyze_twca(system, chain)
            for k in (1, 3, 5, 10):
                observed = result.empirical_dmm(chain.name, k)
                assert observed <= twca.dmm(k), (
                    f"{chain.name} k={k}: {observed} > {twca.dmm(k)} "
                    f"(seed {seed})")


class TestPriorityPermutations:
    """The Experiment 2 population: bounds hold under every sampled
    priority assignment."""

    @pytest.mark.parametrize("seed", range(5))
    def test_bounds_hold_under_permutation(self, seed):
        rng = random.Random(seed)
        base = figure4_system()
        for system in random_systems(base, 3, rng):
            result = simulate_worst_case(system, 4000)
            for name in ("sigma_c", "sigma_d"):
                twca = analyze_twca(system, system[name])
                observed_wcl = result.max_latency(name)
                assert observed_wcl <= twca.wcl + 1e-9
                for k in (1, 5, 10):
                    assert (result.empirical_dmm(name, k)
                            <= twca.dmm(k))


@pytest.mark.slow
class TestLongHorizonSoak:
    """Opt-in soak: 10^6 time units of the case study (run -m slow)."""

    def test_case_study_long_run(self, figure4):
        result = simulate_worst_case(figure4, 1_000_000)
        for name in ("sigma_c", "sigma_d"):
            bound = analyze_latency(figure4, figure4[name]).wcl
            assert result.max_latency(name) <= bound
            twca = analyze_twca(figure4, figure4[name])
            for k in (3, 10, 76, 250):
                assert result.empirical_dmm(name, k) <= twca.dmm(k)
