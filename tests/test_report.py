"""Tests for table and histogram rendering."""


from repro import analyze_latency, analyze_twca
from repro.report import (dmm_table, figure5_panel, format_table,
                          render_histogram, tally, twca_summary, wcl_table)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "bb"), [("xxx", 1), ("y", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("a  ")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_empty_rows(self):
        text = format_table(("col",), [])
        assert "col" in text


class TestWclTable:
    def test_table1_content(self, figure4):
        results = {name: analyze_latency(figure4, figure4[name])
                   for name in ("sigma_c", "sigma_d")}
        text = wcl_table(results, {"sigma_c": 200, "sigma_d": 200})
        assert "331" in text
        assert "175" in text
        assert "NO" in text      # sigma_c misses
        assert "yes" in text     # sigma_d meets

    def test_infinite_deadline_shown_as_dash(self, figure4):
        results = {"sigma_c": analyze_latency(figure4,
                                              figure4["sigma_c"])}
        text = wcl_table(results, {})
        assert "-" in text


class TestDmmTable:
    def test_table2_content(self, figure4_calibrated):
        result = analyze_twca(figure4_calibrated,
                              figure4_calibrated["sigma_c"])
        text = dmm_table(result, [3, 76, 250])
        assert "dmm(3) = 3" in text
        assert "dmm(76) = 4" in text
        assert "dmm(250) = 5" in text


class TestSummary:
    def test_summary_mentions_combinations(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_c"])
        text = twca_summary(result)
        assert "weakly-hard" in text
        assert "3 (1 unschedulable" in text
        assert "N_b = 1" in text

    def test_summary_schedulable_chain(self, figure4):
        result = analyze_twca(figure4, figure4["sigma_d"])
        text = twca_summary(result)
        assert "schedulable" in text


class TestHistogram:
    def test_tally(self):
        assert tally([3, 0, 3, 5]) == {0: 1, 3: 2, 5: 1}

    def test_render_counts(self):
        text = render_histogram({0: 10, 3: 5}, title="demo")
        assert "demo" in text
        assert "10" in text and "5" in text
        lines = text.splitlines()
        bars = [line for line in lines if "#" in line]
        assert len(bars) == 2
        assert len(bars[0]) > len(bars[1])  # proportional bars

    def test_render_empty(self):
        assert "(no data)" in render_histogram({})

    def test_figure5_panel(self):
        text = figure5_panel([0, 0, 0, 3, 3, 10], "sigma_c", k=10)
        assert "dmm_sigma_c(10)" in text
        assert "3 schedulable" in text
