"""Theorem 1 line 4: deferred *asynchronous* interferers.

The earlier busy-window tests cover arbitrary interference and deferred
synchronous chains (the case-study configuration).  This module pins the
remaining component: an asynchronous chain deferred by the target
contributes ``eta_plus(B) * C_header_segment + sum_of_segment_costs``,
including the circular-wrap segment case.
"""

import pytest

from repro import ChainKind, PeriodicModel, SporadicModel, SystemBuilder
from repro.analysis import (busy_time, header_segment, segments,
                            analyze_latency, analyze_twca)
from repro.sim import simulate_worst_case


def _system(async_kind=ChainKind.ASYNCHRONOUS):
    """Target 'b' (priorities 5, 3); interferer 'a' (7, 2, 6) is deferred
    by 'b' (task a2 has priority 2 < 3) and has one *wrapped* segment
    (a3, a1) plus header segment (a1)."""
    return (
        SystemBuilder("async-deferred")
        .chain("b", PeriodicModel(100), deadline=100)
        .task("b1", priority=5, wcet=10)
        .task("b2", priority=3, wcet=15)
        .chain("a", PeriodicModel(60), deadline=300, kind=async_kind)
        .task("a1", priority=7, wcet=6)
        .task("a2", priority=2, wcet=9)
        .task("a3", priority=6, wcet=5)
        .build()
    )


class TestStructure:
    def test_a_is_deferred_with_wrapped_segment(self):
        system = _system()
        segs = segments(system["a"], system["b"])
        assert len(segs) == 1
        assert segs[0].task_names == ("a3", "a1")
        assert segs[0].wraps
        assert segs[0].wcet == 11

    def test_header_segment(self):
        system = _system()
        header = header_segment(system["a"], system["b"])
        assert header.task_names == ("a1",)
        assert header.wcet == 6


class TestTheorem1Line4:
    def test_breakdown_formula(self):
        system = _system()
        result = busy_time(system, system["b"], 1)
        # B = 25 + eta_a(B) * 6 (header) + 11 (segment sum), with the
        # fixed point at B = 42: eta_a(42) = ceil(42/60) = 1.
        assert result.total == 25 + 6 + 11
        assert result.deferred_async["a"] == 17
        assert result.arbitrary == {}
        assert result.deferred_sync == {}

    def test_sync_variant_uses_critical_segment(self):
        system = _system(ChainKind.SYNCHRONOUS)
        result = busy_time(system, system["b"], 1)
        # Synchronous deferred: one critical segment only (11).
        assert result.deferred_sync["a"] == 11
        assert result.total == 25 + 11

    def test_async_interference_grows_with_window(self):
        """Once the busy window exceeds one period of 'a', the header
        segment is charged again (backlogged instances)."""
        system = (
            SystemBuilder("long")
            .chain("b", PeriodicModel(400), deadline=400)
            .task("b1", priority=5, wcet=30)
            .task("b2", priority=3, wcet=45)
            .chain("a", PeriodicModel(60), deadline=600,
                   kind=ChainKind.ASYNCHRONOUS)
            .task("a1", priority=7, wcet=6)
            .task("a2", priority=2, wcet=9)
            .task("a3", priority=6, wcet=5)
            .build()
        )
        result = busy_time(system, system["b"], 1)
        eta = system["a"].activation.eta_plus(result.total)
        assert eta >= 2
        assert result.deferred_async["a"] == eta * 6 + 11


class TestSimulationSoundness:
    @pytest.mark.parametrize("kind", [ChainKind.ASYNCHRONOUS,
                                      ChainKind.SYNCHRONOUS])
    def test_worst_case_simulation_below_bound(self, kind):
        system = _system(kind)
        analysis = analyze_latency(system, system["b"])
        sim = simulate_worst_case(system, 6000)
        assert sim.max_latency("b") <= analysis.wcl + 1e-9

    def test_async_interferer_bound_for_both_chains(self):
        system = _system()
        sim = simulate_worst_case(system, 6000)
        for name in ("a", "b"):
            bound = analyze_latency(system, system[name]).wcl
            assert sim.max_latency(name) <= bound + 1e-9


class TestTwcaWithAsyncDeferredOverload:
    def test_overload_async_deferred_chain(self):
        """An overload chain that is deferred by the target: its active
        segments (not the whole chain) form the combinations."""
        system = (
            SystemBuilder("ov")
            .chain("b", PeriodicModel(100), deadline=50)
            .task("b1", priority=5, wcet=10)
            .task("b2", priority=3, wcet=15)
            .chain("a", SporadicModel(500), overload=True)
            .task("a1", priority=7, wcet=20)
            .task("a2", priority=2, wcet=9)
            .task("a3", priority=6, wcet=15)
            .build()
        )
        result = analyze_twca(system, system["b"])
        # Segment (a3, a1) splits into active segments at the tail
        # priority 3: a3 (6 > 3) extends... a1 (7 > 3) extends: one
        # active segment (a3, a1).
        assert [s.task_names for s in result.active_segments["a"]] == [
            ("a3", "a1")]
        assert result.dmm(10) <= 10
