"""Unit tests for curve combinators and checks."""


import pytest

from repro.arrivals import PeriodicModel, SporadicModel
from repro.arrivals.algebra import (check_duality, scaled,
                                    superadditive_closure_defect, tightest)


class TestScaled:
    def test_stretches_distances(self):
        model = scaled(SporadicModel(100), 3)
        assert model.delta_minus(2) == 300
        assert model.delta_minus(4) == 900

    def test_compresses_with_factor_below_one(self):
        model = scaled(PeriodicModel(100), 0.5)
        assert model.delta_minus(3) == 100

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            scaled(SporadicModel(100), 0)

    def test_eta_follows(self):
        model = scaled(SporadicModel(100), 2)
        assert model.eta_plus(200) == 1
        assert model.eta_plus(201) == 2

    def test_scaled_duality(self):
        check_duality(scaled(PeriodicModel(50, jitter=20), 1.5))


class TestTightest:
    def test_takes_max_of_delta_minus(self):
        combined = tightest(SporadicModel(100), SporadicModel(250))
        assert combined.delta_minus(2) == 250

    def test_takes_min_of_delta_plus(self):
        combined = tightest(PeriodicModel(100), SporadicModel(50))
        assert combined.delta_plus(2) == 100  # sporadic would be inf

    def test_tightest_with_self_is_identity(self):
        model = PeriodicModel(100, jitter=10)
        combined = tightest(model, model)
        for k in range(6):
            assert combined.delta_minus(k) == model.delta_minus(k)
            assert combined.delta_plus(k) == model.delta_plus(k)


class TestSuperadditivity:
    def test_periodic_is_superadditive(self):
        assert superadditive_closure_defect(PeriodicModel(100)) == 0.0

    def test_sporadic_is_superadditive(self):
        assert superadditive_closure_defect(SporadicModel(70)) == 0.0

    def test_jittery_model_has_defect(self):
        # delta(2) = 10, delta(3) = 110: gluing two 2-windows promises
        # 2 * 10 = 20 > delta(3)?  No — 110 > 20, no defect.  A defect
        # needs delta to *flatten*: craft one with ArrivalCurve.
        from repro.arrivals import ArrivalCurve
        flat = ArrivalCurve([0, 0, 100, 101], tail_distance=1)
        # delta(3)=101 < delta(2)+delta(2)=200 -> defect 99.
        assert superadditive_closure_defect(flat) == pytest.approx(99)


class TestCheckDuality:
    def test_accepts_well_formed(self):
        check_duality(PeriodicModel(100))
        check_duality(SporadicModel(60))

    def test_rejects_broken_eta(self):
        class Broken(PeriodicModel):
            def eta_plus(self, dt):
                return super().eta_plus(dt) + 2  # over-counts

        with pytest.raises(AssertionError):
            check_duality(Broken(100))
