"""Legality tests for the activation-stream generators: every generated
stream must satisfy the generating model's delta_minus curve."""

import random

import pytest

from repro.arrivals import (ArrivalCurve, PeriodicModel, SporadicBurstModel,
                            SporadicModel)
from repro.sim import (periodic_stream, random_stream, single_burst,
                       worst_case_stream)


def assert_legal(times, model, depth=8):
    """Every window of k consecutive events spans >= delta_minus(k)."""
    for k in range(2, depth + 1):
        required = model.delta_minus(k)
        for i in range(len(times) - k + 1):
            span = times[i + k - 1] - times[i]
            assert span >= required - 1e-9, (
                f"window of {k} events spans {span} < {required}")


class TestWorstCase:
    def test_periodic_is_back_to_back(self):
        times = worst_case_stream(PeriodicModel(100), 500)
        assert times == [0, 100, 200, 300, 400, 500]

    def test_jitter_bunches_first_events(self):
        times = worst_case_stream(PeriodicModel(100, jitter=30), 300)
        assert times[0] == 0
        assert times[1] == 70

    def test_legality(self):
        for model in (PeriodicModel(100), PeriodicModel(100, jitter=40),
                      SporadicModel(60), SporadicBurstModel(10, 3, 100)):
            assert_legal(worst_case_stream(model, 2000), model)

    def test_offset(self):
        times = worst_case_stream(PeriodicModel(100), 300, offset=50)
        assert times[0] == 50

    def test_empty_when_offset_past_horizon(self):
        assert worst_case_stream(PeriodicModel(100), 10, offset=20) == []


class TestPeriodicStream:
    def test_periodic_matches_worst_case_without_jitter(self):
        model = PeriodicModel(100)
        assert periodic_stream(model, 500) == worst_case_stream(model, 500)

    def test_sporadic_uses_min_distance(self):
        times = periodic_stream(SporadicModel(100), 300)
        assert times == [0, 100, 200, 300]


class TestSingleBurst:
    def test_count_and_spacing(self):
        times = single_burst(SporadicModel(600), 3, offset=10)
        assert times == [10, 610, 1210]

    def test_burst_model_inner_spacing(self):
        times = single_burst(SporadicBurstModel(10, 3, 100), 4)
        assert times == [0, 10, 20, 100]


class TestRandomStream:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_legality_across_models(self, seed):
        rng = random.Random(seed)
        for model in (PeriodicModel(50), SporadicModel(30),
                      SporadicBurstModel(5, 3, 50),
                      ArrivalCurve([0, 0, 10, 200], tail_distance=100)):
            times = random_stream(model, 3000, rng)
            assert_legal(times, model)

    def test_sorted(self):
        rng = random.Random(7)
        times = random_stream(SporadicModel(20), 2000, rng)
        assert times == sorted(times)

    def test_zero_slack_is_dense(self):
        rng = random.Random(7)
        times = random_stream(SporadicModel(100), 1000, rng,
                              slack_scale=0.0)
        # Gaps are exactly the minimum distance after the random start.
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(100) for g in gaps)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            random_stream(SporadicModel(10), 100, random.Random(0),
                          slack_scale=-1)
