"""Tests of the Theorem 1 busy-time fixed point, pinned against the
hand-computed case-study values (see DESIGN.md §3)."""


import pytest

from repro import BusyWindowDivergence, PeriodicModel, SystemBuilder
from repro.analysis import busy_time, criterion_load, typical_busy_time
from repro.model import ChainKind


class TestCaseStudyFixedPoints:
    """B values verified by hand from Eq. (1)."""

    def test_b_c_1_is_331(self, figure4):
        result = busy_time(figure4, figure4["sigma_c"], 1)
        assert result.total == 331

    def test_b_c_1_breakdown(self, figure4):
        result = busy_time(figure4, figure4["sigma_c"], 1)
        assert result.base == 51
        assert result.self_interference == 0  # synchronous chain
        # sigma_d interferes twice within 331 (ceil(331/200) = 2).
        assert result.arbitrary["sigma_d"] == 2 * 115
        assert result.arbitrary["sigma_a"] == 20
        assert result.arbitrary["sigma_b"] == 30
        assert result.deferred_async == {}
        assert result.deferred_sync == {}

    def test_b_c_2_is_382(self, figure4):
        assert busy_time(figure4, figure4["sigma_c"], 2).total == 382

    def test_b_d_1_is_175(self, figure4):
        result = busy_time(figure4, figure4["sigma_d"], 1)
        assert result.total == 175
        # sigma_c is deferred by sigma_d: its critical segment
        # (tau_c^1, tau_c^2) contributes 10 once.
        assert result.deferred_sync["sigma_c"] == 10
        assert result.arbitrary["sigma_a"] == 20
        assert result.arbitrary["sigma_b"] == 30

    def test_busy_time_monotone_in_q(self, figure4):
        chain = figure4["sigma_c"]
        values = [busy_time(figure4, chain, q).total for q in range(1, 6)]
        assert values == sorted(values)
        # And strictly grows by at least the chain WCET.
        for prev, cur in zip(values, values[1:]):
            assert cur - prev >= chain.total_wcet

    def test_rejects_q_zero(self, figure4):
        with pytest.raises(ValueError):
            busy_time(figure4, figure4["sigma_c"], 0)

    def test_rejects_foreign_chain(self, figure4, figure1):
        with pytest.raises(ValueError):
            busy_time(figure4, figure1["sigma_a"], 1)


class TestTypicalBusyTime:
    def test_excludes_overload(self, figure4):
        result = typical_busy_time(figure4, figure4["sigma_c"], 1)
        assert "sigma_a" not in result.arbitrary
        assert "sigma_b" not in result.arbitrary
        # 51 + eta_d * 115 with the smaller fixed point 166 -> eta_d = 1.
        assert result.total == 51 + 115

    def test_combination_cost_added(self, figure4):
        base = typical_busy_time(figure4, figure4["sigma_c"], 1).total
        loaded = typical_busy_time(figure4, figure4["sigma_c"], 1,
                                   combination_cost=50)
        assert loaded.combination == 50
        # Adding 50 pushes the window past 200, pulling in one more
        # sigma_d activation: 51 + 2*115 + 50 = 331.
        assert loaded.total == 331
        assert loaded.total >= base + 50


class TestCriterionLoad:
    """L_b(q) of Eq. (4), the values behind Experiment 1."""

    def test_l_c_1_is_166(self, figure4):
        assert criterion_load(figure4, figure4["sigma_c"], 1) == 166

    def test_l_c_2_is_332(self, figure4):
        assert criterion_load(figure4, figure4["sigma_c"], 2) == 332

    def test_needs_finite_deadline(self, figure4):
        with pytest.raises(ValueError):
            criterion_load(figure4, figure4["sigma_a"], 1)


class TestAsynchronousSelfInterference:
    def test_async_chain_pays_header_backlog(self, async_system):
        # flow: period 50, tasks head(10) mid(10) tail(5); header prefix
        # is just (head,) because mid has the lowest priority.
        result = busy_time(async_system, async_system["flow"], 1)
        assert result.self_interference > 0

    def test_sync_variant_is_cheaper(self, async_system):
        from repro.model import System, TaskChain
        flow = async_system["flow"]
        sync_flow = TaskChain(flow.name, flow.tasks, flow.activation,
                              flow.deadline, ChainKind.SYNCHRONOUS,
                              flow.overload)
        sync_system = System(
            [sync_flow if c.name == "flow" else c
             for c in async_system.chains], name="sync-variant")
        async_total = busy_time(async_system, flow, 1).total
        sync_total = busy_time(sync_system, sync_system["flow"], 1).total
        assert sync_total <= async_total


class TestDivergence:
    def test_overloaded_system_raises(self):
        system = (
            SystemBuilder("hot")
            .chain("low", PeriodicModel(100), deadline=100)
            .task("low.t", priority=1, wcet=10)
            .chain("high", PeriodicModel(10))
            .task("high.t", priority=2, wcet=11)
            .build()
        )
        with pytest.raises(BusyWindowDivergence):
            busy_time(system, system["low"], 1)

    def test_divergence_reports_chain_and_q(self):
        system = (
            SystemBuilder("hot")
            .chain("low", PeriodicModel(100), deadline=100)
            .task("low.t", priority=1, wcet=10)
            .chain("high", PeriodicModel(10))
            .task("high.t", priority=2, wcet=11)
            .build()
        )
        with pytest.raises(BusyWindowDivergence) as info:
            busy_time(system, system["low"], 1)
        assert info.value.chain_name == "low"
        assert info.value.q == 1


class TestWindowOverride:
    def test_fixed_window_evaluation(self, figure4):
        # At a fixed window of 200, sigma_d contributes exactly once.
        result = busy_time(figure4, figure4["sigma_c"], 1, window=200)
        assert result.arbitrary["sigma_d"] == 115
        assert result.total == 51 + 115 + 20 + 30

    def test_window_zero_means_no_interference(self, figure4):
        result = busy_time(figure4, figure4["sigma_c"], 1, window=0)
        assert result.total == 51


class TestCriterionLoadAsync:
    def test_async_target_pays_header_in_l(self, async_system):
        """Eq. (4) keeps the asynchronous self-interference term."""
        from repro.analysis import criterion_load
        flow = async_system["flow"]
        value = criterion_load(async_system, flow, 1)
        # Window = delta(1) + D = 120; eta_flow(120) = 3 activations,
        # backlog of 2 beyond q=1, header prefix costs 10 each.
        # Typical load: 25 (own) + 2 * 10 (backlog) = 45 (overload
        # chain excluded from Eq. 4).
        assert value == 25 + 2 * 10
