"""Differential suite for the stateful incremental packing engine.

The engine contract: ``PackingEngine.resolve(rhs)`` answers exactly what
a cold ``solve(instance.program(rhs), backend)`` would, for every
registered backend, under any capacity schedule — monotone (the DMM
curve shape), shrinking, or shuffled.  Warm state (incumbent seeds,
persistent simplex tableaus, DP usage tables, per-rhs memo) only changes
the work counters.  The analysis-level face of the same guarantee:
``ChainTwcaResult.dmm_curve`` equals the historic per-k cold path
(``dmm_reference``) on randomized systems — serially, through the batch
runner, and under a persistent cache.
"""

import random

import pytest

from repro.ilp import (
    BACKENDS,
    INCREMENTAL_BACKENDS,
    IncrementalLp,
    PackingEngine,
    PackingInstance,
    scipy_available,
    solve,
    solve_lp,
    solve_scipy,
)
from repro.ilp.branch_bound import solve_branch_bound
from repro.runner import BatchRunner
from repro.synth import figure4_system, random_systems
from repro.analysis import analyze_twca

KS = (1, 2, 3, 5, 10, 17, 50, 100, 250)


def random_instance(rng, max_vars=7, max_rows=5):
    """A Theorem 3-shaped instance: 0/1 matrix, every column covered."""
    num_vars = rng.randint(1, max_vars)
    num_rows = rng.randint(1, max_rows)
    objective = [float(rng.randint(1, 4)) for _ in range(num_vars)]
    rows = [
        [float(rng.randint(0, 1)) for _ in range(num_vars)] for _ in range(num_rows)
    ]
    for j in range(num_vars):
        if not any(row[j] for row in rows):
            extra = [0.0] * num_vars
            extra[j] = 1.0
            rows.append(extra)
    return PackingInstance(objective, rows)


def capacity_schedule(rng, num_rows, steps=6, state_limit=None):
    """A mostly-monotone schedule with a shrink and a repeat thrown in.

    ``state_limit`` keeps the per-point DP state space (the product of
    capacities + 1) below a budget so the dp differential stays fast."""
    caps = [float(rng.randint(0, 3)) for _ in range(num_rows)]
    schedule = []
    for _ in range(steps + 1):
        if state_limit is not None:
            while True:
                product = 1
                for c in caps:
                    product *= int(c) + 1
                if product <= state_limit:
                    break
                caps[caps.index(max(caps))] -= 1
        schedule.append(tuple(caps))
        caps = [c + rng.randint(0, 2) for c in caps]
    schedule.append(schedule[0])  # shrink back
    schedule.append(schedule[-2])  # repeat (memo hit)
    return schedule


class TestEngineMatchesColdSolves:
    @pytest.mark.parametrize(
        "backend,trials",
        [("branch_bound", 40), ("dp", 10), ("greedy", 40), ("scipy", 8)],
    )
    def test_randomized_schedules(self, backend, trials):
        if backend == "scipy" and not scipy_available():
            pytest.skip("scipy not installed")
        rng = random.Random(sum(map(ord, backend)))
        # The dp table walks the full capacity product; keep it small so
        # the differential sweep stays fast.
        state_limit = 4_000 if backend == "dp" else None
        for _ in range(trials):
            instance = random_instance(rng)
            engine = instance.engine(backend)
            schedule = capacity_schedule(
                rng, instance.num_rows, state_limit=state_limit
            )
            for rhs in schedule:
                warm = engine.resolve(rhs)
                cold = solve(instance.program(rhs), backend=backend)
                assert warm.status == cold.status
                if warm.status == "optimal":
                    assert warm.objective == pytest.approx(cold.objective)

    def test_dp_engine_refuses_what_solve_dp_refuses(self):
        """An oversized state space is a ValueError on both paths — and
        the engine's headroom never turns an acceptable request into a
        refusal (it falls back to exactly the requested capacities)."""
        instance = PackingInstance(
            [1.0] * 3,
            [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        )
        engine = instance.engine("dp")
        with pytest.raises(ValueError):
            engine.resolve((500.0, 500.0, 500.0))
        with pytest.raises(ValueError):
            solve(instance.program((500.0, 500.0, 500.0)), backend="dp")
        # Within the budget both succeed, shrinking the table again.
        assert engine.resolve((20.0, 20.0, 20.0)).objective == 60.0

    @pytest.mark.parametrize("backend", ("branch_bound", "dp"))
    def test_engine_matches_scipy(self, backend):
        if not scipy_available():
            pytest.skip("scipy not installed")
        rng = random.Random(99)
        for _ in range(6):
            instance = random_instance(rng, max_vars=5, max_rows=3)
            engine = instance.engine(backend)
            for rhs in capacity_schedule(rng, instance.num_rows, steps=4):
                warm = engine.resolve(rhs)
                reference = solve_scipy(instance.program(rhs))
                assert warm.status == reference.status == "optimal"
                assert warm.objective == pytest.approx(reference.objective)

    def test_engine_cross_check_mode(self):
        rng = random.Random(3)
        instance = random_instance(rng)
        engine = instance.engine("branch_bound", cross_check=scipy_available())
        for rhs in capacity_schedule(rng, instance.num_rows):
            assert engine.resolve(rhs).is_optimal

    def test_branch_bound_incremental_matches_legacy_relaxation(self):
        """The persistent-tableau node relaxations answer exactly what
        the historic cold two-phase path does."""
        rng = random.Random(11)
        for _ in range(30):
            instance = random_instance(rng)
            for rhs in capacity_schedule(rng, instance.num_rows, steps=3):
                fast = solve_branch_bound(instance.program(rhs))
                legacy = solve_branch_bound(
                    instance.program(rhs), incremental=False
                )
                assert fast.status == legacy.status
                if fast.status == "optimal":
                    assert fast.objective == pytest.approx(legacy.objective)


class TestEngineState:
    def test_memo_and_warm_counters(self):
        instance = PackingInstance(
            [1.0] * 3, [[1, 1, 0], [0, 1, 1], [1, 0, 1]]
        )
        engine = instance.engine()
        engine.resolve((1, 1, 1))
        engine.resolve((1, 1, 1))  # memo hit
        engine.resolve((3, 3, 3))  # warm (previous packing feasible)
        stats = engine.stats.as_dict()
        assert stats["resolves"] == 3
        assert stats["memo_hits"] == 1
        assert stats["warm_starts"] == 1
        assert stats["cold_solves"] == 1

    def test_lower_bound_is_sound_and_monotone(self):
        rng = random.Random(17)
        instance = random_instance(rng)
        engine = instance.engine()
        previous = None
        for rhs in capacity_schedule(rng, instance.num_rows, steps=5)[:-2]:
            bound = engine.lower_bound(rhs)
            value = engine.resolve(rhs).objective
            if bound is not None:
                assert bound <= value + 1e-9
            if previous is not None and all(
                a >= b for a, b in zip(rhs, previous[0])
            ):
                assert value >= previous[1] - 1e-9
            previous = (rhs, value)

    def test_lower_bound_none_for_heuristic_backend(self):
        instance = PackingInstance([1.0], [[1.0]])
        engine = instance.engine("greedy")
        engine.resolve((4,))
        assert engine.lower_bound((9,)) is None

    def test_unknown_backend_rejected(self):
        instance = PackingInstance([1.0], [[1.0]])
        with pytest.raises(ValueError):
            PackingEngine(instance, backend="martian")

    def test_registries_stay_aligned(self):
        assert set(INCREMENTAL_BACKENDS) == set(BACKENDS)

    def test_rhs_length_mismatch_rejected(self):
        instance = PackingInstance([1.0], [[1.0]])
        with pytest.raises(ValueError):
            instance.engine().resolve((1.0, 2.0))


class TestIncrementalLp:
    def test_rhs_only_resolves_match_cold(self):
        rng = random.Random(5)
        for _ in range(40):
            num_vars = rng.randint(1, 6)
            num_rows = rng.randint(1, 5)
            objective = [float(rng.randint(0, 5)) for _ in range(num_vars)]
            rows = [
                [float(rng.randint(0, 3)) for _ in range(num_vars)]
                for _ in range(num_rows)
            ]
            lp = IncrementalLp(objective, rows)
            for _ in range(6):
                rhs = [float(rng.randint(0, 9)) for _ in range(num_rows)]
                warm = lp.solve(rhs)
                cold = solve_lp(objective, rows, rhs)
                assert warm.status == cold.status
                if warm.status == "optimal":
                    assert warm.objective == pytest.approx(cold.objective)

    def test_infeasible_rhs_detected(self):
        # x <= b1 and -x <= b2 with b1 + b2 < 0 is contradictory.
        lp = IncrementalLp([1.0], [[1.0], [-1.0]])
        assert lp.solve([4.0, -2.0]).status == "optimal"
        assert lp.solve([2.0, -5.0]).status == "infeasible"
        assert lp.solve([5.0, -2.0]).status == "optimal"

    def test_warm_solves_counted(self):
        lp = IncrementalLp([2.0, 1.0], [[1.0, 1.0], [1.0, 0.0]])
        lp.solve([4.0, 2.0])
        lp.solve([6.0, 3.0])
        lp.solve([2.0, 1.0])
        assert lp.cold_solves >= 1
        assert lp.warm_solves >= 1


def weakly_hard_results(count, seed, **kwargs):
    rng = random.Random(seed)
    base = figure4_system()
    results = []
    for system in random_systems(base, count, rng):
        for name in ("sigma_c", "sigma_d"):
            result = analyze_twca(system, system[name], **kwargs)
            results.append(result)
    return results


class TestDmmCurveDifferential:
    def test_engine_curves_equal_cold_reference(self):
        for result in weakly_hard_results(12, seed=2024):
            assert result.dmm_curve(KS) == {k: result.dmm_reference(k) for k in KS}

    @pytest.mark.parametrize("backend", ("greedy", "scipy"))
    def test_alternate_backends_consistent(self, backend):
        if backend == "scipy" and not scipy_available():
            pytest.skip("scipy not installed")
        for result in weakly_hard_results(4, seed=7, backend=backend):
            assert result.dmm_curve(KS) == {k: result.dmm_reference(k) for k in KS}

    def test_unsorted_and_duplicate_ks_preserve_order(self):
        for result in weakly_hard_results(3, seed=13):
            ks = (100, 1, 50, 1, 10)
            curve = result.dmm_curve(ks)
            assert list(curve) == [100, 1, 50, 10]
            assert curve == {k: result.dmm_reference(k) for k in set(ks)}

    def test_pickled_result_rebuilds_engine(self):
        import pickle

        for result in weakly_hard_results(3, seed=31):
            curve = result.dmm_curve(KS)
            clone = pickle.loads(pickle.dumps(result))
            assert clone.dmm_curve(KS) == curve

    def test_saturated_points_still_exact(self):
        """The saturation shortcut (a previously packed witness already
        proving dmm = k) must agree with the cold path on every k,
        including dense low-k sweeps where it fires most."""
        for result in weakly_hard_results(6, seed=77):
            ks = tuple(range(1, 40))
            assert result.dmm_curve(ks) == {k: result.dmm_reference(k) for k in ks}


class TestRunnerDifferential:
    def test_exports_identical_serial_parallel_cached(self, tmp_path):
        base = figure4_system()
        rng = random.Random(41)
        systems = list(random_systems(base, 8, rng))
        labels = [f"sys-{i:02d}" for i in range(len(systems))]
        reference = (
            BatchRunner(workers=1, use_cache=False, ks=KS)
            .run_systems(systems, labels=labels)
            .to_json()
        )
        parallel = (
            BatchRunner(workers=2, ks=KS)
            .run_systems(systems, labels=labels)
            .to_json()
        )
        assert parallel == reference
        cache_dir = str(tmp_path / "cache")
        cold = (
            BatchRunner(workers=1, ks=KS, cache_dir=cache_dir)
            .run_systems(systems, labels=labels)
            .to_json()
        )
        warm = (
            BatchRunner(workers=1, ks=KS, cache_dir=cache_dir)
            .run_systems(systems, labels=labels)
            .to_json()
        )
        assert cold == reference
        assert warm == reference

    def test_packing_category_populated_and_served(self, tmp_path):
        base = figure4_system()
        rng = random.Random(43)
        systems = list(random_systems(base, 4, rng))
        cache_dir = str(tmp_path / "cache")
        runner = BatchRunner(workers=1, ks=KS, cache_dir=cache_dir)
        batch = runner.run_systems(systems)
        stats = batch.cache_stats
        assert stats.get("packing", {}).get("misses", 0) > 0
        # A fresh runner over the same systems is served from disk.
        warm_runner = BatchRunner(workers=1, ks=KS, cache_dir=cache_dir)
        warm = warm_runner.run_systems(systems)
        assert warm.to_json() == batch.to_json()

    def test_job_results_carry_packing_stats(self):
        base = figure4_system()
        batch = BatchRunner(workers=1, use_cache=False, ks=KS).run_systems([base])
        by_chain = {job.chain_name: job for job in batch.jobs}
        assert by_chain["sigma_c"].packing.get("resolves", 0) > 0
        exported = by_chain["sigma_c"].to_dict(deterministic=False)
        assert "packing" in exported
        assert "packing" not in by_chain["sigma_c"].to_dict()
