"""Tests for the analysis service: the typed request/response API, the
in-process facade's warm state, the HTTP daemon, request coalescing and
CLI-vs-server export equality."""

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.kernel import kernel_name
from repro.model.serialization import system_to_json
from repro.runner import BatchRunner
from repro.service import (
    AnalysisOptions,
    AnalysisRequest,
    AnalysisService,
    RequestError,
    ServiceClient,
    ServiceError,
    UnknownSystemError,
    start_server,
)
from repro.synth import figure4_system


@pytest.fixture()
def system():
    return figure4_system()


@pytest.fixture()
def service():
    return AnalysisService()


@pytest.fixture()
def server(service):
    server = start_server(service)
    yield server
    server.shutdown()
    server.server_close()


def _post_raw(url, path, body, content_type="application/json"):
    """Raw POST returning (status, headers, text) — for wire-level
    assertions the high-level client hides."""
    request = urllib.request.Request(
        url + path,
        data=body if isinstance(body, bytes) else json.dumps(body).encode(),
        headers={"Content-Type": content_type},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode()


class TestRequestValidation:
    def test_round_trip_preserves_digest(self, system):
        request = AnalysisRequest.from_system(
            system, chain="sigma_c", ks=(3, 76), label="case"
        )
        clone = AnalysisRequest.from_dict(request.to_dict())
        assert clone == request
        assert clone.digest == request.digest

    def test_inline_and_by_digest_share_identity(self, system):
        inline = AnalysisRequest.from_system(system, chain="sigma_c")
        by_ref = AnalysisRequest(
            system_digest=system.content_digest(), chain="sigma_c"
        )
        assert inline.system_identity == by_ref.system_identity
        assert inline.digest == by_ref.digest

    def test_compat_key_ignores_ks_only(self, system):
        a = AnalysisRequest.from_system(system, chain="sigma_c", ks=(3,))
        b = AnalysisRequest.from_system(system, chain="sigma_c", ks=(76, 250))
        c = AnalysisRequest.from_system(system, chain="sigma_d", ks=(3,))
        assert a.digest != b.digest
        assert a.compat_key == b.compat_key
        assert a.compat_key != c.compat_key

    @pytest.mark.parametrize(
        "data, message",
        [
            ({}, "exactly one of"),
            ({"system": 5}, "'system' must be"),
            ({"system": "{broken", "chain": "c"}, "not valid JSON"),
            ({"system": {"nope": 1}}, "invalid system"),
            ({"system_digest": "d", "ks": []}, "at least one"),
            ({"system_digest": "d", "ks": [0]}, ">= 1"),
            ({"system_digest": "d", "ks": 3}, "'ks' must be a list"),
            ({"system_digest": "d", "backend": "gurobi"}, "unknown backend"),
            ({"system_digest": "d", "enumeration": "eager"}, "unknown enumeration"),
            ({"system_digest": "d", "kernel": "fortran"}, "unknown kernel"),
            ({"system_digest": "d", "chain": ""}, "'chain' must be"),
            ({"system_digest": "d", "use_cache": "yes"}, "'use_cache'"),
            ({"system_digest": "d", "surprise": 1}, "unknown request fields"),
        ],
    )
    def test_malformed_requests_rejected(self, data, message):
        with pytest.raises(RequestError, match=message):
            AnalysisRequest.from_dict(data)

    def test_both_system_forms_rejected(self, system):
        with pytest.raises(RequestError, match="exactly one"):
            AnalysisRequest(
                system_json=system_to_json(system), system_digest="abc"
            )


class TestAnalysisService:
    def test_matches_batch_runner_export(self, service, system):
        response = service.analyze(
            AnalysisRequest.from_system(system, chain="sigma_c", ks=(3, 76, 250))
        )
        runner = BatchRunner(ks=(3, 76, 250))
        batch = runner.run_systems([system], ["sigma_c"])
        assert [job.to_dict() for job in response.jobs] == [
            job.to_dict() for job in batch.jobs
        ]

    def test_chain_none_selects_default_chains(self, service, system):
        response = service.analyze(AnalysisRequest.from_system(system))
        assert [job.chain_name for job in response.jobs] == ["sigma_d", "sigma_c"]

    def test_second_identical_request_recomputes_nothing(self, service, system):
        request = AnalysisRequest.from_system(system, chain="sigma_c", ks=(3,))
        cold = service.analyze(request)
        stats = service.cache_stats()["cache"]
        warm = service.analyze(request)
        after = service.cache_stats()["cache"]
        # Byte-identical response, served whole from the jobs cache:
        # zero fixed points (busy_time misses) recomputed.
        assert warm.to_json() == cold.to_json()
        assert after["jobs"]["hits"] == stats["jobs"]["hits"] + 1
        for category in ("busy_time", "omega", "packing", "combo_exact"):
            assert after[category]["misses"] == stats[category]["misses"]

    def test_cache_stats_report_the_kernel(self, service):
        # Deployments read this to confirm the daemon runs vectorized;
        # the CI service smoke asserts it is "numpy" there.
        assert service.cache_stats()["service"]["kernel"] == kernel_name()

    def test_unknown_system_digest(self, service):
        with pytest.raises(UnknownSystemError, match="unknown system_digest"):
            service.analyze(AnalysisRequest(system_digest="0" * 64))

    def test_register_system_enables_by_digest_requests(self, service, system):
        digest = service.register_system(system)
        response = service.analyze(
            AnalysisRequest(system_digest=digest, chain="sigma_c", ks=(3,))
        )
        assert response.jobs[0].dmm == {3: 3}
        assert response.system_digest == digest

    def test_unknown_chain_is_a_request_error(self, service, system):
        with pytest.raises(RequestError, match="no chain named"):
            service.analyze(AnalysisRequest.from_system(system, chain="sigma_z"))

    def test_no_cache_request_bypasses_memoization(self, system):
        service = AnalysisService()
        request = AnalysisRequest.from_system(
            system, chain="sigma_c", ks=(3,), use_cache=False
        )
        cached = service.analyze(
            AnalysisRequest.from_system(system, chain="sigma_c", ks=(3,))
        )
        uncached = service.analyze(request)
        again = service.analyze(request)
        jobs = [j.to_dict() for j in cached.jobs]
        assert [j.to_dict() for j in uncached.jobs] == jobs
        assert [j.to_dict() for j in again.jobs] == jobs

    def test_batch_merges_compatible_requests(self, service, system):
        requests = [
            AnalysisRequest.from_system(system, chain="sigma_c", ks=(3,)),
            AnalysisRequest.from_system(system, chain="sigma_c", ks=(76, 250)),
            AnalysisRequest.from_system(system, chain="sigma_d", ks=(10,)),
        ]
        batch = service.batch(requests)
        # Two compatible sigma_c requests fold into one multi-q
        # analysis; sigma_d computes separately.
        assert service.counters["merged"] == 1
        assert service.counters["computes"] == 2
        assert [job.chain_name for job in batch.jobs] == [
            "sigma_c",
            "sigma_c",
            "sigma_d",
        ]
        assert batch.jobs[0].dmm == {3: 3}
        assert batch.jobs[1].dmm == {76: 23, 250: 73}
        # The merged results are byte-identical to direct computes.
        direct = AnalysisService()
        for request, job in zip(requests, batch.jobs):
            expected = direct.analyze(request).jobs[0]
            assert job.to_dict() == expected.to_dict()

    def test_batch_empty_rejected(self, service):
        with pytest.raises(RequestError, match="at least one"):
            service.batch([])

    def test_exhaustive_option_is_byte_identical(self, system):
        pruned = AnalysisService(AnalysisOptions())
        exhaustive = AnalysisService(AnalysisOptions(exhaustive=True))
        request = {"chain": "sigma_c", "ks": (3, 76)}
        a = pruned.analyze(
            AnalysisRequest.from_system(system, enumeration="pruned", **request)
        )
        b = exhaustive.analyze(
            AnalysisRequest.from_system(system, enumeration="exhaustive", **request)
        )
        assert [j.to_dict() for j in a.jobs] == [j.to_dict() for j in b.jobs]


class TestHttpServer:
    def test_healthz(self, server):
        health = ServiceClient(server.url).health()
        assert health["status"] == "ok"
        assert health["kernel"] in ("numpy", "python")

    def test_analyze_round_trip_matches_in_process(self, server, service, system):
        request = AnalysisRequest.from_system(system, chain="sigma_c", ks=(3,))
        payload = ServiceClient(server.url).analyze(request)
        expected = AnalysisService().analyze(request)
        assert payload == expected.to_dict()

    def test_warm_and_cold_responses_byte_identical(self, server, service, system):
        client = ServiceClient(server.url)
        request = AnalysisRequest.from_system(system, chain="sigma_c", ks=(3, 76))
        status, _, cold = _post_raw(server.url, "/analyze", request.to_dict())
        assert status == 200
        stats = client.cache_stats()["cache"]
        status, _, warm = _post_raw(server.url, "/analyze", request.to_dict())
        assert status == 200
        after = client.cache_stats()["cache"]
        assert warm == cold
        assert after["jobs"]["hits"] == stats["jobs"]["hits"] + 1
        assert after["busy_time"]["misses"] == stats["busy_time"]["misses"]
        assert after["packing"]["misses"] == stats["packing"]["misses"]

    def test_batch_endpoint_matches_runner_export(self, server, system):
        text = ServiceClient(server.url).batch_text(
            [AnalysisRequest.from_system(system, ks=(1, 10, 100))]
        )
        runner = BatchRunner(ks=(1, 10, 100))
        assert text == runner.run_systems([system]).to_json(deterministic=True)

    def test_malformed_json_is_a_structured_400(self, server):
        status, _, text = _post_raw(server.url, "/analyze", b"{not json")
        assert status == 400
        assert "invalid JSON body" in json.loads(text)["error"]

    def test_bad_request_field_is_a_structured_400(self, server, system):
        request = AnalysisRequest.from_system(system).to_dict()
        request["backend"] = "gurobi"
        status, _, text = _post_raw(server.url, "/analyze", request)
        assert status == 400
        assert "unknown backend" in json.loads(text)["error"]

    def test_unknown_system_digest_is_a_400(self, server):
        status, _, text = _post_raw(
            server.url, "/analyze", {"system_digest": "f" * 64}
        )
        assert status == 400
        assert "unknown system_digest" in json.loads(text)["error"]

    def test_unknown_paths_are_404(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError, match="unknown path"):
            client._request("GET", "/nope")
        status, _, _ = _post_raw(server.url, "/nope", {})
        assert status == 404

    def test_batch_body_shape_enforced(self, server):
        status, _, text = _post_raw(server.url, "/batch", {"requests": []})
        assert status == 400
        assert "at least one request" in json.loads(text)["error"]

    @staticmethod
    def _raw_http(server, head, body=b"", *, cut_body=False):
        """Speak raw HTTP over a socket — for the framing errors
        well-behaved clients cannot produce.  ``cut_body`` half-closes
        the write side after ``body``, simulating a client that died
        mid-upload."""
        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(head + b"\r\n" + body)
            if cut_body:
                sock.shutdown(socket.SHUT_WR)
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
            header, _, rest = response.partition(b"\r\n\r\n")
            length = 0
            for line in header.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            while len(rest) < length:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                rest += chunk
            status = int(header.split(b" ", 2)[1])
            return status, rest.decode()

    def test_negative_content_length_is_a_400(self, server):
        status, text = self._raw_http(
            server,
            b"POST /analyze HTTP/1.1\r\n"
            b"Host: test\r\nContent-Type: application/json\r\n"
            b"Content-Length: -5\r\nConnection: close\r\n",
        )
        assert status == 400
        assert "bad Content-Length" in json.loads(text)["error"]
        assert "negative" in json.loads(text)["error"]

    def test_missing_content_length_is_a_400(self, server):
        status, text = self._raw_http(
            server,
            b"POST /analyze HTTP/1.1\r\n"
            b"Host: test\r\nContent-Type: application/json\r\n"
            b"Connection: close\r\n",
        )
        assert status == 400
        assert "missing Content-Length" in json.loads(text)["error"]

    def test_short_body_is_a_400_not_a_json_error(self, server):
        """Content-Length declares more bytes than arrive: the server
        must answer a structured 400 naming the short read, not hang
        on the socket or mis-parse truncated JSON."""
        status, text = self._raw_http(
            server,
            b"POST /analyze HTTP/1.1\r\n"
            b"Host: test\r\nContent-Type: application/json\r\n"
            b"Content-Length: 4096\r\nConnection: close\r\n",
            body=b'{"chain": "sig',
            cut_body=True,
        )
        assert status == 400
        error = json.loads(text)["error"]
        assert "short request body" in error
        assert "4096" in error

    def test_coalescing_one_compute_two_responses(
        self, server, service, system, monkeypatch
    ):
        """Two identical in-flight POST /analyze requests trigger
        exactly one compute; the waiter is answered from the leader's
        result and flagged by the X-Repro-Coalesced header."""
        entered, release = threading.Event(), threading.Event()
        original = AnalysisService._execute

        def gated(self, request):
            entered.set()
            assert release.wait(30), "test never released the compute"
            return original(self, request)

        monkeypatch.setattr(AnalysisService, "_execute", gated)
        request = AnalysisRequest.from_system(system, chain="sigma_c", ks=(3,))
        results = []

        def post():
            results.append(_post_raw(server.url, "/analyze", request.to_dict()))

        first = threading.Thread(target=post)
        first.start()
        assert entered.wait(30), "leader never reached the compute"
        second = threading.Thread(target=post)
        second.start()
        # The waiter registers before the compute is released.
        deadline = threading.Event()
        for _ in range(300):
            if service.counters["coalesced"] == 1:
                break
            deadline.wait(0.05)
        assert service.counters["coalesced"] == 1, "second request never coalesced"
        release.set()
        first.join(30)
        second.join(30)
        assert len(results) == 2
        assert all(status == 200 for status, _, _ in results)
        bodies = [text for _, _, text in results]
        assert bodies[0] == bodies[1]
        assert service.counters["computes"] == 1
        flags = sorted(
            headers.get("X-Repro-Coalesced", "") for _, headers, _ in results
        )
        assert flags == ["", "1"]


class TestCliIntegration:
    def test_batch_export_identical_via_server(self, server, capsys):
        args = ["batch", "--random", "3", "--seed", "7", "--json"]
        assert main(args) == 0
        local = capsys.readouterr().out
        assert main(args + ["--server", server.url]) == 0
        remote = capsys.readouterr().out
        assert remote == local

    def test_batch_system_files_via_server(self, server, tmp_path, capsys):
        path = tmp_path / "system.json"
        path.write_text(system_to_json(figure4_system()))
        args = ["batch", "--system", str(path), "--chain", "sigma_c", "--json"]
        assert main(args) == 0
        local = capsys.readouterr().out
        assert main(args + ["--server", server.url]) == 0
        assert capsys.readouterr().out == local

    def test_analyze_via_server_prints_summary(self, server, capsys):
        assert main(["analyze", "--chain", "sigma_c", "--k", "3",
                     "--server", server.url]) == 0
        out = capsys.readouterr().out
        assert "sigma_c" in out
        assert "dmm(3)=3" in out

    def test_batch_server_summary_mode(self, server, capsys):
        assert main(["batch", "--random", "2", "--seed", "3",
                     "--server", server.url]) == 0
        out = capsys.readouterr().out
        assert "sample-0000" in out and "status" in out

    def test_timings_rejected_with_server(self, server, capsys):
        assert main(["batch", "--random", "2", "--json", "--timings",
                     "--server", server.url]) == 2
        assert "--timings" in capsys.readouterr().err

    def test_unreachable_server_is_a_clean_error(self, capsys):
        assert main(["analyze", "--chain", "sigma_c",
                     "--server", "http://127.0.0.1:9"]) == 2
        assert "cannot reach analysis server" in capsys.readouterr().err

    def test_shared_options_on_every_analyzing_subcommand(self):
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("analyze", "experiment", "batch", "report", "serve"):
            args = parser.parse_args(
                [command]
                + ({"experiment": ["table1"], "cache": ["dir"]}.get(command, []))
                + ["--backend", "dp", "--no-cache", "--exhaustive"]
            )
            from repro.cli import analysis_options

            options = args and analysis_options(args)
            assert options.backend == "dp"
            assert options.use_cache is False
            assert options.enumeration == "exhaustive"
