"""Tests for combination enumeration (Def. 9) and the Eq. (5) split."""

import pytest

from repro import PeriodicModel, SporadicModel, SystemBuilder
from repro.analysis import (Combination, enumerate_combinations,
                            overload_active_segments,
                            split_by_schedulability)


class TestFigure1Example:
    """Sec. V example: the active segments of sigma_a admit exactly four
    combinations."""

    def test_four_combinations(self, figure1):
        segs = overload_active_segments(figure1, figure1["sigma_b"])
        combos = enumerate_combinations(segs)
        assert len(combos) == 4
        names = sorted(tuple(sorted(seg.task_names[0]
                                    for seg in combo.segments))
                       for combo in combos)
        assert names == [
            ("tau_a^1",),            # {(a1, a2)}
            ("tau_a^1", "tau_a^3"),  # {(a1, a2), (a3)}
            ("tau_a^3",),            # {(a3)}
            ("tau_a^5",),            # {(a5)}
        ]

    def test_cross_segment_pairs_excluded(self, figure1):
        segs = overload_active_segments(figure1, figure1["sigma_b"])
        combos = enumerate_combinations(segs)
        for combo in combos:
            indices = {seg.segment_index for seg in combo.segments}
            assert len(indices) == 1  # same-segment restriction


class TestEnumeration:
    def _system(self, overload_count):
        builder = SystemBuilder("many")
        builder.chain("victim", PeriodicModel(1000), deadline=1000)
        builder.task("victim.t", priority=1, wcet=1)
        priority = 2
        for i in range(overload_count):
            builder.chain(f"ov{i}", SporadicModel(5000), overload=True)
            builder.task(f"ov{i}.t", priority=priority, wcet=1)
            priority += 1
        return builder.build()

    def test_power_set_for_single_segment_chains(self):
        system = self._system(3)
        segs = overload_active_segments(system, system["victim"])
        combos = enumerate_combinations(segs)
        assert len(combos) == 2 ** 3 - 1

    def test_max_count_guard(self):
        system = self._system(8)
        segs = overload_active_segments(system, system["victim"])
        with pytest.raises(ValueError):
            enumerate_combinations(segs, max_count=100)

    def test_no_overload_chains_means_no_combinations(self, figure1):
        # figure1's sigma_b is typical; a system with no overload at all:
        system = (
            SystemBuilder("calm")
            .chain("a", PeriodicModel(10), deadline=10)
            .task("a.t", priority=1, wcet=1)
            .build()
        )
        assert enumerate_combinations(
            overload_active_segments(system, system["a"])) == []


class TestSplit:
    def test_threshold_split(self, figure1):
        segs = overload_active_segments(figure1, figure1["sigma_b"])
        combos = enumerate_combinations(segs)
        schedulable, unschedulable = split_by_schedulability(combos, 1.5)
        # Costs are 2 (a1+a2), 1 (a3), 1 (a5), 3 (a1+a2+a3).
        assert sorted(c.cost for c in schedulable) == [1, 1]
        assert sorted(c.cost for c in unschedulable) == [2, 3]

    def test_zero_slack_rejects_all(self, figure1):
        segs = overload_active_segments(figure1, figure1["sigma_b"])
        combos = enumerate_combinations(segs)
        _, unschedulable = split_by_schedulability(combos, 0)
        assert len(unschedulable) == len(combos)

    def test_unschedulability_monotone_under_inclusion(self, figure1):
        """A superset combination is never cheaper: the Eq. (5) threshold
        preserves the knapsack monotonicity."""
        segs = overload_active_segments(figure1, figure1["sigma_b"])
        combos = enumerate_combinations(segs)
        by_keys = {frozenset(c.keys): c for c in combos}
        for combo in combos:
            for other_keys, other in by_keys.items():
                if frozenset(combo.keys) < other_keys:
                    assert other.cost >= combo.cost


class TestCombinationObject:
    def test_uses(self, figure1):
        segs = overload_active_segments(figure1, figure1["sigma_b"])
        all_segments = segs["sigma_a"]
        combo = Combination((all_segments[0],))
        assert combo.uses(all_segments[0])
        assert not combo.uses(all_segments[1])

    def test_cost_sums_wcets(self, figure1):
        segs = overload_active_segments(figure1, figure1["sigma_b"])
        combo = Combination(tuple(segs["sigma_a"][:2]))
        assert combo.cost == sum(s.wcet for s in segs["sigma_a"][:2])

    def test_len_and_str(self, figure1):
        segs = overload_active_segments(figure1, figure1["sigma_b"])
        combo = Combination((segs["sigma_a"][0],))
        assert len(combo) == 1
        assert "sigma_a" in str(combo)
