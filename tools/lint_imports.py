#!/usr/bin/env python
"""Minimal pyflakes-style checker for environments without ruff.

Detects the violation classes the CI ruff job enforces that are
mechanically checkable from the AST: unused imports (F401), duplicate
imports (F811-lite), `== None` / `== True` comparisons (E711/E712),
bare excepts (E722), ambiguous single-character names (E741), and
f-strings without placeholders (F541).  CI runs the real ruff; this
script keeps local development honest when ruff is unavailable.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

AMBIGUOUS = {"l", "O", "I"}


def check_file(path: Path) -> list[str]:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    problems: list[str] = []

    imported: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = (alias.asname or alias.name).split(".")[0]
                imported[name] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imported[alias.asname or alias.name] = node.lineno

    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)

    exported: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Name)
                        and target.id == "__all__"
                        and isinstance(node.value, (ast.List, ast.Tuple))):
                    exported = {
                        element.value for element in node.value.elts
                        if isinstance(element, ast.Constant)
                    }
    for name, lineno in sorted(imported.items(), key=lambda kv: kv[1]):
        if name in used or name in exported:
            continue
        problems.append(f"{path}:{lineno}: F401 unused import {name!r}")

    format_specs: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FormattedValue) and node.format_spec:
            format_specs.add(id(node.format_spec))

    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if not isinstance(comparator, ast.Constant):
                    continue
                if comparator.value is None:
                    problems.append(
                        f"{path}:{node.lineno}: E711 comparison to None")
                elif isinstance(comparator.value, bool):
                    problems.append(
                        f"{path}:{node.lineno}: E712 comparison to bool")
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            problems.append(f"{path}:{node.lineno}: E722 bare except")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.Lambda)):
            args = node.args
            for arg in (args.args + args.posonlyargs + args.kwonlyargs):
                if arg.arg in AMBIGUOUS:
                    problems.append(
                        f"{path}:{node.lineno}: E741 ambiguous name "
                        f"{arg.arg!r}")
        elif isinstance(node, ast.JoinedStr):
            if id(node) in format_specs:
                continue
            if not any(isinstance(part, ast.FormattedValue)
                       for part in node.values):
                problems.append(
                    f"{path}:{node.lineno}: F541 f-string without "
                    f"placeholders")
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        loads: set[str] = set()
        stores: dict[str, int] = {}
        skip: set[str] = {a.arg for a in node.args.args
                          + node.args.posonlyargs + node.args.kwonlyargs}
        for inner in ast.walk(node):
            if isinstance(inner, (ast.Global, ast.Nonlocal)):
                skip.update(inner.names)
            elif isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inner is not node:
                    skip.add(inner.name)
            elif isinstance(inner, ast.Name):
                if isinstance(inner.ctx, ast.Load):
                    loads.add(inner.id)
                elif isinstance(inner.ctx, ast.Store):
                    parentage = getattr(inner, "lineno", 0)
                    stores.setdefault(inner.id, parentage)
            elif isinstance(inner, ast.ExceptHandler) and inner.name:
                stores.setdefault(inner.name, inner.lineno)
        # Only flag simple single-target assignments (ruff's default
        # ignores unpacking); approximate by dropping tuple targets.
        tuple_targets: set[str] = set()
        for inner in ast.walk(node):
            if isinstance(inner, (ast.Assign, ast.For)):
                targets = (inner.targets if isinstance(inner, ast.Assign)
                           else [inner.target])
                for target in targets:
                    if isinstance(target, (ast.Tuple, ast.List)):
                        for element in ast.walk(target):
                            if isinstance(element, ast.Name):
                                tuple_targets.add(element.id)
        for name, lineno in sorted(stores.items(), key=lambda kv: kv[1]):
            if (name in loads or name in skip or name in tuple_targets
                    or name.startswith("_")):
                continue
            problems.append(
                f"{path}:{lineno}: F841-ish local {name!r} assigned but "
                f"never used")

    def check_duplicates(body: list[ast.stmt], where: str) -> None:
        seen: dict[str, int] = {}
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if stmt.name in seen:
                    problems.append(
                        f"{path}:{stmt.lineno}: F811 redefinition of "
                        f"{stmt.name!r} ({where}, first at line "
                        f"{seen[stmt.name]})")
                seen[stmt.name] = stmt.lineno
            if isinstance(stmt, ast.ClassDef):
                check_duplicates(stmt.body, f"class {stmt.name}")

    check_duplicates(tree.body, "module")
    return problems


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src")]
    failures = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            failures.extend(check_file(path))
    for line in failures:
        print(line)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
