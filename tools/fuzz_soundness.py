#!/usr/bin/env python
"""Soundness fuzzer: hunt for counterexamples to the analysis bounds.

Generates random systems (uniform and automotive flavours, sync and
async chains, multiple overload sources), simulates them under
worst-case, randomized and phase-shifted activations, and checks every
claim the library makes:

* observed latency <= WCL (Theorem 2);
* observed stage latency <= per-stage bound;
* observed windowed misses <= dmm(k) (Theorem 3);
* certificates of all produced results re-verify.

Exits non-zero and prints a reproducer seed on the first violation.

Usage:  python tools/fuzz_soundness.py [iterations] [base_seed]
"""

from __future__ import annotations

import random
import sys

from repro import analyze_latency, analyze_twca
from repro.analysis import (analyze_stage_latencies, check_dmm_certificate,
                            check_latency_certificate, dmm_certificate,
                            latency_certificate)
from repro.sim import (Simulator, randomized_activations,
                       simulate_worst_case, worst_case_activations)
from repro.synth import (AutomotiveConfig, GeneratorConfig,
                         generate_feasible_automotive,
                         generate_feasible_system)


def draw_system(rng: random.Random):
    """A random system from one of the generator families."""
    if rng.random() < 0.3:
        return generate_feasible_automotive(rng, AutomotiveConfig(
            chains=rng.randint(2, 5),
            utilization=rng.uniform(0.4, 0.7)))
    return generate_feasible_system(rng, GeneratorConfig(
        chains=rng.randint(2, 4),
        overload_chains=rng.randint(1, 2),
        utilization=rng.uniform(0.4, 0.65),
        overload_utilization=rng.uniform(0.02, 0.1),
        tasks_per_chain=(2, 5),
        deadline_factor=rng.choice([0.8, 1.0, 1.2]),
        asynchronous_fraction=rng.choice([0.0, 0.5])))


def check_one(seed: int) -> None:
    rng = random.Random(seed)
    system = draw_system(rng)
    horizon = 12 * max(c.activation.delta_minus(2) or 100
                       for c in system.chains)

    runs = [simulate_worst_case(system, horizon)]
    streams = randomized_activations(system, horizon, rng, 0.3)
    runs.append(Simulator(system).run(streams, horizon))
    # Phase-shifted overload.
    shifted = dict(worst_case_activations(system, horizon))
    offset = rng.uniform(0, 1) * (
        min(c.activation.delta_minus(2) for c in system.typical_chains))
    for chain in system.overload_chains:
        shifted[chain.name] = [t + offset for t in shifted[chain.name]
                               if t + offset <= horizon]
    runs.append(Simulator(system).run(shifted, horizon))

    for chain in system.typical_chains:
        latency = analyze_latency(system, chain)
        check_latency_certificate(system,
                                  latency_certificate(latency))
        stages = analyze_stage_latencies(system, chain)
        twca = analyze_twca(system, chain)
        for k in (1, 3, 10):
            check_dmm_certificate(system, dmm_certificate(twca, k))
        for sim in runs:
            observed = sim.max_latency(chain.name)
            assert observed <= latency.wcl + 1e-9, (
                f"latency violation: {chain.name} observed {observed} "
                f"> bound {latency.wcl}")
            for record in sim.instances[chain.name]:
                if record.finish is None:
                    continue
                for index, task in enumerate(chain.tasks):
                    finish = record.task_finishes.get(task.name)
                    if finish is None:
                        continue
                    assert (finish - record.activation
                            <= stages.stage(index) + 1e-9), (
                        f"stage violation: {chain.name}[{index}]")
            for k in (1, 3, 10):
                observed_misses = sim.empirical_dmm(chain.name, k)
                assert observed_misses <= twca.dmm(k), (
                    f"dmm violation: {chain.name} k={k} observed "
                    f"{observed_misses} > bound {twca.dmm(k)}")


def main(iterations: int = 50, base_seed: int = 0) -> int:
    failures = 0
    for index in range(iterations):
        seed = base_seed + index
        try:
            check_one(seed)
        except AssertionError as exc:
            failures += 1
            print(f"COUNTEREXAMPLE at seed {seed}: {exc}")
        except Exception as exc:  # noqa: BLE001 - report and continue
            failures += 1
            print(f"CRASH at seed {seed}: {type(exc).__name__}: {exc}")
        else:
            if (index + 1) % 10 == 0:
                print(f"{index + 1}/{iterations} seeds clean")
    if failures:
        print(f"{failures} failing seeds")
        return 1
    print(f"all {iterations} seeds clean")
    return 0


if __name__ == "__main__":
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    base_seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    sys.exit(main(iterations, base_seed))
