"""TWCA hot-path benchmark: pruned frontier search vs exhaustive
enumeration, cold vs warm-started fixed points.

This is the first entry in the perf trajectory: it measures the three
compounding optimisations of the combination-schedulability pipeline —
lazy dominance-pruned enumeration, signature-memoized exact checks and
warm-started fixed points — on a case-study-shaped system whose
exhaustive combination count is >= 10^4, and exports the measurements
to ``BENCH_twca_hotpath.json`` at the repository root.

Gates (tunable via ``REPRO_BENCH_SPEEDUP_GATE``; 0 disables):

* the pruned pipeline must be >= 5x faster than the exhaustive one on
  the cold path;
* DMM curves and deterministic batch exports must be byte-identical
  between the two modes (always asserted — identity is never noise).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import run_once

from repro import PeriodicModel, SporadicModel, SystemBuilder, analyze_twca
from repro.report import format_table
from repro.runner import BatchRunner

#: Acceptance floor for the cold pruned-vs-exhaustive speedup.  The
#: shared-runner CI smoke sets the gate to 0; local runs enforce 5x.
DEFAULT_GATE = 5.0

EXPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_twca_hotpath.json"

KS = (1, 3, 10, 100)


def hotpath_system(overload_count: int = 13, split_chains: int = 2):
    """A case-study-shaped victim under many overload ISR chains.

    ``overload_count - split_chains`` single-task chains contribute a
    power-set choice structure (2 choices each); ``split_chains`` of
    them are recovery-style chains whose second task sits exactly at the
    victim's tail priority, so their one segment splits into two active
    segments (4 choices each, including both together).  With the
    defaults the exhaustive combination count is
    ``2^11 * 4^2 - 1 = 32,767``.
    """
    builder = SystemBuilder("twca-hotpath", allow_shared_priorities=True)
    builder.chain("victim", PeriodicModel(200), deadline=233)
    builder.task("victim.a", priority=2, wcet=25)
    builder.task("victim.b", priority=3, wcet=15)
    builder.chain("noise", PeriodicModel(400), deadline=400)
    builder.task("noise.a", priority=4, wcet=30)
    priority = 10
    for index in range(overload_count):
        name = f"isr{index:02d}"
        builder.chain(name, SporadicModel(6000 + 100 * index), overload=True)
        if index < split_chains:
            # One segment [handle, recover], two active segments:
            # ``recover`` matches the victim's tail priority, so it
            # starts a new active segment; the trailing priority-1
            # cleanup makes the chain deferred.
            builder.task(f"{name}.handle", priority=priority, wcet=4 + index)
            builder.task(f"{name}.recover", priority=3, wcet=5 + index)
            builder.task(f"{name}.cleanup", priority=1, wcet=1)
            priority += 1
        else:
            builder.task(f"{name}.t", priority=priority, wcet=7 + index)
            priority += 1
    return builder.build()


def time_once(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def run_hotpath(tmp_base: Path):
    system = hotpath_system()
    chain = system["victim"]

    pruned, pruned_s = time_once(lambda: analyze_twca(system, chain))
    exhaustive, exhaustive_s = time_once(
        lambda: analyze_twca(
            system, chain, enumeration="exhaustive", max_combinations=200_000
        )
    )
    pruned_dmm, pruned_dmm_s = time_once(lambda: pruned.dmm_curve(KS))
    eager_dmm, eager_dmm_s = time_once(lambda: exhaustive.dmm_curve(KS))
    assert pruned_dmm == eager_dmm, "DMM curves diverged between modes"
    assert pruned.combination_count == exhaustive.combination_count >= 10_000
    assert pruned.unschedulable_count == exhaustive.unschedulable_count > 0

    # Deterministic batch exports must be byte-identical across modes
    # (the runner-level face of the same guarantee).
    export_pruned = (
        BatchRunner(workers=1, use_cache=False, ks=KS)
        .run_systems([system])
        .to_json()
    )
    export_eager = (
        BatchRunner(workers=1, use_cache=False, ks=KS, enumeration="exhaustive")
        .run_systems([system])
        .to_json()
    )
    assert export_pruned == export_eager, "batch exports diverged between modes"

    # Persistent-cache warm path: the second run of the same job list
    # must be served whole from the jobs category.
    cache_dir = tmp_base / "hotpath-cache"
    cold_runner = BatchRunner(workers=1, ks=KS, cache_dir=str(cache_dir))
    cold_batch, cold_s = time_once(lambda: cold_runner.run_systems([system]))
    warm_runner = BatchRunner(workers=1, ks=KS, cache_dir=str(cache_dir))
    warm_batch, warm_s = time_once(lambda: warm_runner.run_systems([system]))
    assert warm_batch.to_json() == cold_batch.to_json()
    assert warm_batch.job_hits == len(warm_batch.jobs)

    cold_total = pruned_s + pruned_dmm_s
    eager_total = exhaustive_s + eager_dmm_s
    return {
        "system": {
            "name": system.name,
            "chains": len(system),
            "tasks": len(system.tasks),
            "combination_count": pruned.combination_count,
            "unschedulable_count": pruned.unschedulable_count,
            "minimal_count": len(pruned.minimal_unschedulable()),
        },
        "pruned": {
            "analyze_seconds": pruned_s,
            "dmm_seconds": pruned_dmm_s,
            "signature_checks": pruned.search_checks,
            "search_nodes": pruned.search_nodes,
        },
        "exhaustive": {
            "analyze_seconds": exhaustive_s,
            "dmm_seconds": eager_dmm_s,
        },
        "warm": {
            "cold_batch_seconds": cold_s,
            "warm_batch_seconds": warm_s,
            "job_hits": warm_batch.job_hits,
            "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        },
        "speedup": eager_total / cold_total if cold_total > 0 else float("inf"),
        "dmm": {str(k): v for k, v in sorted(pruned_dmm.items())},
        "dmm_identical": True,
        "export_identical": True,
    }


def test_twca_hotpath_speedup(benchmark, tmp_path):
    report = run_once(benchmark, run_hotpath, tmp_path)
    rows = [
        ("combinations", report["system"]["combination_count"], ""),
        ("unschedulable", report["system"]["unschedulable_count"],
         f"{report['system']['minimal_count']} minimal"),
        ("exhaustive", f"{report['exhaustive']['analyze_seconds']:.3f}s",
         "materialize + test every member"),
        ("pruned", f"{report['pruned']['analyze_seconds']:.3f}s",
         f"{report['pruned']['signature_checks']} signature checks"),
        ("speedup", f"{report['speedup']:.1f}x", "gate >= 5x"),
        ("warm batch", f"{report['warm']['warm_batch_seconds']:.3f}s",
         f"{report['warm']['warm_speedup']:.1f}x vs cold"),
    ]
    print()
    print(format_table(("metric", "value", "notes"), rows))

    EXPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {EXPORT_PATH}")

    gate = float(os.environ.get("REPRO_BENCH_SPEEDUP_GATE", str(DEFAULT_GATE)))
    if gate > 0:
        assert report["speedup"] >= gate, (
            f"pruned pipeline speedup {report['speedup']:.2f}x "
            f"below the {gate:.1f}x gate"
        )


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        result = run_hotpath(Path(tmp))
    EXPORT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
