"""TWCA hot-path benchmark: pruned frontier search vs exhaustive
enumeration, cold vs warm-started fixed points, and — since the
incremental-engine rework — packing re-solves and ``criterion_load``
window scans.

This is the running entry in the perf trajectory started by PR 3: it
measures the compounding optimisations of the combination-schedulability
pipeline (lazy dominance-pruned enumeration, signature-memoized exact
checks, warm-started fixed points) on a case-study-shaped system whose
exhaustive combination count is >= 10^4, plus the ROADMAP-named next hot
spots: the Theorem 3 packing ILP on a *fat frontier* (many
inclusion-minimal combinations, many capacity rows) re-solved along a
monotone ``Omega`` schedule, and the batched Eq. (5) ``criterion_load``
evaluation.  Everything is exported to ``BENCH_twca_hotpath.json`` at
the repository root, extending the PR-over-PR trajectory.

Since the vectorized-kernel rework it also tracks the two hot spots that
rework attacked: the per-``q`` Theorem 1 fixed points of the Def. 10
exact check (``multiq_fixed_point``: all ``q`` advanced as one masked
Kleene iteration vs the historic scalar per-step loop) and the dense
simplex tableau (``simplex_pivots``: the numpy ndarray tableau vs the
pure-Python list tableau on an incremental rhs schedule).

The 2-D batching rework extends both measurements one dimension up:
``signature_block_fixed_point`` advances a whole *block* of candidate
signatures as one (signature x q) masked Kleene iteration and compares
it against the per-signature 1-D path and the historic scalar loop;
``bb_batched_nodes`` drives the best-first branch-and-bound whose open
frontier resolves through ``IncrementalLp.solve_many`` (plus a shared
``BranchBoundState``) against the historic recursion with one cold
two-phase relaxation per node.

Gates (0 disables each):

* ``REPRO_BENCH_SPEEDUP_GATE`` (default 5): the pruned pipeline must be
  >= 5x faster than the exhaustive one on the cold path;
* ``REPRO_BENCH_PACKING_GATE`` (default 3): the stateful packing engine
  must evaluate the fat-frontier capacity schedule >= 3x faster than
  per-point cold solves through the historic two-phase relaxation;
* ``REPRO_BENCH_MULTIQ_GATE`` (default 3): the batched multi-q Def. 10
  exact check must run >= 3x faster than the scalar reference;
* ``REPRO_BENCH_SIMPLEX_GATE`` (default 1.5): the numpy tableau must
  beat the pure-Python tableau on the pivot-heavy schedule;
* ``REPRO_BENCH_SIG_BLOCK_GATE`` (default 3): the 2-D signature-block
  Def. 10 evaluator must run >= 3x faster than the per-signature 1-D
  path (numpy kernel only — under ``REPRO_KERNEL=python`` the section
  is informational);
* ``REPRO_BENCH_BB_BATCH_GATE`` (default 3): the batched best-first
  branch-and-bound must evaluate the capacity schedule >= 3x faster
  than per-point recursive cold solves (numpy kernel only);
* ``REPRO_BENCH_SERVICE_GATE`` (default 2): the ``--workers 4`` compute
  pool must serve N distinct-system requests >= 2x faster than the
  serialized workers=1 baseline — enforced only on machines with >= 2
  cores (a single GIL-bound core cannot overlap computes; the section
  still runs, records the core count and asserts byte-identity);
* ``REPRO_BENCH_SHARD_GATE`` (default 2): the sharded batch coordinator
  with 4 local shard workers must run a seeded corpus slice >= 2x
  faster than the serial single-process runner — enforced only on
  machines with >= 4 cores (shard processes need real parallelism; the
  section always runs, records the core count, asserts the merged
  export byte-identical to the serial run, and asserts the corpus
  manifest digest reproducible under both kernels);
* ``REPRO_BENCH_SIM_GATE`` (default 3): the numpy event-calendar
  simulation backend must run the ``REPRO_BENCH_SIM_SOAK_EVENTS``
  soak workload (default 10^6 activations) >= 3x faster than the
  scalar python event loop, with identical latencies, miss flags,
  (m,k) windows and busy windows at full scale and byte-identical
  trace exports on a sub-run (numpy installs only);
* DMM curves, packing optima, exact verdicts, pivot sequences and
  deterministic batch exports must be byte-identical between the
  optimized and the reference paths (always asserted — identity is
  never noise).
"""

from __future__ import annotations

import json
import math
import os
import random
import threading
import time
from itertools import islice
from pathlib import Path

from conftest import run_once

from repro import PeriodicModel, SporadicModel, SystemBuilder, analyze_twca
from repro.analysis import analyze_latency
from repro.analysis.busy_window import criterion_load, criterion_loads
from repro.analysis.combinations import iter_combinations, overload_active_segments
from repro.analysis.twca import _build_verdict
from repro.ilp import PackingInstance
from repro.ilp.branch_bound import BranchBoundState, solve_branch_bound
from repro.ilp.simplex import IncrementalLp
from repro.kernel import HAVE_NUMPY, kernel_name, using_kernel
from repro.report import format_table
from repro.runner import BatchRunner, run_sharded
from repro.service import AnalysisRequest, AnalysisService
from repro.sim import Simulator, trace_json
from repro.synth import (
    CorpusSpec,
    figure4_system,
    generate_corpus,
    labeled_random_systems,
    soak_workload,
)

#: Acceptance floor for the cold pruned-vs-exhaustive speedup.  The
#: shared-runner CI smoke sets the gate to 0; local runs enforce 5x.
DEFAULT_GATE = 5.0

#: Acceptance floor for the fat-frontier packing-engine speedup over the
#: historic per-point cold solves (``REPRO_BENCH_PACKING_GATE``).
DEFAULT_PACKING_GATE = 3.0

#: Acceptance floor for the batched multi-q Def. 10 exact check over the
#: scalar per-step reference (``REPRO_BENCH_MULTIQ_GATE``).
DEFAULT_MULTIQ_GATE = 3.0

#: Acceptance floor for the numpy tableau over the pure-Python tableau
#: (``REPRO_BENCH_SIMPLEX_GATE``).
DEFAULT_SIMPLEX_GATE = 1.5

#: Acceptance floor for the 2-D signature-block Def. 10 evaluator over
#: the per-signature 1-D path (``REPRO_BENCH_SIG_BLOCK_GATE``).
DEFAULT_SIG_BLOCK_GATE = 3.0

#: Acceptance floor for the batched best-first branch-and-bound over
#: per-point recursive cold solves (``REPRO_BENCH_BB_BATCH_GATE``).
DEFAULT_BB_BATCH_GATE = 3.0

#: Acceptance floor for the pooled service over the serialized baseline
#: (``REPRO_BENCH_SERVICE_GATE``); engaged only when >= 2 cores exist.
DEFAULT_SERVICE_GATE = 2.0

#: Acceptance floor for the numpy event-calendar simulation backend
#: over the scalar python event loop (``REPRO_BENCH_SIM_GATE``).
DEFAULT_SIM_GATE = 3.0

#: Acceptance floor for the 4-shard coordinator over the serial runner
#: (``REPRO_BENCH_SHARD_GATE``); engaged only when >= 4 cores exist.
DEFAULT_SHARD_GATE = 2.0

EXPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_twca_hotpath.json"

KS = (1, 3, 10, 100)

#: The k range of the whole-curve sections.
CURVE_KS = tuple(range(1, 301))


def hotpath_system(overload_count: int = 13, split_chains: int = 2):
    """A case-study-shaped victim under many overload ISR chains.

    ``overload_count - split_chains`` single-task chains contribute a
    power-set choice structure (2 choices each); ``split_chains`` of
    them are recovery-style chains whose second task sits exactly at the
    victim's tail priority, so their one segment splits into two active
    segments (4 choices each, including both together).  With the
    defaults the exhaustive combination count is
    ``2^11 * 4^2 - 1 = 32,767``.
    """
    builder = SystemBuilder("twca-hotpath", allow_shared_priorities=True)
    builder.chain("victim", PeriodicModel(200), deadline=233)
    builder.task("victim.a", priority=2, wcet=25)
    builder.task("victim.b", priority=3, wcet=15)
    builder.chain("noise", PeriodicModel(400), deadline=400)
    builder.task("noise.a", priority=4, wcet=30)
    priority = 10
    for index in range(overload_count):
        name = f"isr{index:02d}"
        builder.chain(name, SporadicModel(6000 + 100 * index), overload=True)
        if index < split_chains:
            # One segment [handle, recover], two active segments:
            # ``recover`` matches the victim's tail priority, so it
            # starts a new active segment; the trailing priority-1
            # cleanup makes the chain deferred.
            builder.task(f"{name}.handle", priority=priority, wcet=4 + index)
            builder.task(f"{name}.recover", priority=3, wcet=5 + index)
            builder.task(f"{name}.cleanup", priority=1, wcet=1)
            priority += 1
        else:
            builder.task(f"{name}.t", priority=priority, wcet=7 + index)
            priority += 1
    return builder.build()


def time_once(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def time_best_of(make, repeats=3):
    """Min-of-N wall time for short measurements that scheduler noise
    would otherwise dominate.  ``make`` builds a *fresh* callable per
    repeat, so memoized verdict/tableau state cannot leak between
    repeats; every repeat must return the same value (the caller
    asserts it against the reference path)."""
    best = math.inf
    value = None
    for _ in range(repeats):
        value, seconds = time_once(make())
        best = min(best, seconds)
    return value, best


def numpy_version():
    """The installed numpy version, or ``None`` on the pure-Python leg."""
    if not HAVE_NUMPY:
        return None
    import numpy

    return numpy.__version__


def fat_frontier_instance(seed=2017, num_vars=24, num_rows=16, points=56):
    """A packing matrix shaped like a fat Theorem 3 frontier: many
    inclusion-minimal combinations (columns) touching overlapping active
    segments (0/1 rows), every column covered, re-solved along a slowly
    growing ``Omega``-style capacity schedule."""
    rng = random.Random(seed)
    objective = [1.0] * num_vars
    rows = [
        [1.0 if rng.random() < 0.4 else 0.0 for _ in range(num_vars)]
        for _ in range(num_rows)
    ]
    for j in range(num_vars):
        if not any(row[j] for row in rows):
            rows[rng.randrange(num_rows)][j] = 1.0
    caps = [float(rng.randint(1, 3)) for _ in range(num_rows)]
    schedule = []
    for _ in range(points):
        schedule.append(tuple(caps))
        caps = [c + rng.randint(0, 1) for c in caps]
    return PackingInstance(objective, rows), schedule


def run_packing_section():
    """The fat-frontier packing schedule: one stateful engine vs a cold
    solve per capacity vector through the historic two-phase node
    relaxations (``incremental=False``)."""
    instance, schedule = fat_frontier_instance()
    engine = instance.engine("branch_bound")
    warm, warm_s = time_once(
        lambda: [engine.resolve(rhs).objective for rhs in schedule]
    )
    cold, cold_s = time_once(
        lambda: [
            solve_branch_bound(instance.program(rhs), incremental=False).objective
            for rhs in schedule
        ]
    )
    assert warm == cold, "packing optima diverged between engine and cold path"
    stats = engine.stats.as_dict()
    return {
        "variables": instance.num_variables,
        "rows": instance.num_rows,
        "schedule_points": len(schedule),
        "engine_seconds": warm_s,
        "cold_seconds": cold_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "warm_starts": stats["warm_starts"],
        "work": stats["work"],
        "identical": True,
    }


def run_criterion_load_section(system, chain, q_max=400):
    """Batched multi-q ``criterion_load`` vs the per-q loop (uncached:
    the point is the shared window scan, not memoization)."""
    qs = tuple(range(1, q_max + 1))
    batched, batched_s = time_once(lambda: criterion_loads(system, chain, qs))
    single, single_s = time_once(
        lambda: {q: criterion_load(system, chain, q) for q in qs}
    )
    assert batched == single, "criterion loads diverged between paths"
    return {
        "q_max": q_max,
        "batched_seconds": batched_s,
        "per_q_seconds": single_s,
        "speedup": single_s / batched_s if batched_s > 0 else float("inf"),
        "identical": True,
    }


def deep_window_system(overload_count=8):
    """A victim whose busy window spans ~90 activations: one heavy
    long-period interferer keeps ``B(q)`` above ``delta(q+1)`` for a
    long stretch, so the Def. 10 exact check iterates a ~90-deep ``q``
    range per signature — the regime the ROADMAP names as the per-``q``
    fixed-point hot spot, where the scalar reference pays one
    interference-structure evaluation per ``q`` per Kleene step."""
    builder = SystemBuilder("twca-deepwindow", allow_shared_priorities=True)
    builder.chain("victim", PeriodicModel(100), deadline=9000)
    builder.task("victim.a", priority=2, wcet=25)
    builder.task("victim.b", priority=3, wcet=15)
    builder.chain("heavy", PeriodicModel(12_000), deadline=12_000)
    builder.task("heavy.a", priority=5, wcet=5_000)
    priority = 10
    for index in range(overload_count):
        name = f"isr{index:02d}"
        builder.chain(name, SporadicModel(60_000 + 500 * index), overload=True)
        builder.task(f"{name}.t", priority=priority, wcet=20 + index)
        priority += 1
    return builder.build()


def run_multiq_section(system, chain, sample_step=2):
    """The batched multi-q Def. 10 exact check vs the scalar reference:
    both evaluate the raw Eq. (3) fixed points (no Eq. (5) pre-filter,
    no signature memo) over a deterministic sample of combination
    signatures, across the deep ``q`` range of the window."""
    full = analyze_latency(system, chain, include_overload=True)
    deltas = {
        q: chain.activation.delta_minus(q) for q in range(1, full.max_queue + 1)
    }
    loads = criterion_loads(system, chain, tuple(deltas))
    segments = overload_active_segments(system, chain)
    signatures = []
    seen = set()
    for combo in islice(iter_combinations(segments), 0, None, sample_step):
        if combo.signature not in seen:
            seen.add(combo.signature)
            signatures.append(combo.signature)
    multi = _build_verdict(
        system, chain, deltas, loads, segments, exact_criterion=True, multi_q=True
    )
    scalar = _build_verdict(
        system, chain, deltas, loads, segments, exact_criterion=True, multi_q=False
    )
    batched, batched_s = time_once(
        lambda: [multi.exact_check(signature) for signature in signatures]
    )
    reference, reference_s = time_once(
        lambda: [scalar.exact_check(signature) for signature in signatures]
    )
    assert batched == reference, "Def. 10 verdicts diverged between paths"
    return {
        "kernel": kernel_name(),
        "system": system.name,
        "q_range": full.max_queue,
        "signatures": len(signatures),
        "batched_seconds": batched_s,
        "scalar_seconds": reference_s,
        "speedup": reference_s / batched_s if batched_s > 0 else float("inf"),
        "identical": True,
    }


def run_signature_block_section(system, chain, sample_step=3):
    """The 2-D (signature x q) block Def. 10 evaluator vs the
    per-signature 1-D multi-q path vs the historic scalar loop, over a
    deterministic sample of combination signatures on the deep-window
    system.  Each path runs on its own fresh verdict so every timing
    pays its own typical-fixed-point setup; all three must agree
    signature-for-signature."""
    full = analyze_latency(system, chain, include_overload=True)
    deltas = {
        q: chain.activation.delta_minus(q) for q in range(1, full.max_queue + 1)
    }
    loads = criterion_loads(system, chain, tuple(deltas))
    segments = overload_active_segments(system, chain)
    signatures = []
    seen = set()
    for combo in islice(iter_combinations(segments), 0, None, sample_step):
        if combo.signature not in seen:
            seen.add(combo.signature)
            signatures.append(combo.signature)

    def fresh(multi_q):
        return _build_verdict(
            system, chain, deltas, loads, segments,
            exact_criterion=True, multi_q=multi_q,
        )

    def block_run():
        verdict = fresh(True)
        return lambda: verdict.exact_check_many(signatures)

    def one_d_run():
        verdict = fresh(True)
        return lambda: [verdict.exact_check(signature) for signature in signatures]

    def scalar_run():
        verdict = fresh(False)
        return lambda: [verdict.exact_check(signature) for signature in signatures]

    block, block_s = time_best_of(block_run)
    one_d, one_d_s = time_best_of(one_d_run)
    reference, reference_s = time_best_of(scalar_run)
    assert block == one_d == reference, "Def. 10 verdicts diverged between paths"
    return {
        "kernel": kernel_name(),
        "system": system.name,
        "q_range": full.max_queue,
        "signatures": len(signatures),
        "block_seconds": block_s,
        "per_signature_seconds": one_d_s,
        "scalar_seconds": reference_s,
        "speedup": one_d_s / block_s if block_s > 0 else float("inf"),
        "speedup_vs_scalar": (
            reference_s / block_s if block_s > 0 else float("inf")
        ),
        "identical": True,
    }


def run_bb_batch_section():
    """The best-first branch-and-bound (heap frontier resolved through
    ``IncrementalLp.solve_many``, incumbent and tableau carried in one
    ``BranchBoundState``) vs the historic recursion with a cold
    two-phase relaxation per node, along a fat-frontier capacity
    schedule.  Optima are asserted identical point-for-point."""
    instance, schedule = fat_frontier_instance(
        seed=4242, num_vars=26, num_rows=18, points=48
    )

    def batched_run():
        state = BranchBoundState()

        def run():
            optima = []
            for rhs in schedule:
                solution = solve_branch_bound(instance.program(rhs), state)
                state.incumbent = solution
                optima.append(solution.objective)
            return optima

        return run

    def cold_run():
        return lambda: [
            solve_branch_bound(instance.program(rhs), incremental=False).objective
            for rhs in schedule
        ]

    batched, batched_s = time_best_of(batched_run)
    cold, cold_s = time_best_of(cold_run)
    assert batched == cold, "branch-and-bound optima diverged between paths"
    return {
        "kernel": kernel_name(),
        "variables": instance.num_variables,
        "rows": instance.num_rows,
        "schedule_points": len(schedule),
        "batched_seconds": batched_s,
        "cold_seconds": cold_s,
        "speedup": cold_s / batched_s if batched_s > 0 else float("inf"),
        "identical": True,
    }


def run_simplex_section(seed=2017, num_vars=110, num_rows=70, points=40):
    """The numpy ndarray tableau vs the pure-Python list tableau on one
    pivot-heavy incremental LP: a dense random packing-shaped matrix
    re-solved along a growing rhs schedule through
    :class:`repro.ilp.simplex.IncrementalLp`.  Pivot sequences are
    bit-identical by design, so statuses, objectives, values and pivot
    counts are asserted equal before timing is trusted."""
    if not HAVE_NUMPY:
        return {"skipped": True, "reason": "numpy not installed"}
    rng = random.Random(seed)
    objective = [1.0 + rng.random() for _ in range(num_vars)]
    rows = [
        [1.0 if rng.random() < 0.35 else 0.0 for _ in range(num_vars)]
        for _ in range(num_rows)
    ]
    for j in range(num_vars):
        if not any(row[j] for row in rows):
            rows[rng.randrange(num_rows)][j] = 1.0
    caps = [float(rng.randint(1, 4)) for _ in range(num_rows)]
    schedule = []
    for _ in range(points):
        schedule.append(list(caps))
        caps = [c + rng.randint(0, 2) for c in caps]

    outcomes = {}
    timings = {}
    pivots = {}
    for kernel in ("python", "numpy"):
        with using_kernel(kernel):
            lp = IncrementalLp(objective, rows)
            results, seconds = time_once(
                lambda: [lp.solve(rhs) for rhs in schedule]
            )
            outcomes[kernel] = [
                (r.status, r.objective, r.values, r.pivots) for r in results
            ]
            timings[kernel] = seconds
            pivots[kernel] = max(r.pivots for r in results)
    assert outcomes["python"] == outcomes["numpy"], (
        "tableau outcomes diverged between kernels"
    )
    return {
        "variables": num_vars,
        "rows": num_rows,
        "schedule_points": points,
        "total_pivots": pivots["numpy"],
        "python_seconds": timings["python"],
        "numpy_seconds": timings["numpy"],
        "speedup": (
            timings["python"] / timings["numpy"]
            if timings["numpy"] > 0
            else float("inf")
        ),
        "identical": True,
    }


def run_service_section(count=8, workers=4):
    """Service-level concurrency: N distinct-system requests served by
    the ``workers``-bounded compute pool vs the workers=1 serialized
    baseline, byte-identity asserted per response.

    The speedup gate only engages on machines with >= 2 cores: on a
    single core GIL-bound computes cannot overlap, so the measurement
    is recorded (with the core count) but informational — the same
    convention as the scalability bench's worker gates.
    """
    requests = [
        AnalysisRequest.from_system(system, ks=KS, label=label)
        for label, system in labeled_random_systems(
            figure4_system(), count, seed=7
        )
    ]

    with AnalysisService(workers=1) as serial:
        reference, serial_s = time_once(
            lambda: [serial.analyze(request).to_json() for request in requests]
        )

    with AnalysisService(workers=workers) as service:
        payloads = [None] * len(requests)
        barrier = threading.Barrier(len(requests))

        def fire(index):
            barrier.wait(timeout=60)
            payloads[index] = service.analyze(requests[index]).to_json()

        threads = [
            threading.Thread(target=fire, args=(index,))
            for index in range(len(requests))
        ]

        def run_all():
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        _, concurrent_s = time_once(run_all)
        computes = service.counters["computes"]

    assert payloads == reference, "concurrent responses diverged from serial"
    assert computes == len(requests)
    return {
        "requests": len(requests),
        "workers": workers,
        "cores": os.cpu_count() or 1,
        "serial_seconds": serial_s,
        "concurrent_seconds": concurrent_s,
        "speedup": serial_s / concurrent_s if concurrent_s > 0 else float("inf"),
        "identical": True,
    }


def run_sim_soak_section():
    """Soak-scale simulation: the numpy event-calendar backend vs the
    scalar python event loop on the deterministic ``soak_workload``
    (co-prime periodic streams, ~10^6 activations by default, low
    enough utilization that most instances retire in batch while
    contention clusters still exercise the scalar-stretch path).  Both
    engines must produce identical latencies, miss flags, ``dmm(10)``
    windows and busy windows at full scale, and byte-identical JSON
    trace exports on a sub-run small enough to materialize twice."""
    if not HAVE_NUMPY:
        return {"skipped": True, "reason": "numpy not installed"}
    events = int(os.environ.get("REPRO_BENCH_SIM_SOAK_EVENTS", "1000000"))
    system, activations, horizon = soak_workload(events=events)
    released = sum(len(times) for times in activations.values())
    simulator = Simulator(system)

    def collect(result):
        return {
            chain.name: (
                result.latencies(chain.name),
                result.miss_flags(chain.name),
                result.empirical_dmm(chain.name, 10),
                result.busy_windows(chain.name),
            )
            for chain in system.chains
        }

    with using_kernel("numpy"):
        fast_metrics, fast_s = time_best_of(
            lambda: (lambda: collect(simulator.run(activations, horizon)))
        )
    with using_kernel("python"):
        reference_metrics, reference_s = time_best_of(
            lambda: (lambda: collect(simulator.run(activations, horizon)))
        )
    assert fast_metrics == reference_metrics, (
        "soak metrics diverged between simulation backends"
    )
    misses = sum(sum(flags) for _, flags, _, _ in reference_metrics.values())

    # Byte-identical exports on a sub-run small enough to materialize
    # the full object trace twice.
    sub_events = max(2_000, min(20_000, events))
    sub_system, sub_acts, sub_horizon = soak_workload(events=sub_events)
    with using_kernel("numpy"):
        fast_trace = trace_json(Simulator(sub_system).run(sub_acts, sub_horizon))
    with using_kernel("python"):
        reference_trace = trace_json(
            Simulator(sub_system).run(sub_acts, sub_horizon)
        )
    assert fast_trace == reference_trace, (
        "trace exports diverged between simulation backends"
    )
    return {
        "kernel": "numpy",
        "requested_events": events,
        "events": released,
        "horizon": horizon,
        "chains": len(system.chains),
        "misses": misses,
        "numpy_seconds": fast_s,
        "python_seconds": reference_s,
        "speedup": reference_s / fast_s if fast_s > 0 else float("inf"),
        "sub_run_events": sub_events,
        "identical": True,
    }


def run_shard_section(tmp_base: Path, count=12, shards=4):
    """Sharded throughput: the coordinator fanning a seeded corpus
    slice over ``shards`` local worker processes vs the serial
    single-process :class:`BatchRunner` over the same jobs.

    The merged deterministic export is asserted byte-identical to the
    serial run (the sharding contract), and the corpus is generated
    twice — under both kernels when numpy is installed — asserting the
    manifest digest reproduces exactly.  The >= 2x speedup gate only
    engages on machines with >= 4 cores: shard processes need real
    parallelism; on fewer cores the measurement is informational.
    """
    spec = CorpusSpec(count=count, seed=2017, chains=2, tasks_per_chain=(2, 4))
    manifest = generate_corpus(spec, tmp_base / "corpus-a")
    again = generate_corpus(spec, tmp_base / "corpus-b")
    assert manifest.manifest_digest == again.manifest_digest, (
        "corpus manifest digest not reproducible for the same spec"
    )
    other_kernel = "python" if kernel_name() == "numpy" else None
    if other_kernel is not None:
        with using_kernel(other_kernel):
            cross = generate_corpus(spec, tmp_base / "corpus-c")
        assert cross.manifest_digest == manifest.manifest_digest, (
            "corpus manifest digest diverged between kernels"
        )

    systems = list(manifest.systems())
    runner = BatchRunner(workers=1, ks=KS)
    jobs = runner.jobs_for(systems)
    serial_batch, serial_s = time_once(lambda: runner.run(jobs))
    sharded_batch, sharded_s = time_once(
        lambda: run_sharded(jobs, shards=shards)
    )
    assert sharded_batch.to_json() == serial_batch.to_json(), (
        "merged shard export diverged from the serial run"
    )
    return {
        "corpus_systems": count,
        "corpus_digest": manifest.manifest_digest,
        "digest_kernel_independent": other_kernel is not None,
        "jobs": len(jobs),
        "shards": shards,
        "cores": os.cpu_count() or 1,
        "serial_seconds": serial_s,
        "sharded_seconds": sharded_s,
        "speedup": serial_s / sharded_s if sharded_s > 0 else float("inf"),
        "identical": True,
    }


def legacy_curve(result, ks):
    """The pre-engine curve evaluation: per-omega-tuple memo in front of
    stateless cold solves through the legacy relaxations — exactly the
    PR 3 semantics of ``ChainTwcaResult.dmm``."""
    memo = {}
    curve = {}
    names = sorted(result.active_segments)
    for k in ks:
        omegas = {name: result.omega(name, k) for name in names}
        key = tuple(omegas[name] for name in names)
        if key not in memo:
            memo[key] = result.solve_packing_cold(omegas)
        curve[k] = min(k, result.n_b * memo[key])
    return curve


def run_curve_section(system, chain):
    """A dense DMM curve through the engine vs the historic cold path
    (per-omega-tuple memoized stateless solves)."""
    engine_result = analyze_twca(system, chain)
    curve, curve_s = time_once(lambda: engine_result.dmm_curve(CURVE_KS))
    cold_result = analyze_twca(system, chain)
    reference, reference_s = time_once(lambda: legacy_curve(cold_result, CURVE_KS))
    assert curve == reference, "DMM curves diverged between engine and cold path"
    stats = engine_result.packing_stats()
    return {
        "points": len(CURVE_KS),
        "engine_seconds": curve_s,
        "cold_seconds": reference_s,
        "speedup": reference_s / curve_s if curve_s > 0 else float("inf"),
        "resolves": stats.get("resolves", 0),
        "memo_hits": stats.get("memo_hits", 0),
        "warm_starts": stats.get("warm_starts", 0),
        "saturations": stats.get("saturations", 0),
        "identical": True,
    }


def run_hotpath(tmp_base: Path):
    system = hotpath_system()
    chain = system["victim"]

    pruned, pruned_s = time_once(lambda: analyze_twca(system, chain))
    exhaustive, exhaustive_s = time_once(
        lambda: analyze_twca(
            system, chain, enumeration="exhaustive", max_combinations=200_000
        )
    )
    pruned_dmm, pruned_dmm_s = time_once(lambda: pruned.dmm_curve(KS))
    eager_dmm, eager_dmm_s = time_once(lambda: exhaustive.dmm_curve(KS))
    assert pruned_dmm == eager_dmm, "DMM curves diverged between modes"
    assert pruned.combination_count == exhaustive.combination_count >= 10_000
    assert pruned.unschedulable_count == exhaustive.unschedulable_count > 0

    # Deterministic batch exports must be byte-identical across modes
    # (the runner-level face of the same guarantee).
    export_pruned = (
        BatchRunner(workers=1, use_cache=False, ks=KS)
        .run_systems([system])
        .to_json()
    )
    export_eager = (
        BatchRunner(workers=1, use_cache=False, ks=KS, enumeration="exhaustive")
        .run_systems([system])
        .to_json()
    )
    assert export_pruned == export_eager, "batch exports diverged between modes"

    # Persistent-cache warm path: the second run of the same job list
    # must be served whole from the jobs category.
    cache_dir = tmp_base / "hotpath-cache"
    cold_runner = BatchRunner(workers=1, ks=KS, cache_dir=str(cache_dir))
    cold_batch, cold_s = time_once(lambda: cold_runner.run_systems([system]))
    warm_runner = BatchRunner(workers=1, ks=KS, cache_dir=str(cache_dir))
    warm_batch, warm_s = time_once(lambda: warm_runner.run_systems([system]))
    assert warm_batch.to_json() == cold_batch.to_json()
    assert warm_batch.job_hits == len(warm_batch.jobs)

    cold_total = pruned_s + pruned_dmm_s
    eager_total = exhaustive_s + eager_dmm_s
    deep = deep_window_system()
    return {
        "env": {
            "cpu_count": os.cpu_count(),
            "numpy": numpy_version(),
        },
        "packing": run_packing_section(),
        "criterion_load": run_criterion_load_section(system, chain),
        "curve": run_curve_section(system, chain),
        "multiq_fixed_point": run_multiq_section(deep, deep["victim"]),
        "signature_block_fixed_point": run_signature_block_section(
            deep, deep["victim"]
        ),
        "bb_batched_nodes": run_bb_batch_section(),
        "simplex_pivots": run_simplex_section(),
        "service_concurrency": run_service_section(),
        "sim_soak": run_sim_soak_section(),
        "shard_throughput": run_shard_section(tmp_base),
        "system": {
            "name": system.name,
            "chains": len(system),
            "tasks": len(system.tasks),
            "combination_count": pruned.combination_count,
            "unschedulable_count": pruned.unschedulable_count,
            "minimal_count": len(pruned.minimal_unschedulable()),
        },
        "pruned": {
            "analyze_seconds": pruned_s,
            "dmm_seconds": pruned_dmm_s,
            "signature_checks": pruned.search_checks,
            "search_nodes": pruned.search_nodes,
        },
        "exhaustive": {
            "analyze_seconds": exhaustive_s,
            "dmm_seconds": eager_dmm_s,
        },
        "warm": {
            "cold_batch_seconds": cold_s,
            "warm_batch_seconds": warm_s,
            "job_hits": warm_batch.job_hits,
            "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        },
        "speedup": eager_total / cold_total if cold_total > 0 else float("inf"),
        "dmm": {str(k): v for k, v in sorted(pruned_dmm.items())},
        "dmm_identical": True,
        "export_identical": True,
    }


def test_twca_hotpath_speedup(benchmark, tmp_path):
    report = run_once(benchmark, run_hotpath, tmp_path)
    rows = [
        ("combinations", report["system"]["combination_count"], ""),
        ("unschedulable", report["system"]["unschedulable_count"],
         f"{report['system']['minimal_count']} minimal"),
        ("exhaustive", f"{report['exhaustive']['analyze_seconds']:.3f}s",
         "materialize + test every member"),
        ("pruned", f"{report['pruned']['analyze_seconds']:.3f}s",
         f"{report['pruned']['signature_checks']} signature checks"),
        ("speedup", f"{report['speedup']:.1f}x", "gate >= 5x"),
        ("warm batch", f"{report['warm']['warm_batch_seconds']:.3f}s",
         f"{report['warm']['warm_speedup']:.1f}x vs cold"),
        ("packing engine", f"{report['packing']['engine_seconds']:.3f}s",
         f"{report['packing']['speedup']:.1f}x vs cold, gate >= 3x"),
        ("dmm curve", f"{report['curve']['engine_seconds']:.3f}s",
         f"{report['curve']['speedup']:.1f}x vs per-k cold"),
        ("criterion loads", f"{report['criterion_load']['batched_seconds']:.3f}s",
         f"{report['criterion_load']['speedup']:.1f}x vs per-q"),
        ("multi-q exact", f"{report['multiq_fixed_point']['batched_seconds']:.3f}s",
         f"{report['multiq_fixed_point']['speedup']:.1f}x vs scalar, gate >= 3x"),
        ("sig-block exact",
         f"{report['signature_block_fixed_point']['block_seconds']:.3f}s",
         f"{report['signature_block_fixed_point']['speedup']:.1f}x vs "
         "per-signature, gate >= 3x"),
        ("batched b&b", f"{report['bb_batched_nodes']['batched_seconds']:.3f}s",
         f"{report['bb_batched_nodes']['speedup']:.1f}x vs recursive cold, "
         "gate >= 3x"),
        ("simplex tableau",
         f"{report['simplex_pivots'].get('numpy_seconds', 0):.3f}s",
         ("skipped (no numpy)" if report['simplex_pivots'].get('skipped')
          else f"{report['simplex_pivots']['speedup']:.1f}x vs python tableau")),
        ("service pool",
         f"{report['service_concurrency']['concurrent_seconds']:.3f}s",
         f"{report['service_concurrency']['speedup']:.1f}x vs serialized "
         f"({report['service_concurrency']['cores']} core(s))"),
        ("sim soak",
         f"{report['sim_soak'].get('numpy_seconds', 0):.3f}s",
         ("skipped (no numpy)" if report['sim_soak'].get('skipped')
          else f"{report['sim_soak']['speedup']:.1f}x vs python loop over "
          f"{report['sim_soak']['events']} activations, gate >= 3x")),
        ("shard fan-out",
         f"{report['shard_throughput']['sharded_seconds']:.3f}s",
         f"{report['shard_throughput']['speedup']:.1f}x vs serial with "
         f"{report['shard_throughput']['shards']} shards "
         f"({report['shard_throughput']['cores']} core(s))"),
    ]
    print()
    print(format_table(("metric", "value", "notes"), rows))

    EXPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {EXPORT_PATH}")

    gate = float(os.environ.get("REPRO_BENCH_SPEEDUP_GATE", str(DEFAULT_GATE)))
    if gate > 0:
        assert report["speedup"] >= gate, (
            f"pruned pipeline speedup {report['speedup']:.2f}x "
            f"below the {gate:.1f}x gate"
        )
    packing_gate = float(
        os.environ.get("REPRO_BENCH_PACKING_GATE", str(DEFAULT_PACKING_GATE))
    )
    if packing_gate > 0:
        assert report["packing"]["speedup"] >= packing_gate, (
            f"packing engine speedup {report['packing']['speedup']:.2f}x "
            f"below the {packing_gate:.1f}x gate"
        )
    multiq_gate = float(
        os.environ.get("REPRO_BENCH_MULTIQ_GATE", str(DEFAULT_MULTIQ_GATE))
    )
    # Gate on the *active* kernel: under REPRO_KERNEL=python both paths
    # run the pure-Python reference and the speedup is informational.
    if multiq_gate > 0 and report["multiq_fixed_point"]["kernel"] == "numpy":
        assert report["multiq_fixed_point"]["speedup"] >= multiq_gate, (
            f"multi-q exact-check speedup "
            f"{report['multiq_fixed_point']['speedup']:.2f}x "
            f"below the {multiq_gate:.1f}x gate"
        )
    sig_block_gate = float(
        os.environ.get("REPRO_BENCH_SIG_BLOCK_GATE", str(DEFAULT_SIG_BLOCK_GATE))
    )
    sig_block = report["signature_block_fixed_point"]
    if sig_block_gate > 0 and sig_block["kernel"] == "numpy":
        assert sig_block["speedup"] >= sig_block_gate, (
            f"signature-block speedup {sig_block['speedup']:.2f}x "
            f"below the {sig_block_gate:.1f}x gate"
        )
    bb_gate = float(
        os.environ.get("REPRO_BENCH_BB_BATCH_GATE", str(DEFAULT_BB_BATCH_GATE))
    )
    bb_batched = report["bb_batched_nodes"]
    if bb_gate > 0 and bb_batched["kernel"] == "numpy":
        assert bb_batched["speedup"] >= bb_gate, (
            f"batched branch-and-bound speedup {bb_batched['speedup']:.2f}x "
            f"below the {bb_gate:.1f}x gate"
        )
    simplex_gate = float(
        os.environ.get("REPRO_BENCH_SIMPLEX_GATE", str(DEFAULT_SIMPLEX_GATE))
    )
    if simplex_gate > 0 and not report["simplex_pivots"].get("skipped"):
        assert report["simplex_pivots"]["speedup"] >= simplex_gate, (
            f"numpy tableau speedup {report['simplex_pivots']['speedup']:.2f}x "
            f"below the {simplex_gate:.1f}x gate"
        )
    sim_gate = float(os.environ.get("REPRO_BENCH_SIM_GATE", str(DEFAULT_SIM_GATE)))
    if sim_gate > 0 and not report["sim_soak"].get("skipped"):
        assert report["sim_soak"]["speedup"] >= sim_gate, (
            f"sim soak speedup {report['sim_soak']['speedup']:.2f}x "
            f"below the {sim_gate:.1f}x gate"
        )
    shard_gate = float(
        os.environ.get("REPRO_BENCH_SHARD_GATE", str(DEFAULT_SHARD_GATE))
    )
    # Shard worker processes need real cores to overlap; below 4 the
    # section is informational (export identity asserted regardless).
    if shard_gate > 0 and report["shard_throughput"]["cores"] >= 4:
        assert report["shard_throughput"]["speedup"] >= shard_gate, (
            f"shard fan-out speedup "
            f"{report['shard_throughput']['speedup']:.2f}x "
            f"below the {shard_gate:.1f}x gate"
        )
    service_gate = float(
        os.environ.get("REPRO_BENCH_SERVICE_GATE", str(DEFAULT_SERVICE_GATE))
    )
    # Overlapping GIL-bound computes need real cores; on one core the
    # section is informational (byte-identity is asserted regardless).
    if service_gate > 0 and report["service_concurrency"]["cores"] >= 2:
        assert report["service_concurrency"]["speedup"] >= service_gate, (
            f"service pool speedup "
            f"{report['service_concurrency']['speedup']:.2f}x "
            f"below the {service_gate:.1f}x gate"
        )


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        result = run_hotpath(Path(tmp))
    EXPORT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
