"""Shared benchmark configuration.

Heavy experiment regenerations run once per benchmark (pedantic mode);
sample counts can be shrunk for quick runs via environment variables:

* ``REPRO_FIGURE5_SAMPLES``  (default 1000, the paper's count)
* ``REPRO_BENCH_HORIZON``    (default 20000, simulation horizon)
"""

from __future__ import annotations

import os

import pytest


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def figure5_samples() -> int:
    return env_int("REPRO_FIGURE5_SAMPLES", 1000)


@pytest.fixture(scope="session")
def bench_horizon() -> float:
    return float(env_int("REPRO_BENCH_HORIZON", 20_000))


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer (the experiment
    regenerations are deterministic; repeated timing adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
