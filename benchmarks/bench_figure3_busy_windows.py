"""E6 — Figure 3: active segments and busy-window spanning (Lemma 1/2).

The figure shows a trace where one instance of chain sigma_a spans two
sigma_b-busy-windows (its two segments execute in different windows),
while each *active segment* stays inside one window.  We reproduce the
phenomenon in simulation on the Fig. 1 system and check both lemmas on
the observed trace.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import active_segments, segments
from repro.sim import Simulator, render_gantt
from repro.synth import figure1_system


def simulate_trace():
    system = figure1_system()
    simulator = Simulator(system)
    # One sigma_a instance; sigma_b dense enough to keep re-opening busy
    # windows while sigma_a's low-priority tasks stall.
    # sigma_b every 4 units keeps one long busy window open while
    # sigma_a's first segment executes and its low-priority tau_a^4
    # stalls; the extra activation at 16.5 opens a second busy window
    # during which the second segment (tau_a^5) executes.
    activations = {
        "sigma_a": [0.0],
        "sigma_b": [0.0, 4.0, 8.0, 12.0, 16.5],
    }
    return system, simulator.run(activations, horizon=100)


def _window_of(instant, windows):
    for index, (start, end) in enumerate(windows):
        if start <= instant <= end:
            return index
    return None


def test_figure3_lemmas(benchmark):
    system, result = run_once(benchmark, simulate_trace)
    windows = result.busy_windows("sigma_b")
    record = result.instances["sigma_a"][0]
    finishes = record.task_finishes

    sigma_a, sigma_b = system["sigma_a"], system["sigma_b"]
    segs = segments(sigma_a, sigma_b)
    active = active_segments(sigma_a, sigma_b)

    print()
    print(render_gantt(result, until=30, width=90))
    print(f"sigma_b busy windows: {windows}")

    # Lemma 2: each active segment's tasks finish inside one window.
    for act in active:
        indices = {_window_of(finishes[t.name], windows)
                   for t in act.tasks if t.name in finishes}
        indices.discard(None)
        print(f"active segment {act} -> windows {indices}")
        assert len(indices) <= 1

    # Lemma 1: tasks of different segments never share a window.
    segment_windows = []
    for seg in segs:
        indices = {_window_of(finishes[t.name], windows)
                   for t in seg.tasks if t.name in finishes}
        indices.discard(None)
        segment_windows.append(indices)
    for i, left in enumerate(segment_windows):
        for right in segment_windows[i + 1:]:
            assert left.isdisjoint(right)


def test_instance_spans_at_least_segment_count(benchmark):
    """An instance of sigma_a touches at least as many sigma_b-busy-
    windows as it has segments (the observation motivating Def. 9)."""
    system, result = run_once(benchmark, simulate_trace)
    windows = result.busy_windows("sigma_b")
    record = result.instances["sigma_a"][0]
    sigma_a, sigma_b = system["sigma_a"], system["sigma_b"]
    touched = set()
    for seg in segments(sigma_a, sigma_b):
        for task in seg.tasks:
            finish = record.task_finishes.get(task.name)
            if finish is not None:
                index = _window_of(finish, windows)
                if index is not None:
                    touched.add(index)
    print(f"\nsegments: {len(segments(sigma_a, sigma_b))}, "
          f"windows touched: {len(touched)}")
    # The instance's two segments land in two distinct busy windows —
    # exactly the Fig. 3 phenomenon that forces Def. 9's combination
    # structure.
    assert len(touched) == len(segments(sigma_a, sigma_b)) == 2
