"""V2 — Tightness: how conservative are the DMM bounds?

Soundness (observed <= bound) is asserted throughout the suite; this
bench quantifies the other direction.  For the case study it sweeps
overload phasings against sigma_c and compares the worst windowed miss
count ever observed with the Theorem 3 bound, and does the same for the
latency bound (which is exactly tight here).
"""

from __future__ import annotations

from conftest import run_once

from repro import analyze_latency, analyze_twca
from repro.report import format_table
from repro.sim import phase_swept_empirical_dmm, simulate_worst_case
from repro.synth import figure4_system


def tightness_table(horizon):
    system = figure4_system()
    twca = analyze_twca(system, system["sigma_c"])
    rows = []
    for k in (1, 2, 3, 5, 10):
        empirical = phase_swept_empirical_dmm(system, "sigma_c", k,
                                              horizon=horizon)
        bound = twca.dmm(k)
        rows.append((k, empirical, bound,
                     f"{empirical / bound:.2f}" if bound else "-"))
    return rows


def test_dmm_tightness(benchmark, bench_horizon):
    rows = run_once(benchmark, tightness_table, bench_horizon)
    print()
    print(format_table(
        ("k", "worst observed misses", "dmm(k) bound", "ratio"), rows))
    for _, empirical, bound, _ in rows:
        assert empirical <= bound
    # The bound is achieved at k = 1 (a single miss does happen).
    assert rows[0][1] == rows[0][2] == 1


def test_latency_tightness_exact(benchmark, bench_horizon):
    """Theorem 2 is exactly tight on the case study."""

    def observe():
        system = figure4_system()
        sim = simulate_worst_case(system, bench_horizon)
        return {name: (sim.max_latency(name),
                       analyze_latency(system, system[name]).wcl)
                for name in ("sigma_c", "sigma_d")}

    results = run_once(benchmark, observe)
    print()
    for name, (observed, bound) in results.items():
        print(f"{name}: observed {observed:g} / bound {bound:g}")
        assert observed == bound
