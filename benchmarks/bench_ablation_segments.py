"""A1 — Ablation: what does the segment analysis (Sec. IV) buy?

Compares three analyses of the same systems:

* segment-aware latency (Theorem 1, this paper);
* arbitrary-interference-only latency (every chain charged eta * C);
* the chain-as-task collapse (pre-paper state of the art).

Expected shape: segment-aware <= arbitrary-only <= collapsed on chains
with deferred interferers (sigma_d in the case study); equality where no
chain is deferred (sigma_c).
"""

from __future__ import annotations

import random

from conftest import run_once

from repro import analyze_latency, analyze_twca
from repro.baselines import (analyze_collapsed_twca,
                             analyze_latency_arbitrary, pessimism_ratio)
from repro.report import format_table
from repro.synth import GeneratorConfig, figure4_system, \
    generate_feasible_system


def case_study_rows():
    system = figure4_system()
    rows = []
    for name in ("sigma_c", "sigma_d"):
        chain = system[name]
        aware = analyze_latency(system, chain).wcl
        blunt = analyze_latency_arbitrary(system, chain).wcl
        collapsed = analyze_collapsed_twca(system, name).wcl
        rows.append((name, f"{aware:g}", f"{blunt:g}", f"{collapsed:g}"))
    return rows


def test_ablation_case_study(benchmark):
    rows = run_once(benchmark, case_study_rows)
    print()
    print(format_table(
        ("chain", "segment-aware WCL", "arbitrary-only WCL",
         "collapsed WCL"), rows))
    by_name = {row[0]: row for row in rows}
    # sigma_c: no deferred interferer -> aware == arbitrary.
    assert by_name["sigma_c"][1] == by_name["sigma_c"][2]
    # sigma_d: sigma_c is deferred -> strict improvement.
    assert float(by_name["sigma_d"][1]) < float(by_name["sigma_d"][2])
    # Collapsed is the weakest view of sigma_d.
    assert float(by_name["sigma_d"][3]) >= float(by_name["sigma_d"][2])


def test_ablation_pessimism_distribution(benchmark):
    """Pessimism ratio of arbitrary-only over segment-aware across
    random systems with deferred chains."""

    def sweep():
        rng = random.Random(7)
        ratios = []
        while len(ratios) < 15:
            system = generate_feasible_system(rng, GeneratorConfig(
                chains=3, overload_chains=1, utilization=0.5,
                tasks_per_chain=(3, 5)))
            for chain in system.typical_chains:
                ratio = pessimism_ratio(system, chain)
                if ratio is not None:
                    ratios.append(ratio)
        return ratios

    ratios = run_once(benchmark, sweep)
    print(f"\npessimism ratios (arbitrary / segment-aware): "
          f"min={min(ratios):.3f} max={max(ratios):.3f} "
          f"mean={sum(ratios) / len(ratios):.3f}")
    assert all(r >= 1 - 1e-9 for r in ratios)
    assert max(ratios) > 1  # the segment analysis pays off somewhere


def test_ablation_dmm_gap(benchmark):
    """DMM gap between the chain-aware analysis and the collapsed
    baseline on the case study."""

    def compute():
        system = figure4_system()
        aware = analyze_twca(system, system["sigma_c"])
        collapsed = analyze_collapsed_twca(system, "sigma_c")
        return {k: (aware.dmm(k), collapsed.dmm(k))
                for k in (1, 3, 5, 10, 20)}

    table = run_once(benchmark, compute)
    print("\nk -> (chain-aware dmm, collapsed dmm):")
    for k, (aware, collapsed) in sorted(table.items()):
        print(f"  {k:>3}: {aware} vs {collapsed}")
    assert all(aware <= collapsed for aware, collapsed in table.values())
