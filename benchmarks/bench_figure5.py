"""E3 — Figure 5: dmm(10) distribution over random priority assignments.

The paper draws 1000 random priority permutations of the case study and
reports, per chain:

* sigma_c schedulable 633 / 1000 times;
* sigma_d schedulable only 307 / 1000 times;
* "for more than 500 of the remaining [sigma_d] systems it can
  guarantee that no more than 3 out of 10 deadlines can be missed";
* the experiment repeated 30 times gave similar results.

We reproduce the sampling with our own RNG; the checks below assert the
paper's qualitative claims with tolerant bands (the exact counts are
RNG-dependent).  The calibrated overload curves are used because the
"3 out of 10" bucket implies the industrial curves' Omega = 3 at
k = 10 windows (DESIGN.md §4); the printed-parameter variant is also
rendered for comparison.
"""

from __future__ import annotations

import os
import random

from conftest import run_once

from repro import analyze_twca
from repro.report import figure5_panel
from repro.runner import BatchRunner
from repro.synth import (figure4_system, labeled_random_systems,
                         random_systems)

PAPER = {
    "sigma_c_schedulable": 633 / 1000,
    "sigma_d_schedulable": 307 / 1000,
}


def run_figure5(samples: int, calibrated: bool, seed: int = 2017):
    rng = random.Random(seed)
    base = figure4_system(calibrated=calibrated)
    values = {"sigma_c": [], "sigma_d": []}
    for system in random_systems(base, samples, rng):
        for name in values:
            result = analyze_twca(system, system[name])
            values[name].append(
                0 if result.is_schedulable else result.dmm(10))
    return values


def test_figure5_calibrated(benchmark, figure5_samples):
    values = run_once(benchmark, run_figure5, figure5_samples, True)
    print()
    for name in ("sigma_c", "sigma_d"):
        print(figure5_panel(values[name], name))
        print()
    n = figure5_samples
    frac_c = values["sigma_c"].count(0) / n
    frac_d = values["sigma_d"].count(0) / n
    print(f"schedulable fraction sigma_c: paper=0.633 measured={frac_c:.3f}")
    print(f"schedulable fraction sigma_d: paper=0.307 measured={frac_d:.3f}")
    # Qualitative shape: sigma_c schedulable far more often than
    # sigma_d; both fractions in the paper's ballpark.
    assert frac_c > frac_d
    assert 0.45 <= frac_c <= 0.80
    assert 0.15 <= frac_d <= 0.45
    # "> 500 of the remaining sigma_d systems: at most 3 of 10 missed".
    remaining = [v for v in values["sigma_d"] if v > 0]
    at_most_3 = sum(1 for v in remaining if v <= 3)
    print(f"sigma_d remaining with dmm<=3: {at_most_3}/{len(remaining)} "
          f"(paper: >500/693)")
    assert at_most_3 / n > 0.5


def run_figure5_batch(samples: int, calibrated: bool, seed: int = 2017,
                      workers: int = 1, cache_dir=None):
    """The Figure 5 sweep as one batch-runner fan-out.

    ``labeled_random_systems`` draws the same permutation sequence as
    :func:`run_figure5`, so the per-chain value lists must be identical
    to the serial loop for any worker count.  ``cache_dir`` shares the
    memoized fixed points across the workers and across repeated
    sweeps (the paper repeats this experiment 30 times).
    """
    base = figure4_system(calibrated=calibrated)
    labeled = labeled_random_systems(base, samples, seed)
    runner = BatchRunner(workers=workers, ks=(10,), cache_dir=cache_dir)
    batch = runner.run_systems([s for _, s in labeled],
                               ["sigma_c", "sigma_d"],
                               labels=[label for label, _ in labeled])
    values = {"sigma_c": [], "sigma_d": []}
    for job in batch.jobs:
        values[job.chain_name].append(
            0 if job.status == "schedulable" else job.dmm[10])
    return values, batch


def test_figure5_parallel_batch_matches_serial(benchmark, figure5_samples):
    """The parallel variant of E3: the batch runner reproduces the
    serial sweep exactly while fanning the analyses out over worker
    processes."""
    samples = max(50, figure5_samples // 10)
    workers = min(4, os.cpu_count() or 1)

    def measure():
        serial = run_figure5(samples, True)
        parallel, _ = run_figure5_batch(samples, True, workers=workers)
        return serial, parallel

    serial, parallel = run_once(benchmark, measure)
    print(f"\nbatch sweep over {samples} samples with {workers} "
          f"worker(s): results identical to the serial loop")
    assert parallel == serial


def test_figure5_warm_repetition_from_disk(benchmark, tmp_path,
                                           figure5_samples):
    """The paper's 30 repetitions share most candidate systems only
    *within* a seed; across identical sweeps the persistent cache makes
    the repetition free: the second pass recomputes no fixed points and
    reproduces the first byte-for-byte."""
    samples = max(30, figure5_samples // 20)
    cache_dir = tmp_path / "cache"

    def measure():
        cold_values, cold = run_figure5_batch(samples, True,
                                              cache_dir=cache_dir)
        warm_values, warm = run_figure5_batch(samples, True,
                                              cache_dir=cache_dir)
        return cold_values, cold, warm_values, warm

    cold_values, cold, warm_values, warm = run_once(benchmark, measure)
    assert warm_values == cold_values
    assert warm.to_json() == cold.to_json()
    misses = sum(s["misses"] for s in warm.cache_stats.values())
    print(f"\nwarm repetition over {samples} samples: {misses} misses, "
          f"{warm.disk_hit_count} disk hits")
    assert misses == 0


def test_figure5_printed(benchmark, figure5_samples):
    samples = max(100, figure5_samples // 5)
    values = run_once(benchmark, run_figure5, samples, False)
    print()
    for name in ("sigma_c", "sigma_d"):
        print(figure5_panel(values[name], name))
        print()
    frac_c = values["sigma_c"].count(0) / samples
    frac_d = values["sigma_d"].count(0) / samples
    # Schedulability verdicts barely depend on the overload curve tails,
    # so the fractions must match the calibrated run's band.
    assert frac_c > frac_d


def test_figure5_repetition_stability(benchmark, figure5_samples):
    """The paper repeated the experiment 30 times with similar results;
    we run 5 modest repetitions and check the schedulable fractions stay
    within a tight band."""
    samples = max(60, figure5_samples // 10)

    def repeat():
        fractions = []
        for repetition in range(5):
            values = run_figure5(samples, True, seed=31 + repetition)
            fractions.append(values["sigma_c"].count(0) / samples)
        return fractions

    fractions = run_once(benchmark, repeat)
    print(f"\nsigma_c schedulable fractions over repetitions: "
          f"{[f'{f:.3f}' for f in fractions]}")
    spread = max(fractions) - min(fractions)
    assert spread < 0.25
