"""A4 — Ablation: Eq. (5) threshold vs the exact Def. 10 criterion.

The paper offers Eq. (5) as "a much simpler sufficient condition" for
combination schedulability.  This bench sweeps the case-study deadline
and compares the two:

* U sizes (how many combinations each criterion declares unschedulable);
* the resulting dmm(10);
* monotonicity of the deadline/dmm frontier (the exact criterion keeps
  it monotone; Eq. (5) alone does not).
"""

from __future__ import annotations

from conftest import run_once

from repro import analyze_twca
from repro.model import System, TaskChain
from repro.report import format_table
from repro.synth import figure4_system

DEADLINES = (180, 200, 220, 250, 280, 310, 331)


def _with_deadline(base, deadline):
    chains = []
    for chain in base.chains:
        if chain.name == "sigma_c":
            chains.append(TaskChain(chain.name, chain.tasks,
                                    chain.activation, deadline,
                                    chain.kind, chain.overload))
        else:
            chains.append(chain)
    return System(chains, name=f"figure4-D{deadline}")


def sweep():
    base = figure4_system()
    rows = []
    for deadline in DEADLINES:
        system = _with_deadline(base, deadline)
        exact = analyze_twca(system, system["sigma_c"])
        blunt = analyze_twca(system, system["sigma_c"],
                             exact_criterion=False)
        rows.append((deadline,
                     len(exact.unschedulable), exact.dmm(10),
                     len(blunt.unschedulable), blunt.dmm(10)))
    return rows


def test_criterion_ablation(benchmark):
    rows = run_once(benchmark, sweep)
    print()
    print(format_table(
        ("deadline", "|U| exact", "dmm(10) exact",
         "|U| eq5", "dmm(10) eq5"), rows))
    exact_dmms = [row[2] for row in rows]
    # Exact criterion: larger deadline never hurts.
    assert exact_dmms == sorted(exact_dmms, reverse=True)
    # Eq. (5) alone loses monotonicity somewhere in this sweep.
    blunt_dmms = [row[4] for row in rows]
    assert blunt_dmms != sorted(blunt_dmms, reverse=True)
    # Exact is never looser than Eq. (5).
    for row in rows:
        assert row[2] <= row[4]
    # At the paper's deadline (200) the two coincide.
    paper_row = [row for row in rows if row[0] == 200][0]
    assert paper_row[1] == paper_row[3] == 1
    assert paper_row[2] == paper_row[4] == 5


def test_exact_criterion_overhead(benchmark):
    """Wall-time cost of the exact re-check (it re-runs Eq. 3 fixed
    points per suspect combination)."""
    base = figure4_system()
    system = _with_deadline(base, 250)

    def both():
        exact = analyze_twca(system, system["sigma_c"])
        blunt = analyze_twca(system, system["sigma_c"],
                             exact_criterion=False)
        return exact.dmm(10), blunt.dmm(10)

    exact_dmm, blunt_dmm = benchmark(both)
    assert exact_dmm <= blunt_dmm
