"""E5 — Figure 2: packing overload activations into busy windows.

The figure illustrates why the DMM computation is a knapsack: with three
overload tasks whose activation models allow two activations each, and
"any combination containing more than one task is unschedulable", the
number of deadline misses depends on how activations are grouped into
busy windows.  Packing pairs ({1,2}, {1,3}, {2,3}) hits three windows;
packing {1,2,3} together first (the greedy choice) only reaches two.

We reproduce that gap with the actual ILP machinery: the exact solvers
find the 3-window packing, the greedy heuristic the inferior one.
"""

from __future__ import annotations

import itertools

from conftest import run_once

from repro.ilp import IntegerProgram, solve_branch_bound, solve_dp, \
    solve_greedy

TASKS = ("tau_1", "tau_2", "tau_3")
BUDGET = 2  # activations available per overload task


def build_packing_program():
    """Variables: one per unschedulable combination (subsets of >= 2
    tasks); rows: one capacity per overload task."""
    combos = [subset
              for size in (2, 3)
              for subset in itertools.combinations(range(3), size)]
    rows = []
    for task_index in range(3):
        rows.append([1.0 if task_index in combo else 0.0
                     for combo in combos])
    program = IntegerProgram(
        objective=[1.0] * len(combos),
        rows=rows,
        rhs=[float(BUDGET)] * 3,
        names=["+".join(TASKS[i] for i in combo) for combo in combos])
    return program, combos


def test_figure2_packing(benchmark):
    program, combos = build_packing_program()
    exact = run_once(benchmark, solve_branch_bound, program)
    heuristic = solve_greedy(program)
    also_exact = solve_dp(program)
    print()
    print("Figure 2 packing (3 overload tasks x 2 activations,"
          " pairs unschedulable):")
    chosen = [name for name, x in zip(program.names, exact.values) if x]
    print(f"  exact packing  -> {int(exact.objective)} unschedulable "
          f"windows via {chosen}")
    print(f"  greedy packing -> {int(heuristic.objective)} windows")
    assert exact.objective == 3       # case 2 of the figure
    assert also_exact.objective == 3
    assert heuristic.objective <= exact.objective
    # The chosen packing uses each task at most twice.
    for row, capacity in zip(program.rows, program.rhs):
        used = sum(a * x for a, x in zip(row, exact.values))
        assert used <= capacity


def test_packing_scales_with_budget(benchmark):
    """The miss bound grows linearly in the per-task activation budget —
    the Omega capacities of Lemma 4 enter the ILP exactly like this."""

    def sweep():
        results = {}
        for budget in (1, 2, 4, 8):
            program, _ = build_packing_program()
            program.rhs = [float(budget)] * 3
            results[budget] = solve_branch_bound(program).objective
        return results

    results = run_once(benchmark, sweep)
    print(f"\nbudget -> packed windows: {results}")
    assert results[1] == 1
    assert results[2] == 3
    assert results[4] == 6
    assert results[8] == 12
