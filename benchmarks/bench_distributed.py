"""X1 — Extension experiment: TWCA across distributed systems.

Not a paper artifact (the paper is uniprocessor-only and names
distributed systems as the next step, Sec. VII).  This bench exercises
the distributed layer at increasing scale and validates two structural
expectations:

* a chain mapped to a single resource reproduces the uniprocessor
  analysis exactly (degenerate case);
* adding hops never decreases end-to-end latency.
"""

from __future__ import annotations

import random

from conftest import run_once

from repro.arrivals import PeriodicModel, SporadicModel
from repro.distributed import (DistributedChain, DistributedSystem,
                               analyze_distributed, distributed_dmm, on)
from repro.model import Task
from repro.report import format_table


def build_chain(name, resources, period, wcet_each, priority_base,
                deadline=None, overload=False):
    tasks = []
    for index, resource in enumerate(resources):
        tasks.append(on(resource, Task(
            f"{name}.t{index}", priority=priority_base - index,
            wcet=wcet_each, bcet=wcet_each * 0.6)))
    activation = (SporadicModel(period) if overload
                  else PeriodicModel(period))
    return DistributedChain(
        name, tasks, activation,
        deadline=deadline if deadline else float("inf"),
        overload=overload)


def hop_sweep():
    rows = []
    for hops in (1, 2, 3, 4):
        resources = [f"cpu{i}" for i in range(hops)]
        main = build_chain("main", resources * 2, period=100,
                           wcet_each=6, priority_base=50, deadline=150)
        noise = build_chain("noise", [resources[-1]], period=700,
                            wcet_each=15, priority_base=99,
                            overload=True)
        system = DistributedSystem([main, noise],
                                   name=f"hops-{hops}")
        analysis = analyze_distributed(system)
        e2e = analysis["main"]
        dmm10 = distributed_dmm(system, "main", 10, analysis=analysis)
        rows.append((hops, len(e2e.legs), f"{e2e.wcl:g}",
                     analysis.iterations, dmm10))
    return rows


def test_distributed_hop_sweep(benchmark):
    rows = run_once(benchmark, hop_sweep)
    print()
    print(format_table(
        ("hops", "legs", "e2e WCL", "iterations", "dmm(10)"), rows))
    wcls = [float(row[2]) for row in rows]
    assert wcls == sorted(wcls)  # more hops, more latency


def test_distributed_analysis_speed(benchmark):
    """Wall time of one full global analysis (3 resources, 3 chains)."""
    resources = ["cpu0", "cpu1", "cpu2"]
    chains = [
        build_chain("flow_a", resources, 90, 5, 30, deadline=200),
        build_chain("flow_b", list(reversed(resources)), 130, 7, 60,
                    deadline=260),
        build_chain("burst", ["cpu1"], 1000, 20, 99, overload=True),
    ]
    system = DistributedSystem(chains, name="triple")
    result = benchmark(analyze_distributed, system)
    assert result["flow_a"].meets_deadline


def test_distributed_random_population(benchmark):
    """Stability across a random population: the global loop converges
    and budgets always sum to the deadline."""

    def sweep():
        rng = random.Random(3)
        converged = 0
        for trial in range(12):
            hops = rng.randint(1, 3)
            resources = [f"r{i}" for i in range(hops)]
            period = rng.choice([80, 120, 200])
            main = build_chain("main", resources, period,
                               rng.randint(4, 9), 40,
                               deadline=period * 2)
            side = build_chain("side", [resources[0]],
                               rng.choice([60, 90]),
                               rng.randint(2, 5), 80,
                               deadline=1000)
            system = DistributedSystem([main, side],
                                       name=f"rand{trial}")
            analysis = analyze_distributed(system)
            budgets = analysis["main"].leg_budgets()
            assert abs(sum(budgets) - main.deadline) < 1e-6
            converged += 1
        return converged

    converged = run_once(benchmark, sweep)
    print(f"\n{converged}/12 random distributed systems converged")
    assert converged == 12
