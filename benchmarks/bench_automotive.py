"""X2 — Extension experiment: WATERS-style automotive populations.

The paper evaluates on one avionics case study plus priority
permutations of it.  This bench widens the evaluation to automotive
workloads (Kramer et al. period profile: 1–1000 ms tasks, bursty
diagnostic overload) and reports the weakly-hard landscape:

* fraction of chains schedulable / weakly-hard / without guarantee;
* the dmm(10) distribution among weakly-hard chains;
* analysis throughput on this population.
"""

from __future__ import annotations

import random
from collections import Counter

from conftest import run_once

from repro import GuaranteeStatus, analyze_all
from repro.report import format_table, render_histogram
from repro.sim import simulate_worst_case
from repro.synth import AutomotiveConfig, generate_feasible_automotive


def survey(population: int = 25, seed: int = 9):
    rng = random.Random(seed)
    statuses = Counter()
    dmm_values = []
    for _ in range(population):
        system = generate_feasible_automotive(rng, AutomotiveConfig(
            chains=5, utilization=0.6, deadline_factor=1.0))
        for result in analyze_all(system).values():
            statuses[result.status] += 1
            if result.status is GuaranteeStatus.WEAKLY_HARD:
                dmm_values.append(result.dmm(10))
    return statuses, dmm_values


def test_automotive_survey(benchmark):
    statuses, dmm_values = run_once(benchmark, survey)
    total = sum(statuses.values())
    print()
    rows = [(status.value, count, f"{count / total:.1%}")
            for status, count in sorted(statuses.items(),
                                        key=lambda kv: kv[0].value)]
    print(format_table(("verdict", "chains", "share"), rows))
    if dmm_values:
        print()
        print(render_histogram(Counter(dmm_values),
                               title="dmm(10) among weakly-hard chains"))
    assert total >= 100
    # The population must be non-trivial in both directions.
    assert statuses[GuaranteeStatus.SCHEDULABLE] > 0


def test_automotive_bounds_hold_in_simulation(benchmark):
    """Soundness spot-check on the automotive population."""

    def validate():
        rng = random.Random(10)
        checked = 0
        for _ in range(5):
            system = generate_feasible_automotive(rng, AutomotiveConfig(
                chains=4, utilization=0.55))
            horizon = 4 * max(c.activation.delta_minus(2)
                              for c in system.typical_chains)
            sim = simulate_worst_case(system, horizon)
            for name, result in analyze_all(system).items():
                observed = sim.max_latency(name)
                assert observed <= result.wcl + 1e-9
                checked += 1
        return checked

    checked = run_once(benchmark, validate)
    print(f"\n{checked} chain bounds validated against simulation")
    assert checked >= 20


def test_automotive_analysis_throughput(benchmark):
    """Analyses per second on a fixed automotive system."""
    rng = random.Random(11)
    system = generate_feasible_automotive(rng, AutomotiveConfig(
        chains=6, utilization=0.6))
    results = benchmark(analyze_all, system)
    assert len(results) == 6
