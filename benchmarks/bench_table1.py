"""E1 — Table I: worst-case latencies of the case study.

Paper values: WCL(sigma_c) = 331, WCL(sigma_d) = 175, both D = 200.
This reproduction matches them exactly.
"""

from __future__ import annotations

from conftest import run_once

from repro import analyze_latency
from repro.report import wcl_table
from repro.synth import figure4_system

PAPER_WCL = {"sigma_c": 331, "sigma_d": 175}


def compute_table1():
    system = figure4_system()
    return {name: analyze_latency(system, system[name])
            for name in ("sigma_c", "sigma_d")}


def test_table1(benchmark):
    results = run_once(benchmark, compute_table1)
    print()
    print("Table I (paper: WCL_c=331, WCL_d=175, D=200)")
    print(wcl_table(results, {"sigma_c": 200, "sigma_d": 200}))
    for name, expected in PAPER_WCL.items():
        measured = results[name].wcl
        print(f"  {name}: paper={expected} measured={measured:g}")
        assert measured == expected


def test_table1_latency_analysis_speed(benchmark):
    """Microbenchmark: one full Theorem 2 analysis of sigma_c."""
    system = figure4_system()
    chain = system["sigma_c"]
    result = benchmark(analyze_latency, system, chain)
    assert result.wcl == 331
