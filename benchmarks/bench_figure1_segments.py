"""E4 — Figure 1 and the Sec. IV/V in-text structural examples.

Paper facts on the Fig. 1 system (sigma_a w.r.t. sigma_b):

* segments: (tau_a^1, tau_a^2, tau_a^3) and (tau_a^5);
* active segments: (tau_a^1, tau_a^2), (tau_a^3), (tau_a^5);
* exactly four combinations of those active segments.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import (active_segments, enumerate_combinations,
                            overload_active_segments, segments)
from repro.synth import figure1_system


def compute_structures():
    system = figure1_system()
    sigma_a, sigma_b = system["sigma_a"], system["sigma_b"]
    return {
        "segments": [s.task_names for s in segments(sigma_a, sigma_b)],
        "active": [s.task_names
                   for s in active_segments(sigma_a, sigma_b)],
        "combinations": enumerate_combinations(
            overload_active_segments(system, sigma_b)),
    }


def test_figure1_structures(benchmark):
    result = run_once(benchmark, compute_structures)
    print()
    print(f"segments (paper: 2): {result['segments']}")
    print(f"active segments (paper: 3): {result['active']}")
    print(f"combinations (paper: 4): {len(result['combinations'])}")
    assert result["segments"] == [
        ("tau_a^1", "tau_a^2", "tau_a^3"), ("tau_a^5",)]
    assert result["active"] == [
        ("tau_a^1", "tau_a^2"), ("tau_a^3",), ("tau_a^5",)]
    assert len(result["combinations"]) == 4


def test_segment_computation_speed(benchmark):
    system = figure1_system()
    sigma_a, sigma_b = system["sigma_a"], system["sigma_b"]
    result = benchmark(active_segments, sigma_a, sigma_b)
    assert len(result) == 3
