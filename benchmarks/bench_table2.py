"""E2 / E7 — Table II: the deadline miss model of sigma_c.

Paper values: dmm_c(3) = 3, dmm_c(76) = 4, dmm_c(250) = 5, plus the
in-text Experiment 1 facts (three combinations, only c3 unschedulable,
sigma_d needs no DMM).

Two modes (DESIGN.md §4):

* printed parameters — sporadic 700/600; dmm(3) = 3 matches, the
  staircase transitions land at k = 7 and 10 instead of 76 and 250
  (the paper's industrial arrival curves are not printed);
* calibrated curves — staircase delta_minus consistent with the printed
  delta_minus(2); reproduces all three table entries exactly.
"""

from __future__ import annotations

from conftest import run_once

from repro import GuaranteeStatus, analyze_twca
from repro.report import dmm_table
from repro.runner import BatchRunner
from repro.synth import figure4_system

PAPER_DMM = {3: 3, 76: 4, 250: 5}


def compute_table2(calibrated: bool):
    system = figure4_system(calibrated=calibrated)
    result_c = analyze_twca(system, system["sigma_c"])
    result_d = analyze_twca(system, system["sigma_d"])
    return result_c, result_d


def test_table2_calibrated(benchmark):
    result_c, result_d = run_once(benchmark, compute_table2, True)
    print()
    print("Table II, calibrated overload curves "
          "(paper: dmm(3)=3, dmm(76)=4, dmm(250)=5)")
    print(dmm_table(result_c, sorted(PAPER_DMM)))
    for k, expected in PAPER_DMM.items():
        measured = result_c.dmm(k)
        print(f"  dmm({k}): paper={expected} measured={measured}")
        assert measured == expected
    # sigma_d is schedulable and needs no DMM (in-text).
    assert result_d.status is GuaranteeStatus.SCHEDULABLE


def test_table2_printed_parameters(benchmark):
    result_c, _ = run_once(benchmark, compute_table2, False)
    print()
    print("Table II, printed parameters (documented deviation: "
          "transitions at k=7/10 instead of 76/250)")
    print(dmm_table(result_c, [3, 7, 10]))
    assert result_c.dmm(3) == PAPER_DMM[3]  # exact at k = 3
    transitions = [k for k in range(1, 12)
                   if result_c.dmm(k) > result_c.dmm(k - 1 or 1)]
    print(f"  staircase transitions at k = {transitions}")
    assert result_c.dmm(7) == 4 and result_c.dmm(10) == 5


def test_experiment1_combination_facts(benchmark):
    """The Sec. VI in-text details around Table II."""
    result_c, _ = run_once(benchmark, compute_table2, False)
    print()
    print(f"combinations: {len(result_c.combinations)} "
          f"(paper: 3), unschedulable: {len(result_c.unschedulable)} "
          f"(paper: 1)")
    assert len(result_c.combinations) == 3
    assert len(result_c.unschedulable) == 1
    assert result_c.unschedulable[0].cost == 50
    assert result_c.n_b == 1


def test_table2_batch_runner(benchmark):
    """Table II regenerated through the batch runner: one job per
    (calibration, chain), checked against the paper values straight
    from the deterministic export."""

    def run_batch():
        systems = [figure4_system(calibrated=True),
                   figure4_system(calibrated=False)]
        runner = BatchRunner(ks=tuple(sorted(PAPER_DMM)))
        return runner.run_systems(systems, ["sigma_c", "sigma_d"],
                                  labels=["calibrated", "printed"])

    batch = run_once(benchmark, run_batch)
    print()
    print(batch.summary())
    by_key = {(job.label, job.chain_name): job for job in batch.jobs}
    calibrated_c = by_key[("calibrated", "sigma_c")]
    for k, expected in PAPER_DMM.items():
        assert calibrated_c.dmm[k] == expected
    assert by_key[("calibrated", "sigma_d")].status == "schedulable"
    # The printed-parameter deviation is visible in the same batch.
    assert by_key[("printed", "sigma_c")].dmm[3] == PAPER_DMM[3]


def test_table2_warm_disk_cache(benchmark, tmp_path):
    """Table II regenerated twice against one --cache-dir: the warm
    pass recomputes nothing and still reproduces the paper's values
    from the byte-identical export."""

    def run_twice():
        systems = [figure4_system(calibrated=True),
                   figure4_system(calibrated=False)]
        cache_dir = tmp_path / "cache"
        cold = BatchRunner(ks=tuple(sorted(PAPER_DMM)),
                           cache_dir=cache_dir).run_systems(
            systems, ["sigma_c", "sigma_d"],
            labels=["calibrated", "printed"])
        warm = BatchRunner(ks=tuple(sorted(PAPER_DMM)),
                           cache_dir=cache_dir).run_systems(
            systems, ["sigma_c", "sigma_d"],
            labels=["calibrated", "printed"])
        return cold, warm

    cold, warm = run_once(benchmark, run_twice)
    assert warm.to_json() == cold.to_json()
    misses = sum(s["misses"] for s in warm.cache_stats.values())
    print(f"\nwarm pass: {misses} misses, "
          f"{warm.disk_hit_count} disk hits")
    assert misses == 0
    by_key = {(job.label, job.chain_name): job for job in warm.jobs}
    for k, expected in PAPER_DMM.items():
        assert by_key[("calibrated", "sigma_c")].dmm[k] == expected


def test_twca_analysis_speed(benchmark):
    """Microbenchmark: one full TWCA (latency + combinations + ILP)."""
    system = figure4_system()
    result = benchmark(lambda: analyze_twca(
        system, system["sigma_c"]).dmm(10))
    assert result == 5
