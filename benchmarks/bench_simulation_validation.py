"""V1 — Validation: analytical bounds vs simulated behaviour.

For the case study and a random population, runs the critical-instant
simulation and reports bound tightness:

* observed worst latency vs WCL (Theorem 2) — equal on the case study;
* observed misses in k-windows vs dmm(k) (Theorem 3).

Soundness (observed <= bound) is asserted; tightness is reported.
"""

from __future__ import annotations

import random

import pytest
from conftest import run_once

from repro import analyze_latency, analyze_twca
from repro.kernel import HAVE_NUMPY, kernel_name, using_kernel
from repro.report import format_table
from repro.sim import simulate_worst_case, trace_json
from repro.synth import GeneratorConfig, figure4_system, \
    generate_feasible_system


def simulate_checked(system, horizon):
    """Critical-instant simulation under the active kernel, asserted
    byte-identical (full JSON trace) against the other kernel's engine
    — the validation bench doubles as a backend parity check."""
    result = simulate_worst_case(system, horizon)
    if HAVE_NUMPY:
        other = "python" if kernel_name() == "numpy" else "numpy"
        with using_kernel(other):
            reference = simulate_worst_case(system, horizon)
        assert trace_json(result) == trace_json(reference), \
            "simulation backends diverged"
    return result


def validate_case_study(horizon):
    system = figure4_system()
    sim = simulate_checked(system, horizon)
    rows = []
    for name in ("sigma_c", "sigma_d"):
        wcl = analyze_latency(system, system[name]).wcl
        observed = sim.max_latency(name)
        twca = analyze_twca(system, system[name])
        dmm10 = twca.dmm(10)
        observed10 = sim.empirical_dmm(name, 10)
        rows.append((name, f"{observed:g}", f"{wcl:g}",
                     observed10, dmm10))
    return rows


def test_validation_case_study(benchmark, bench_horizon):
    rows = run_once(benchmark, validate_case_study, bench_horizon)
    print()
    print(format_table(
        ("chain", "sim worst latency", "WCL bound",
         "sim misses in 10", "dmm(10) bound"), rows))
    for name, observed, bound, observed10, dmm10 in rows:
        assert float(observed) <= float(bound)
        assert observed10 <= dmm10
    # Tightness on the case study: the latency bound is achieved.
    assert rows[0][1] == rows[0][2] == "331"
    assert rows[1][1] == rows[1][2] == "175"


def test_validation_random_population(benchmark, bench_horizon):
    def sweep():
        rng = random.Random(23)
        records = []
        for _ in range(10):
            system = generate_feasible_system(rng, GeneratorConfig(
                chains=2, overload_chains=1, utilization=0.55,
                overload_utilization=0.08, deadline_factor=0.9))
            sim = simulate_checked(system, bench_horizon / 4)
            for chain in system.typical_chains:
                wcl = analyze_latency(system, chain).wcl
                observed = sim.max_latency(chain.name)
                assert observed <= wcl + 1e-9
                records.append(observed / wcl if wcl else 1.0)
        return records

    ratios = run_once(benchmark, sweep)
    print(f"\nlatency tightness (observed/bound) over "
          f"{len(ratios)} chains: min={min(ratios):.3f} "
          f"mean={sum(ratios) / len(ratios):.3f} max={max(ratios):.3f}")
    assert max(ratios) <= 1 + 1e-9


@pytest.mark.parametrize("kernel", ("python", "numpy"))
def test_simulation_speed(benchmark, bench_horizon, kernel):
    """Microbenchmark: simulating the case study's critical instant,
    once per simulation backend."""
    if kernel == "numpy" and not HAVE_NUMPY:
        pytest.skip("numpy not installed")
    system = figure4_system()
    with using_kernel(kernel):
        result = benchmark(simulate_worst_case, system, bench_horizon / 4)
    assert result.latencies("sigma_c")
