"""A2 — Ablation: ILP backend comparison on Theorem 3 packings.

Times the exact backends (own branch-and-bound, exact DP, scipy/HiGHS)
and the greedy heuristic on packing programs harvested from the
Figure 5 population, and verifies the exact backends agree everywhere.
"""

from __future__ import annotations

import random

import pytest
from conftest import run_once

from repro import analyze_twca
from repro.ilp import (IntegerProgram, solve_branch_bound, solve_dp,
                       solve_greedy, solve_scipy)
from repro.synth import figure4_system, random_systems


def harvest_programs(count: int = 25, seed: int = 5):
    """Packing programs from TWCA runs over random priority
    assignments of the case study."""
    rng = random.Random(seed)
    base = figure4_system()
    programs = []
    for system in random_systems(base, count * 3, rng):
        for name in ("sigma_c", "sigma_d"):
            result = analyze_twca(system, system[name])
            if not result.unschedulable:
                continue
            omegas = {chain: result.omega(chain, 10)
                      for chain in result.active_segments}
            if any(o != o or o == float("inf") for o in omegas.values()):
                continue
            rows, rhs = [], []
            for chain in sorted(result.active_segments):
                for segment in result.active_segments[chain]:
                    row = [1.0 if combo.uses(segment) else 0.0
                           for combo in result.unschedulable]
                    if any(row):
                        rows.append(row)
                        rhs.append(float(omegas[chain]))
            programs.append(IntegerProgram(
                objective=[1.0] * len(result.unschedulable),
                rows=rows, rhs=rhs))
            if len(programs) >= count:
                return programs
    return programs


@pytest.fixture(scope="module")
def programs():
    return harvest_programs()


def test_backend_agreement_on_harvest(benchmark, programs):
    def solve_all():
        results = []
        for program in programs:
            bb = solve_branch_bound(program)
            dp = solve_dp(program)
            hi = solve_scipy(program)
            gr = solve_greedy(program)
            assert bb.objective == dp.objective == hi.objective
            assert gr.objective <= bb.objective
            results.append(bb.objective)
        return results

    optima = run_once(benchmark, solve_all)
    print(f"\n{len(optima)} packings solved; optima histogram: "
          f"{sorted(set(optima))}")
    assert optima  # harvested something


def test_branch_bound_speed(benchmark, programs):
    result = benchmark(lambda: [solve_branch_bound(p).objective
                                for p in programs])
    assert len(result) == len(programs)


def test_dp_speed(benchmark, programs):
    result = benchmark(lambda: [solve_dp(p).objective for p in programs])
    assert len(result) == len(programs)


def test_scipy_speed(benchmark, programs):
    result = benchmark(lambda: [solve_scipy(p).objective
                                for p in programs])
    assert len(result) == len(programs)


def test_greedy_speed(benchmark, programs):
    result = benchmark(lambda: [solve_greedy(p).objective
                                for p in programs])
    assert len(result) == len(programs)


def test_greedy_quality_gap(benchmark, programs):
    """How much does the heuristic lose?  (It is never used for reported
    bounds; this quantifies why.)"""

    def gaps():
        out = []
        for program in programs:
            exact = solve_branch_bound(program).objective
            heur = solve_greedy(program).objective
            if exact > 0:
                out.append(heur / exact)
        return out

    ratios = run_once(benchmark, gaps)
    print(f"\ngreedy/exact ratios: min={min(ratios):.3f} "
          f"mean={sum(ratios) / len(ratios):.3f}")
    assert all(0 <= r <= 1 + 1e-9 for r in ratios)
