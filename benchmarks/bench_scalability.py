"""A3 — Scalability: analysis runtime vs system size.

The paper's case study has 4 chains / 13 tasks.  This bench sweeps the
generator over larger systems and reports the full-TWCA wall time per
system, verifying the analysis stays laptop-friendly well beyond the
paper's scale.
"""

from __future__ import annotations

import random
import time

from conftest import run_once

from repro import analyze_all
from repro.report import format_table
from repro.synth import GeneratorConfig, generate_feasible_system

SWEEP = [
    ("paper scale", GeneratorConfig(chains=3, overload_chains=1,
                                    tasks_per_chain=(2, 5))),
    ("2x chains", GeneratorConfig(chains=6, overload_chains=2,
                                  tasks_per_chain=(2, 5))),
    ("long chains", GeneratorConfig(chains=3, overload_chains=1,
                                    tasks_per_chain=(8, 12))),
    ("many chains", GeneratorConfig(chains=10, overload_chains=3,
                                    tasks_per_chain=(2, 4),
                                    utilization=0.5)),
]


def sweep_sizes():
    rng = random.Random(11)
    rows = []
    for label, config in SWEEP:
        system = generate_feasible_system(rng, config)
        tasks = len(system.tasks)
        start = time.perf_counter()
        results = analyze_all(system)
        elapsed = (time.perf_counter() - start) * 1000
        dmm_values = {}
        for name, result in results.items():
            dmm_values[name] = result.dmm(10)
        rows.append((label, len(system), tasks, f"{elapsed:.1f}",
                     len(results)))
    return rows


def test_scalability_sweep(benchmark):
    rows = run_once(benchmark, sweep_sizes)
    print()
    print(format_table(
        ("configuration", "chains", "tasks", "analysis ms",
         "chains analyzed"), rows))
    # The largest configuration must stay interactive (< 10 s).
    assert all(float(row[3]) < 10_000 for row in rows)


def test_analysis_scales_with_chain_count(benchmark):
    """Per-system TWCA time for a mid-size random population."""

    def analyze_population():
        rng = random.Random(12)
        total = 0
        for _ in range(10):
            system = generate_feasible_system(rng, GeneratorConfig(
                chains=5, overload_chains=2, utilization=0.55))
            total += len(analyze_all(system))
        return total

    analyzed = benchmark(analyze_population)
    assert analyzed >= 10
