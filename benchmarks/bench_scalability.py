"""A3 — Scalability: analysis runtime vs system size.

The paper's case study has 4 chains / 13 tasks.  This bench sweeps the
generator over larger systems and reports the full-TWCA wall time per
system, verifying the analysis stays laptop-friendly well beyond the
paper's scale.
"""

from __future__ import annotations

import os
import random
import time

from conftest import run_once

from repro import analyze_all
from repro.report import format_table
from repro.runner import BatchRunner
from repro.synth import (GeneratorConfig, figure4_system,
                         generate_feasible_system, labeled_random_systems)

SWEEP = [
    ("paper scale", GeneratorConfig(chains=3, overload_chains=1,
                                    tasks_per_chain=(2, 5))),
    ("2x chains", GeneratorConfig(chains=6, overload_chains=2,
                                  tasks_per_chain=(2, 5))),
    ("long chains", GeneratorConfig(chains=3, overload_chains=1,
                                    tasks_per_chain=(8, 12))),
    ("many chains", GeneratorConfig(chains=10, overload_chains=3,
                                    tasks_per_chain=(2, 4),
                                    utilization=0.5)),
]


def sweep_sizes():
    rng = random.Random(11)
    rows = []
    for label, config in SWEEP:
        system = generate_feasible_system(rng, config)
        tasks = len(system.tasks)
        start = time.perf_counter()
        results = analyze_all(system)
        elapsed = (time.perf_counter() - start) * 1000
        dmm_values = {}
        for name, result in results.items():
            dmm_values[name] = result.dmm(10)
        rows.append((label, len(system), tasks, f"{elapsed:.1f}",
                     len(results)))
    return rows


def test_scalability_sweep(benchmark):
    rows = run_once(benchmark, sweep_sizes)
    print()
    print(format_table(
        ("configuration", "chains", "tasks", "analysis ms",
         "chains analyzed"), rows))
    # The largest configuration must stay interactive (< 10 s).
    assert all(float(row[3]) < 10_000 for row in rows)


def test_analysis_scales_with_chain_count(benchmark):
    """Per-system TWCA time for a mid-size random population."""

    def analyze_population():
        rng = random.Random(12)
        total = 0
        for _ in range(10):
            system = generate_feasible_system(rng, GeneratorConfig(
                chains=5, overload_chains=2, utilization=0.55))
            total += len(analyze_all(system))
        return total

    analyzed = benchmark(analyze_population)
    assert analyzed >= 10


def parallel_sweep(workers: int, samples: int = 200):
    """One Table-2-style sweep through the batch runner."""
    base = figure4_system(calibrated=True)
    labeled = labeled_random_systems(base, samples, seed=2017)
    runner = BatchRunner(workers=workers, ks=(10,))
    batch = runner.run_systems([s for _, s in labeled],
                               ["sigma_c", "sigma_d"],
                               labels=[label for label, _ in labeled])
    return batch


def test_parallel_speedup(benchmark):
    """The headline claim of the batch runner: process fan-out turns
    sweep wall-clock into roughly wall/workers.  Measured, not claimed
    — the speedup assertion at 4 workers needs >= 4 cores to be
    physical, so it is informational on smaller machines, and the gate
    is tunable via ``REPRO_BENCH_SPEEDUP_GATE`` (0 disables it) so
    shared CI runners can measure without gating merges on scheduler
    noise.
    """

    def measure():
        start = time.perf_counter()
        serial = parallel_sweep(workers=1)
        serial_wall = time.perf_counter() - start
        start = time.perf_counter()
        parallel = parallel_sweep(workers=4)
        parallel_wall = time.perf_counter() - start
        assert serial.to_json() == parallel.to_json()
        return serial_wall, parallel_wall

    serial_wall, parallel_wall = run_once(benchmark, measure)
    speedup = serial_wall / parallel_wall if parallel_wall else 1.0
    cores = os.cpu_count() or 1
    gate = float(os.environ.get("REPRO_BENCH_SPEEDUP_GATE", "1.5"))
    print(f"\nsweep wall-clock: serial {serial_wall:.2f}s, "
          f"4 workers {parallel_wall:.2f}s, speedup {speedup:.2f}x "
          f"on {cores} core(s)")
    if cores >= 4 and gate > 0:
        assert speedup > gate
    else:
        print(f"(speedup gate skipped: {cores} core(s), gate {gate:g})")


def test_cache_reuse_speedup(benchmark):
    """A warm shared AnalysisCache makes re-analysis of an identical
    sweep dramatically cheaper than the cold run."""

    def measure():
        base = figure4_system(calibrated=True)
        labeled = labeled_random_systems(base, 50, seed=4)
        systems = [s for _, s in labeled]
        labels = [label for label, _ in labeled]
        runner = BatchRunner(workers=1, ks=(10,))
        start = time.perf_counter()
        cold = runner.run_systems(systems, ["sigma_c"], labels=labels)
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = runner.run_systems(systems, ["sigma_c"], labels=labels)
        warm_wall = time.perf_counter() - start
        assert cold.to_json() == warm.to_json()
        return cold_wall, warm_wall, warm.cache_hit_rate

    cold_wall, warm_wall, hit_rate = run_once(benchmark, measure)
    print(f"\ncold {cold_wall * 1000:.1f}ms, warm {warm_wall * 1000:.1f}ms, "
          f"warm hit rate {hit_rate:.0%}")
    assert hit_rate > 0.9
    # Generous noise margin: the claim is "not slower", the typical
    # observation is several times faster.  Same escape hatch as the
    # speedup gate: timing assertions don't gate merges on shared CI.
    if float(os.environ.get("REPRO_BENCH_SPEEDUP_GATE", "1.5")) > 0:
        assert warm_wall <= cold_wall * 1.2


def test_persistent_cache_cross_run_speedup(benchmark, tmp_path):
    """The disk-backed cache extends the warm-start across *runner
    instances* (hence across processes and CLI invocations): a fresh
    runner pointed at a populated --cache-dir recomputes no fixed
    points at all."""

    def measure():
        base = figure4_system(calibrated=True)
        labeled = labeled_random_systems(base, 50, seed=4)
        systems = [s for _, s in labeled]
        labels = [label for label, _ in labeled]
        cache_dir = tmp_path / "cache"
        start = time.perf_counter()
        cold = BatchRunner(workers=1, ks=(10,),
                           cache_dir=cache_dir).run_systems(
            systems, ["sigma_c"], labels=labels)
        cold_wall = time.perf_counter() - start
        # A brand-new runner: empty in-process front, warm disk.
        start = time.perf_counter()
        warm = BatchRunner(workers=1, ks=(10,),
                           cache_dir=cache_dir).run_systems(
            systems, ["sigma_c"], labels=labels)
        warm_wall = time.perf_counter() - start
        assert cold.to_json() == warm.to_json()
        misses = sum(s["misses"] for s in warm.cache_stats.values())
        return cold_wall, warm_wall, misses, warm.disk_hit_count

    cold_wall, warm_wall, misses, disk_hits = run_once(benchmark, measure)
    print(f"\ncold {cold_wall * 1000:.1f}ms, cross-run warm "
          f"{warm_wall * 1000:.1f}ms, {disk_hits} disk hits")
    assert misses == 0
    assert disk_hits > 0
    if float(os.environ.get("REPRO_BENCH_SPEEDUP_GATE", "1.5")) > 0:
        assert warm_wall <= cold_wall * 1.2
