"""Priority-assignment search on top of the TWCA.

Experiment 2 demonstrates that the priority assignment decides whether a
chain is schedulable, weakly-hard-guaranteeable, or hopeless.  This
module turns that observation into tooling: search the permutation space
for assignments minimizing the deadline miss bound of selected chains.

Two strategies are provided:

* :func:`random_search` — sample random permutations (the Experiment 2
  setup) and keep the best;
* :func:`hill_climb` — local search by pairwise priority swaps, seeded
  by a random or current assignment.

Both route their candidate evaluations through a
:class:`repro.runner.BatchRunner` when one is passed: random search
fans the independent candidate evaluations out over the runner's worker
processes (results are identical to the serial path), while hill
climbing — inherently sequential — evaluates in-process under the
runner's shared :class:`~repro.runner.AnalysisCache`.

A runner built with ``cache_dir`` backs those evaluations with the
persistent cross-process cache: candidates revisited by later search
rounds — or by a *rerun* of the whole search, e.g. with a larger
sample budget — are served from disk instead of recomputing their
busy-window fixed points, regardless of which worker process they land
on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.exceptions import AnalysisError
from ..analysis.twca import analyze_twca
from ..model import System
from ..synth.priorities import random_assignment


@dataclass
class SearchResult:
    """Best assignment found and its score trace."""

    assignment: Dict[str, float]
    score: float
    evaluations: int
    history: List[float]

    def apply(self, system: System) -> System:
        """The system under the found assignment."""
        return system.with_priorities(self.assignment)


@dataclass(frozen=True)
class DmmObjective:
    """Summed ``dmm(k)`` over ``chain_names``; schedulable chains
    contribute 0, no-guarantee chains and analysis errors contribute
    ``k`` (the vacuous bound).  Lower is better.

    A plain callable (drop-in for the old closure form of
    :func:`dmm_objective`), but introspectable — which is what lets the
    searches decompose it into independent per-chain batch jobs.
    """

    chain_names: Tuple[str, ...]
    k: int = 10

    def __call__(self, system: System) -> float:
        total = 0.0
        for name in self.chain_names:
            try:
                result = analyze_twca(system, system[name])
            except AnalysisError:
                total += self.k
                continue
            total += result.dmm(self.k)
        return total


def dmm_objective(chain_names: Sequence[str], k: int = 10) -> DmmObjective:
    """Objective: summed ``dmm(k)`` over ``chain_names``; schedulable
    chains contribute 0, no-guarantee chains contribute ``k`` (their
    vacuous bound).  Lower is better."""
    return DmmObjective(tuple(chain_names), k)


def _require_dmm_objective(objective: Callable[[System], float]) -> DmmObjective:
    """Checked downcast: runner-backed searches need the decomposable
    objective form, not a generic callable."""
    if not isinstance(objective, DmmObjective):
        raise TypeError(
            "runner-backed search needs a DmmObjective (from "
            "dmm_objective()); got a generic callable"
        )
    return objective


def _runner_evaluator(
    objective: Callable[[System], float], runner
) -> Callable[[System], float]:
    """The objective routed through a runner's memoized in-process
    evaluation (requires a decomposable :class:`DmmObjective`)."""
    objective = _require_dmm_objective(objective)
    return lambda system: runner.evaluate_dmm(
        system, objective.chain_names, objective.k
    )


def _batch_scores(
    objective: DmmObjective, runner, systems: List[System]
) -> List[float]:
    """Score many candidate systems in one parallel batch.

    Per-job scoring delegates to ``JobResult.score`` so the vacuous
    error bound stays identical to ``BatchRunner.evaluate_dmm``."""
    chains = list(objective.chain_names)
    batch = runner.run_systems(systems, chains, ks=(objective.k,))
    scores: List[float] = []
    width = len(chains)
    for index in range(len(systems)):
        jobs = batch.jobs[index * width : (index + 1) * width]
        scores.append(sum(job.score(objective.k) for job in jobs))
    return scores


def current_assignment(system: System) -> Dict[str, float]:
    """The system's priority map (task name -> priority)."""
    return {task.name: task.priority for task in system.tasks}


def random_search(
    system: System,
    objective: Callable[[System], float],
    samples: int,
    rng: random.Random,
    *,
    runner=None,
) -> SearchResult:
    """Evaluate ``samples`` random permutations; keep the best.

    With a :class:`repro.runner.BatchRunner`, the candidate evaluations
    — independent by construction — are fanned out over its worker
    processes in one batch; the candidates, scores and returned result
    are identical to the serial path (same RNG consumption, same
    fold order).  Requires a :class:`DmmObjective`.
    """
    if runner is not None:
        objective = _require_dmm_objective(objective)
        candidates = [random_assignment(system, rng) for _ in range(samples)]
        systems = [system] + [
            system.with_priorities(candidate) for candidate in candidates
        ]
        scores = _batch_scores(objective, runner, systems)
        best_assignment = current_assignment(system)
        best_score = scores[0]
        history = [best_score]
        for candidate, score in zip(candidates, scores[1:]):
            if score < best_score:
                best_score = score
                best_assignment = candidate
            history.append(best_score)
        return SearchResult(best_assignment, best_score, samples + 1, history)

    best_assignment = current_assignment(system)
    best_score = objective(system)
    history = [best_score]
    for _ in range(samples):
        candidate = random_assignment(system, rng)
        score = objective(system.with_priorities(candidate))
        if score < best_score:
            best_score = score
            best_assignment = candidate
        history.append(best_score)
    return SearchResult(best_assignment, best_score, samples + 1, history)


def hill_climb(
    system: System,
    objective: Callable[[System], float],
    rng: random.Random,
    *,
    max_rounds: int = 50,
    seed_assignment: Optional[Dict[str, float]] = None,
    runner=None,
) -> SearchResult:
    """Pairwise-swap local search.

    Starting from ``seed_assignment`` (default: the system's own), try
    swapping the priorities of random task pairs; accept improvements,
    stop after a full round without one (or ``max_rounds``).

    A :class:`repro.runner.BatchRunner` routes every evaluation through
    the runner's shared analysis cache (the search itself stays
    sequential — each acceptance changes the next candidate — so the
    trajectory is identical to the plain path).
    """
    if runner is not None:
        objective = _runner_evaluator(objective, runner)
    assignment = dict(seed_assignment or current_assignment(system))
    task_names = [task.name for task in system.tasks]
    best_score = objective(system.with_priorities(assignment))
    history = [best_score]
    evaluations = 1

    for _ in range(max_rounds):
        improved = False
        pairs = [
            (i, j)
            for i in range(len(task_names))
            for j in range(i + 1, len(task_names))
        ]
        rng.shuffle(pairs)
        for i, j in pairs:
            a, b = task_names[i], task_names[j]
            assignment[a], assignment[b] = assignment[b], assignment[a]
            score = objective(system.with_priorities(assignment))
            evaluations += 1
            if score < best_score:
                best_score = score
                history.append(score)
                improved = True
            else:
                assignment[a], assignment[b] = assignment[b], assignment[a]
        if not improved:
            break
        if best_score == 0:
            break
    return SearchResult(assignment, best_score, evaluations, history)
