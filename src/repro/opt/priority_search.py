"""Priority-assignment search on top of the TWCA.

Experiment 2 demonstrates that the priority assignment decides whether a
chain is schedulable, weakly-hard-guaranteeable, or hopeless.  This
module turns that observation into tooling: search the permutation space
for assignments minimizing the deadline miss bound of selected chains.

Two strategies are provided:

* :func:`random_search` — sample random permutations (the Experiment 2
  setup) and keep the best;
* :func:`hill_climb` — local search by pairwise priority swaps, seeded
  by a random or current assignment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.exceptions import AnalysisError
from ..analysis.twca import analyze_twca
from ..model import System
from ..synth.priorities import random_assignment


@dataclass
class SearchResult:
    """Best assignment found and its score trace."""

    assignment: Dict[str, float]
    score: float
    evaluations: int
    history: List[float]

    def apply(self, system: System) -> System:
        """The system under the found assignment."""
        return system.with_priorities(self.assignment)


def dmm_objective(chain_names: Sequence[str], k: int = 10
                  ) -> Callable[[System], float]:
    """Objective: summed ``dmm(k)`` over ``chain_names``; schedulable
    chains contribute 0, no-guarantee chains contribute ``k`` (their
    vacuous bound).  Lower is better."""

    def score(system: System) -> float:
        total = 0.0
        for name in chain_names:
            try:
                result = analyze_twca(system, system[name])
            except AnalysisError:
                total += k
                continue
            total += result.dmm(k)
        return total

    return score


def current_assignment(system: System) -> Dict[str, float]:
    """The system's priority map (task name -> priority)."""
    return {task.name: task.priority for task in system.tasks}


def random_search(system: System, objective: Callable[[System], float],
                  samples: int, rng: random.Random) -> SearchResult:
    """Evaluate ``samples`` random permutations; keep the best."""
    best_assignment = current_assignment(system)
    best_score = objective(system)
    history = [best_score]
    for _ in range(samples):
        candidate = random_assignment(system, rng)
        score = objective(system.with_priorities(candidate))
        if score < best_score:
            best_score = score
            best_assignment = candidate
        history.append(best_score)
    return SearchResult(best_assignment, best_score, samples + 1, history)


def hill_climb(system: System, objective: Callable[[System], float],
               rng: random.Random, *, max_rounds: int = 50,
               seed_assignment: Optional[Dict[str, float]] = None
               ) -> SearchResult:
    """Pairwise-swap local search.

    Starting from ``seed_assignment`` (default: the system's own), try
    swapping the priorities of random task pairs; accept improvements,
    stop after a full round without one (or ``max_rounds``).
    """
    assignment = dict(seed_assignment or current_assignment(system))
    task_names = [task.name for task in system.tasks]
    best_score = objective(system.with_priorities(assignment))
    history = [best_score]
    evaluations = 1

    for _ in range(max_rounds):
        improved = False
        pairs = [(i, j) for i in range(len(task_names))
                 for j in range(i + 1, len(task_names))]
        rng.shuffle(pairs)
        for i, j in pairs:
            a, b = task_names[i], task_names[j]
            assignment[a], assignment[b] = assignment[b], assignment[a]
            score = objective(system.with_priorities(assignment))
            evaluations += 1
            if score < best_score:
                best_score = score
                history.append(score)
                improved = True
            else:
                assignment[a], assignment[b] = (assignment[b],
                                                assignment[a])
        if not improved:
            break
        if best_score == 0:
            break
    return SearchResult(assignment, best_score, evaluations, history)
