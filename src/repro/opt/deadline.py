"""Deadline sensitivity: how tight can deadlines get?

Complements :mod:`repro.opt.sensitivity` (which scales WCETs and
overload rates) with searches over the deadline dimension:

* :func:`minimal_deadline` — the smallest relative deadline under
  which a chain keeps a given weakly-hard guarantee;
* :func:`deadline_frontier` — dmm(k) as a function of the deadline,
  the trade-off curve a system designer actually negotiates.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from ..analysis.exceptions import AnalysisError
from ..analysis.twca import analyze_twca
from ..model import System, TaskChain


def _with_deadline(system: System, chain_name: str, deadline: float) -> System:
    chains = []
    for chain in system.chains:
        if chain.name == chain_name:
            chains.append(
                TaskChain(
                    chain.name,
                    chain.tasks,
                    chain.activation,
                    deadline,
                    chain.kind,
                    chain.overload,
                )
            )
        else:
            chains.append(chain)
    return System(chains, name=system.name, allow_shared_priorities=True)


def _holds(
    system: System, chain_name: str, deadline: float, misses: int, window: int
) -> bool:
    candidate = _with_deadline(system, chain_name, deadline)
    try:
        result = analyze_twca(candidate, candidate[chain_name])
    except AnalysisError:
        return False
    return result.dmm(window) <= misses


def minimal_deadline(
    system: System,
    chain_name: str,
    *,
    misses: int,
    window: int,
    tolerance: float = 0.5,
) -> float:
    """Smallest relative deadline of ``chain_name`` under which
    ``dmm(window) <= misses`` still holds.

    Returns ``math.nan`` when even an unbounded deadline fails (the
    typical system itself is broken) — with an infinite budget any
    schedulable-in-isolation chain eventually succeeds, so the search
    brackets between the chain's WCET and the full worst-case latency
    plus one.
    """
    chain = system[chain_name]
    low = max(chain.total_wcet, tolerance)
    # An upper bracket that always succeeds if anything does: the full
    # WCL (overload included) meets any deadline at or above it.
    probe = _with_deadline(system, chain_name, math.inf)
    try:
        from ..analysis.latency import analyze_latency

        high = analyze_latency(probe, probe[chain_name]).wcl
    except AnalysisError:
        return math.nan
    if not _holds(system, chain_name, high, misses, window):
        return math.nan
    if _holds(system, chain_name, low, misses, window):
        return low
    while high - low > tolerance:
        mid = (low + high) / 2
        if _holds(system, chain_name, mid, misses, window):
            high = mid
        else:
            low = mid
    return high


def deadline_frontier(
    system: System, chain_name: str, deadlines: Sequence[float], k: int = 10
) -> Dict[float, int]:
    """``deadline -> dmm(k)`` over a sweep of candidate deadlines."""
    frontier: Dict[float, int] = {}
    for deadline in deadlines:
        candidate = _with_deadline(system, chain_name, deadline)
        try:
            result = analyze_twca(candidate, candidate[chain_name])
            frontier[deadline] = result.dmm(k)
        except AnalysisError:
            frontier[deadline] = k
    return frontier
