"""Design-space exploration on top of the analyses."""

from .deadline import deadline_frontier, minimal_deadline
from .priority_search import (
    DmmObjective,
    SearchResult,
    current_assignment,
    dmm_objective,
    hill_climb,
    random_search,
)
from .sensitivity import (
    binary_search_margin,
    dmm_vs_scale,
    overload_rate_margin,
    wcet_margin,
)

__all__ = [
    "SearchResult",
    "DmmObjective",
    "dmm_objective",
    "current_assignment",
    "random_search",
    "hill_climb",
    "binary_search_margin",
    "wcet_margin",
    "overload_rate_margin",
    "dmm_vs_scale",
    "minimal_deadline",
    "deadline_frontier",
]
