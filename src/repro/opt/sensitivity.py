"""Sensitivity analysis: how much overload can the guarantees absorb?

Scales parameters of the system and watches the TWCA verdict change —
the practical "margin" questions a deployment engineer asks:

* :func:`wcet_margin` — largest uniform WCET scaling of a chain under
  which a target chain keeps a given weakly-hard guarantee;
* :func:`overload_rate_margin` — smallest overload inter-arrival
  (densest overload) under which the guarantee survives;
* :func:`dmm_vs_scale` — the full dmm(k) curve as a parameter sweeps.

Every entry point accepts an optional :class:`repro.runner.BatchRunner`
and then routes its candidate evaluations through it: the sweep of
:func:`dmm_vs_scale` runs as one parallel batch, the binary-search
margins (inherently sequential) evaluate in-process under the runner's
shared analysis cache.  Results are identical with and without a
runner.  A ``BatchRunner(cache_dir=...)`` persists those evaluations:
margin questions re-asked against the same system — the daily-driver
use of this module — warm-start from disk across processes and runs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from ..analysis.exceptions import AnalysisError
from ..analysis.twca import analyze_twca
from ..arrivals.algebra import scaled
from ..model import System, Task


def _scale_chain_wcets(system: System, chain_name: str, factor: float) -> System:
    """A copy of ``system`` with every WCET of ``chain_name`` scaled."""
    chains = []
    for chain in system.chains:
        if chain.name != chain_name:
            chains.append(chain)
            continue
        tasks = [
            Task(t.name, t.priority, t.wcet * factor, min(t.bcet, t.wcet * factor))
            for t in chain.tasks
        ]
        chains.append(chain.with_tasks(tasks))
    return System(chains, name=f"{system.name}-scaled")


def _scale_activation(system: System, chain_name: str, factor: float) -> System:
    """A copy with ``chain_name``'s activation distances scaled."""
    chains = []
    for chain in system.chains:
        if chain.name != chain_name:
            chains.append(chain)
        else:
            chains.append(chain.with_activation(scaled(chain.activation, factor)))
    return System(chains, name=f"{system.name}-rescaled")


def _guarantee_holds(
    system: System, target_name: str, misses: int, window: int, runner=None
) -> bool:
    """Does ``target_name`` keep ``dmm(window) <= misses``?"""
    if runner is not None:
        job = runner.analyze(system, target_name, ks=(window,))
        return job.ok and job.dmm[window] <= misses
    try:
        result = analyze_twca(system, system[target_name])
    except AnalysisError:
        return False
    return result.dmm(window) <= misses


def binary_search_margin(
    holds: Callable[[float], bool],
    lo: float,
    hi: float,
    *,
    tolerance: float = 1e-3,
    increasing_breaks: bool = True,
) -> float:
    """Largest ``x`` in ``[lo, hi]`` with ``holds(x)`` true, assuming
    monotone degradation (``increasing_breaks``: larger x eventually
    fails; set False when *smaller* x fails, e.g. inter-arrival times).
    """
    if not holds(lo if increasing_breaks else hi):
        return math.nan
    if holds(hi if increasing_breaks else lo):
        return hi if increasing_breaks else lo
    good, bad = (lo, hi) if increasing_breaks else (hi, lo)
    while abs(bad - good) > tolerance:
        mid = (good + bad) / 2
        if holds(mid):
            good = mid
        else:
            bad = mid
    return good


def wcet_margin(
    system: System,
    scaled_chain: str,
    target_chain: str,
    *,
    misses: int,
    window: int,
    hi: float = 8.0,
    runner=None,
) -> float:
    """Largest uniform WCET scale factor of ``scaled_chain`` under which
    ``target_chain`` keeps ``dmm(window) <= misses``.  NaN when the
    guarantee does not even hold at factor 1."""
    return binary_search_margin(
        lambda f: _guarantee_holds(
            _scale_chain_wcets(system, scaled_chain, f),
            target_chain,
            misses,
            window,
            runner=runner,
        ),
        1.0,
        hi,
    )


def overload_rate_margin(
    system: System,
    overload_chain: str,
    target_chain: str,
    *,
    misses: int,
    window: int,
    lo_factor: float = 0.05,
    runner=None,
) -> float:
    """Smallest activation-distance scale of ``overload_chain`` (densest
    overload) keeping ``dmm(window) <= misses`` for ``target_chain``.
    1.0 means no margin; NaN when the guarantee fails already."""
    return binary_search_margin(
        lambda f: _guarantee_holds(
            _scale_activation(system, overload_chain, f),
            target_chain,
            misses,
            window,
            runner=runner,
        ),
        lo_factor,
        1.0,
        increasing_breaks=False,
    )


def dmm_vs_scale(
    system: System,
    scaled_chain: str,
    target_chain: str,
    factors: List[float],
    k: int = 10,
    runner=None,
) -> Dict[float, int]:
    """The dmm(k) of ``target_chain`` as ``scaled_chain``'s WCETs scale
    through ``factors`` (k is the vacuous bound when analysis fails).

    With a :class:`repro.runner.BatchRunner` the factors are evaluated
    as one parallel batch instead of a serial loop.
    """
    if runner is not None:
        candidates = [
            _scale_chain_wcets(system, scaled_chain, factor) for factor in factors
        ]
        batch = runner.run_systems(
            candidates,
            [target_chain],
            labels=[f"scale-{factor:g}" for factor in factors],
            ks=(k,),
        )
        return {
            factor: (k if not job.ok else job.dmm[k])
            for factor, job in zip(factors, batch.jobs)
        }
    table: Dict[float, int] = {}
    for factor in factors:
        candidate = _scale_chain_wcets(system, scaled_chain, factor)
        try:
            result = analyze_twca(candidate, candidate[target_chain])
            table[factor] = result.dmm(k)
        except AnalysisError:
            table[factor] = k
    return table
