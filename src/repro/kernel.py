"""Numeric kernel selection and shared array utilities.

The hot numeric loops of the library — staircase-curve evaluation
(:mod:`repro.arrivals.staircase`), the batched Theorem 1 Kleene
iterations (:mod:`repro.analysis.busy_window`) and the dense simplex
tableau (:mod:`repro.ilp.simplex`) — each have two interchangeable
implementations: a vectorized numpy one and a pure-Python reference.
This module owns the switch between them.

Selection is process-wide and resolved once, from the ``REPRO_KERNEL``
environment variable:

* ``auto`` (default, also the empty string): numpy when importable,
  pure Python otherwise;
* ``numpy``: force the vectorized kernel; raises
  :class:`KernelUnavailable` when numpy is not installed;
* ``python``: force the pure-Python reference even when numpy is
  available (the differential baseline of the kernel-parity tests).

:func:`set_kernel` (surfaced as ``--kernel`` on the analyzing CLI
subcommands) writes the choice back into ``os.environ`` so that batch
worker processes inherit it; both kernels are bit-identical by design,
so the switch never changes results, only wall-clock time.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy
except ImportError:  # pragma: no cover - the no-numpy CI leg
    _numpy = None

#: Whether numpy is importable in this process (independent of the
#: selected kernel).
HAVE_NUMPY = _numpy is not None

#: The two concrete kernels (``auto`` resolves to one of these).
KERNELS: Tuple[str, ...] = ("numpy", "python")

_ENV_VAR = "REPRO_KERNEL"

_active: Optional[str] = None


class KernelUnavailable(RuntimeError):
    """A kernel was requested that this interpreter cannot provide."""


def _resolve(name: Optional[str]) -> str:
    raw = ("auto" if name is None else str(name)).strip().lower()
    if raw in ("", "auto"):
        return "numpy" if HAVE_NUMPY else "python"
    if raw not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {('auto',) + KERNELS}"
        )
    if raw == "numpy" and not HAVE_NUMPY:
        raise KernelUnavailable(
            "REPRO_KERNEL=numpy requested but numpy is not importable; "
            "install the 'speed' extra or use --kernel python"
        )
    return raw


def kernel_name() -> str:
    """The active kernel (``"numpy"`` or ``"python"``), resolved from
    ``REPRO_KERNEL`` on first use."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get(_ENV_VAR))
    return _active


def numpy_or_none():
    """The numpy module when the numpy kernel is active, else ``None``.

    The idiom of every dual-implementation site::

        np = numpy_or_none()
        if np is None:
            ... pure-Python reference ...
        ... vectorized path ...
    """
    return _numpy if kernel_name() == "numpy" else None


def set_kernel(name: Optional[str]) -> str:
    """Select the kernel for this process and its future workers.

    ``name`` is ``"auto"``/``None``, ``"numpy"`` or ``"python"``.  The
    request is validated eagerly (``"numpy"`` without numpy raises
    :class:`KernelUnavailable`), installed process-wide, and mirrored
    into ``os.environ[REPRO_KERNEL]`` so that spawned batch workers
    resolve the identical choice.  Returns the resolved kernel name.
    """
    global _active
    resolved = _resolve(name)
    _active = resolved
    os.environ[_ENV_VAR] = resolved
    return resolved


@contextmanager
def using_kernel(name: Optional[str]) -> Iterator[str]:
    """Context manager: select ``name`` for the duration of the block,
    restoring the previous selection (and environment) afterwards."""
    global _active
    previous_active = _active
    previous_env = os.environ.get(_ENV_VAR)
    try:
        yield set_kernel(name)
    finally:
        _active = previous_active
        if previous_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = previous_env


# ----------------------------------------------------------------------
# Array utilities
# ----------------------------------------------------------------------
def solve_monotone_fixed_points(
    seeds: Sequence[float],
    totals_many,
    totals_one,
    *,
    max_window: float,
    max_iterations: int,
):
    """Batched Kleene iteration of a pointwise-monotone operator.

    Every coordinate ``i`` starts from ``seeds[i]`` (a sound lower
    bound on its least fixed point) and advances through
    ``horizon <- total`` steps until ``total <= horizon``; converged
    coordinates are masked out so one sweep of ``totals_many`` serves
    exactly the still-active ones.  Because the operator is monotone,
    every sound seed converges to exactly the least fixed point, so the
    returned values are bit-identical to a coordinate-at-a-time scalar
    iteration.

    ``totals_many(indices, horizons)`` evaluates the operator for the
    given coordinate indices at the given horizons and returns the
    totals (list or ndarray).  When it raises ``OverflowError`` the
    sweep falls back to ``totals_one(index, horizon)`` per coordinate
    so the offender can be isolated instead of poisoning the batch.

    Returns ``(values, iterations, failures)``: per-coordinate fixed
    points (``None`` where failed), evaluation counts, and failure
    reasons (``None``, or a string starting with ``"window"``,
    ``"iterations"`` or ``"overflow:"``).
    """
    n = len(seeds)
    values: List[Optional[float]] = [None] * n
    iterations = [0] * n
    failures: List[Optional[str]] = [None] * n
    active = list(range(n))
    horizons = [float(seed) for seed in seeds]
    while active:
        probe = [horizons[i] for i in active]
        try:
            totals = totals_many(active, probe)
        except OverflowError:
            totals = []
            still = []
            for i, horizon in zip(active, probe):
                try:
                    totals.append(totals_one(i, horizon))
                    still.append(i)
                except OverflowError as exc:
                    iterations[i] += 1
                    failures[i] = f"overflow: {exc}"
            active = still
        next_active = []
        for i, total in zip(active, totals):
            total = float(total)
            iterations[i] += 1
            if total <= horizons[i]:
                values[i] = total
            elif total > max_window:
                failures[i] = "window"
            elif iterations[i] > max_iterations:
                failures[i] = "iterations"
            else:
                horizons[i] = total
                next_active.append(i)
        active = next_active
    return values, iterations, failures


def solve_monotone_fixed_points_2d(
    seeds: Sequence[Sequence[float]],
    totals_many,
    totals_one,
    *,
    max_window: float,
    max_iterations: int,
    stop_row=None,
):
    """2-D masked Kleene iteration: an ``(S, Q)`` matrix of independent
    monotone fixed points advanced as one batch.

    Row ``r`` holds ``len(seeds[r])`` coordinates; cell ``(r, c)``
    starts from ``seeds[r][c]`` (a sound lower bound on its least fixed
    point) and advances through ``horizon <- total`` steps until
    ``total <= horizon``, exactly like the 1-D
    :func:`solve_monotone_fixed_points` — every cell iterates
    independently, so batching across rows never changes any cell's
    horizon sequence and the results stay bit-identical to per-row 1-D
    or cell-at-a-time scalar iteration.

    ``totals_many(cells, horizons)`` evaluates the operator for the
    given ``(row, col)`` cells at the given horizons and returns the
    totals (list or ndarray).  When it raises ``OverflowError`` the
    sweep falls back to ``totals_one(row, col, horizon)`` per cell so
    the offender can be isolated instead of poisoning the batch.

    ``stop_row(row, col, total)`` (optional) is checked on every fresh
    total *before* the convergence test; returning true settles the
    whole row — its remaining cells are masked out of all later sweeps
    (the Def. 10 early exit: one missed deadline decides the
    signature).  Cells of a stopped row keep whatever value/failure
    they had already reached.

    Returns ``(values, iterations, failures, stopped)``: three
    row-major 2-D lists shaped like ``seeds`` (``values[r][c]`` is
    ``None`` where unconverged, ``failures[r][c]`` is ``None`` or a
    string starting with ``"window"``, ``"iterations"`` or
    ``"overflow:"``) plus one ``stopped`` flag per row.
    """
    shape = [len(row) for row in seeds]
    values: List[List[Optional[float]]] = [[None] * width for width in shape]
    iterations: List[List[int]] = [[0] * width for width in shape]
    failures: List[List[Optional[str]]] = [[None] * width for width in shape]
    stopped: List[bool] = [False] * len(shape)
    horizons: List[List[float]] = [[float(seed) for seed in row] for row in seeds]
    active: List[Tuple[int, int]] = [
        (r, c) for r, width in enumerate(shape) for c in range(width)
    ]
    while active:
        probe = [horizons[r][c] for r, c in active]
        try:
            totals = totals_many(active, probe)
        except OverflowError:
            totals = []
            still = []
            for (r, c), horizon in zip(active, probe):
                try:
                    totals.append(totals_one(r, c, horizon))
                    still.append((r, c))
                except OverflowError as exc:
                    iterations[r][c] += 1
                    failures[r][c] = f"overflow: {exc}"
            active = still
        next_active = []
        for (r, c), total in zip(active, totals):
            if stopped[r]:
                continue
            total = float(total)
            iterations[r][c] += 1
            if stop_row is not None and stop_row(r, c, total):
                stopped[r] = True
            elif total <= horizons[r][c]:
                values[r][c] = total
            elif total > max_window:
                failures[r][c] = "window"
            elif iterations[r][c] > max_iterations:
                failures[r][c] = "iterations"
            else:
                horizons[r][c] = total
                next_active.append((r, c))
        active = [(r, c) for r, c in next_active if not stopped[r]]
    return values, iterations, failures, stopped
