"""Numeric kernel selection and shared array utilities.

The hot numeric loops of the library — staircase-curve evaluation
(:mod:`repro.arrivals.staircase`), the batched Theorem 1 Kleene
iterations (:mod:`repro.analysis.busy_window`) and the dense simplex
tableau (:mod:`repro.ilp.simplex`) — each have two interchangeable
implementations: a vectorized numpy one and a pure-Python reference.
This module owns the switch between them.

Selection is process-wide and resolved once, from the ``REPRO_KERNEL``
environment variable:

* ``auto`` (default, also the empty string): numpy when importable,
  pure Python otherwise;
* ``numpy``: force the vectorized kernel; raises
  :class:`KernelUnavailable` when numpy is not installed;
* ``python``: force the pure-Python reference even when numpy is
  available (the differential baseline of the kernel-parity tests).

:func:`set_kernel` (surfaced as ``--kernel`` on the analyzing CLI
subcommands) writes the choice back into ``os.environ`` so that batch
worker processes inherit it; both kernels are bit-identical by design,
so the switch never changes results, only wall-clock time.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy
except ImportError:  # pragma: no cover - the no-numpy CI leg
    _numpy = None

#: Whether numpy is importable in this process (independent of the
#: selected kernel).
HAVE_NUMPY = _numpy is not None

#: The two concrete kernels (``auto`` resolves to one of these).
KERNELS: Tuple[str, ...] = ("numpy", "python")

_ENV_VAR = "REPRO_KERNEL"

_active: Optional[str] = None


class KernelUnavailable(RuntimeError):
    """A kernel was requested that this interpreter cannot provide."""


def _resolve(name: Optional[str]) -> str:
    raw = ("auto" if name is None else str(name)).strip().lower()
    if raw in ("", "auto"):
        return "numpy" if HAVE_NUMPY else "python"
    if raw not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {('auto',) + KERNELS}"
        )
    if raw == "numpy" and not HAVE_NUMPY:
        raise KernelUnavailable(
            "REPRO_KERNEL=numpy requested but numpy is not importable; "
            "install the 'speed' extra or use --kernel python"
        )
    return raw


def kernel_name() -> str:
    """The active kernel (``"numpy"`` or ``"python"``), resolved from
    ``REPRO_KERNEL`` on first use."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get(_ENV_VAR))
    return _active


def numpy_or_none():
    """The numpy module when the numpy kernel is active, else ``None``.

    The idiom of every dual-implementation site::

        np = numpy_or_none()
        if np is None:
            ... pure-Python reference ...
        ... vectorized path ...
    """
    return _numpy if kernel_name() == "numpy" else None


def set_kernel(name: Optional[str]) -> str:
    """Select the kernel for this process and its future workers.

    ``name`` is ``"auto"``/``None``, ``"numpy"`` or ``"python"``.  The
    request is validated eagerly (``"numpy"`` without numpy raises
    :class:`KernelUnavailable`), installed process-wide, and mirrored
    into ``os.environ[REPRO_KERNEL]`` so that spawned batch workers
    resolve the identical choice.  Returns the resolved kernel name.
    """
    global _active
    resolved = _resolve(name)
    _active = resolved
    os.environ[_ENV_VAR] = resolved
    return resolved


@contextmanager
def using_kernel(name: Optional[str]) -> Iterator[str]:
    """Context manager: select ``name`` for the duration of the block,
    restoring the previous selection (and environment) afterwards."""
    global _active
    previous_active = _active
    previous_env = os.environ.get(_ENV_VAR)
    try:
        yield set_kernel(name)
    finally:
        _active = previous_active
        if previous_env is None:
            os.environ.pop(_ENV_VAR, None)
        else:
            os.environ[_ENV_VAR] = previous_env


# ----------------------------------------------------------------------
# Array utilities
# ----------------------------------------------------------------------
def solve_monotone_fixed_points(
    seeds: Sequence[float],
    totals_many,
    totals_one,
    *,
    max_window: float,
    max_iterations: int,
):
    """Batched Kleene iteration of a pointwise-monotone operator.

    Every coordinate ``i`` starts from ``seeds[i]`` (a sound lower
    bound on its least fixed point) and advances through
    ``horizon <- total`` steps until ``total <= horizon``; converged
    coordinates are masked out so one sweep of ``totals_many`` serves
    exactly the still-active ones.  Because the operator is monotone,
    every sound seed converges to exactly the least fixed point, so the
    returned values are bit-identical to a coordinate-at-a-time scalar
    iteration.

    ``totals_many(indices, horizons)`` evaluates the operator for the
    given coordinate indices at the given horizons and returns the
    totals (list or ndarray).  When it raises ``OverflowError`` the
    sweep falls back to ``totals_one(index, horizon)`` per coordinate
    so the offender can be isolated instead of poisoning the batch.

    Returns ``(values, iterations, failures)``: per-coordinate fixed
    points (``None`` where failed), evaluation counts, and failure
    reasons (``None``, or a string starting with ``"window"``,
    ``"iterations"`` or ``"overflow:"``).
    """
    n = len(seeds)
    values: List[Optional[float]] = [None] * n
    iterations = [0] * n
    failures: List[Optional[str]] = [None] * n
    active = list(range(n))
    horizons = [float(seed) for seed in seeds]
    while active:
        probe = [horizons[i] for i in active]
        try:
            totals = totals_many(active, probe)
        except OverflowError:
            totals = []
            still = []
            for i, horizon in zip(active, probe):
                try:
                    totals.append(totals_one(i, horizon))
                    still.append(i)
                except OverflowError as exc:
                    iterations[i] += 1
                    failures[i] = f"overflow: {exc}"
            active = still
        next_active = []
        for i, total in zip(active, totals):
            total = float(total)
            iterations[i] += 1
            if total <= horizons[i]:
                values[i] = total
            elif total > max_window:
                failures[i] = "window"
            elif iterations[i] > max_iterations:
                failures[i] = "iterations"
            else:
                horizons[i] = total
                next_active.append(i)
        active = next_active
    return values, iterations, failures


def solve_monotone_fixed_points_2d(
    seeds: Sequence[Sequence[float]],
    totals_many,
    totals_one,
    *,
    max_window: float,
    max_iterations: int,
    stop_row=None,
    cells_as_arrays: bool = False,
):
    """2-D masked Kleene iteration: an ``(S, Q)`` matrix of independent
    monotone fixed points advanced as one batch.

    Row ``r`` holds ``len(seeds[r])`` coordinates; cell ``(r, c)``
    starts from ``seeds[r][c]`` (a sound lower bound on its least fixed
    point) and advances through ``horizon <- total`` steps until
    ``total <= horizon``, exactly like the 1-D
    :func:`solve_monotone_fixed_points` — every cell iterates
    independently, so batching across rows never changes any cell's
    horizon sequence and the results stay bit-identical to per-row 1-D
    or cell-at-a-time scalar iteration.

    ``totals_many(cells, horizons)`` evaluates the operator for the
    given ``(row, col)`` cells at the given horizons and returns the
    totals (list or ndarray).  When it raises ``OverflowError`` the
    sweep falls back to ``totals_one(row, col, horizon)`` per cell so
    the offender can be isolated instead of poisoning the batch.

    ``stop_row(row, col, total)`` (optional) is checked on every fresh
    total *before* the convergence test; returning true settles the
    whole row — its remaining cells are masked out of all later sweeps
    (the Def. 10 early exit: one missed deadline decides the
    signature).  Cells of a stopped row keep whatever value/failure
    they had already reached.

    Returns ``(values, iterations, failures, stopped)``: three
    row-major 2-D lists shaped like ``seeds`` (``values[r][c]`` is
    ``None`` where unconverged, ``failures[r][c]`` is ``None`` or a
    string starting with ``"window"``, ``"iterations"`` or
    ``"overflow:"``) plus one ``stopped`` flag per row.

    ``cells_as_arrays=True`` (numpy kernel only) switches the driver's
    bookkeeping to flat int64/float64 arrays and changes the callback
    contracts: ``totals_many(rows, cols, horizons)`` and
    ``stop_row(rows, cols, totals)`` receive parallel ndarrays (and the
    latter returns a boolean ndarray), eliminating the per-cell tuple
    churn of every sweep.  Per-cell semantics — iteration counting,
    convergence and failure tests, the within-sweep row stop (cells of
    a row after its first stopping cell are skipped) — replay the
    legacy loop exactly, so values, iterations, failures and stop
    flags are identical cell for cell.
    """
    if cells_as_arrays:
        return _solve_2d_arrays(
            seeds,
            totals_many,
            totals_one,
            max_window=max_window,
            max_iterations=max_iterations,
            stop_row=stop_row,
        )
    shape = [len(row) for row in seeds]
    values: List[List[Optional[float]]] = [[None] * width for width in shape]
    iterations: List[List[int]] = [[0] * width for width in shape]
    failures: List[List[Optional[str]]] = [[None] * width for width in shape]
    stopped: List[bool] = [False] * len(shape)
    horizons: List[List[float]] = [[float(seed) for seed in row] for row in seeds]
    active: List[Tuple[int, int]] = [
        (r, c) for r, width in enumerate(shape) for c in range(width)
    ]
    while active:
        probe = [horizons[r][c] for r, c in active]
        try:
            totals = totals_many(active, probe)
        except OverflowError:
            totals = []
            still = []
            for (r, c), horizon in zip(active, probe):
                try:
                    totals.append(totals_one(r, c, horizon))
                    still.append((r, c))
                except OverflowError as exc:
                    iterations[r][c] += 1
                    failures[r][c] = f"overflow: {exc}"
            active = still
        next_active = []
        for (r, c), total in zip(active, totals):
            if stopped[r]:
                continue
            total = float(total)
            iterations[r][c] += 1
            if stop_row is not None and stop_row(r, c, total):
                stopped[r] = True
            elif total <= horizons[r][c]:
                values[r][c] = total
            elif total > max_window:
                failures[r][c] = "window"
            elif iterations[r][c] > max_iterations:
                failures[r][c] = "iterations"
            else:
                horizons[r][c] = total
                next_active.append((r, c))
        active = [(r, c) for r, c in next_active if not stopped[r]]
    return values, iterations, failures, stopped


def _solve_2d_arrays(
    seeds,
    totals_many,
    totals_one,
    *,
    max_window: float,
    max_iterations: int,
    stop_row=None,
):
    """Array-cells backend of :func:`solve_monotone_fixed_points_2d`.

    The active set lives as parallel ``rows`` / ``cols`` / ``horizons``
    arrays plus a flat cell id (``offset[row] + col``); every sweep is
    a handful of boolean masks over those arrays instead of a Python
    loop over ``(row, col)`` tuples.
    """
    np = numpy_or_none()
    if np is None:
        raise KernelUnavailable(
            "cells_as_arrays=True requires the numpy kernel"
        )
    shape = [len(row) for row in seeds]
    num_rows = len(shape)
    offsets: List[int] = []
    running = 0
    for width in shape:
        offsets.append(running)
        running += width
    total_cells = running
    values_flat = np.full(total_cells, np.nan)
    iter_flat = np.zeros(total_cells, dtype=np.int64)
    failures_flat: List[Optional[str]] = [None] * total_cells
    stopped = np.zeros(num_rows, dtype=bool)

    rows = np.repeat(np.arange(num_rows, dtype=np.int64), shape)
    cols = np.concatenate(
        [np.arange(width, dtype=np.int64) for width in shape]
    ) if total_cells else np.empty(0, dtype=np.int64)
    ids = np.asarray(offsets, dtype=np.int64)[rows] + cols
    horizons = np.asarray(
        [float(seed) for row in seeds for seed in row], dtype=np.float64
    )

    while rows.size:
        try:
            totals = totals_many(rows, cols, horizons)
        except OverflowError:
            keep_pos: List[int] = []
            fallback: List[float] = []
            for pos in range(rows.size):
                try:
                    fallback.append(
                        totals_one(
                            int(rows[pos]), int(cols[pos]), float(horizons[pos])
                        )
                    )
                    keep_pos.append(pos)
                except OverflowError as exc:
                    iter_flat[ids[pos]] += 1
                    failures_flat[ids[pos]] = f"overflow: {exc}"
            keep = np.asarray(keep_pos, dtype=np.int64)
            rows, cols, ids = rows[keep], cols[keep], ids[keep]
            horizons = horizons[keep]
            totals = fallback
            if not rows.size:
                break
        totals = np.asarray(totals, dtype=np.float64)
        n = rows.size
        processed = np.ones(n, dtype=bool)
        stop_now = np.zeros(n, dtype=bool)
        if stop_row is not None:
            hits = np.asarray(stop_row(rows, cols, totals), dtype=bool)
            if hits.any():
                # Replay the legacy within-sweep order: the first
                # stopping cell of a row settles it and every later
                # cell of that row in this sweep is skipped untouched.
                first = np.full(num_rows, n, dtype=np.int64)
                np.minimum.at(first, rows[hits], np.flatnonzero(hits))
                processed = np.arange(n) <= first[rows]
                stop_now = hits & processed
                stopped[rows[stop_now]] = True
        iter_flat[ids[processed]] += 1
        eligible = processed & ~stop_now
        converged = eligible & (totals <= horizons)
        values_flat[ids[converged]] = totals[converged]
        rest = eligible & ~converged
        window = rest & (totals > max_window)
        rest &= ~window
        exhausted = rest & (iter_flat[ids] > max_iterations)
        for pos in np.flatnonzero(window).tolist():
            failures_flat[ids[pos]] = "window"
        for pos in np.flatnonzero(exhausted).tolist():
            failures_flat[ids[pos]] = "iterations"
        keep = rest & ~exhausted & ~stopped[rows]
        horizons = totals[keep]
        rows, cols, ids = rows[keep], cols[keep], ids[keep]

    values = []
    iterations = []
    failures = []
    for r, width in enumerate(shape):
        lo = offsets[r]
        row_values = values_flat[lo : lo + width].tolist()
        values.append([None if v != v else v for v in row_values])
        iterations.append(iter_flat[lo : lo + width].tolist())
        failures.append(failures_flat[lo : lo + width])
    return values, iterations, failures, stopped.tolist()
