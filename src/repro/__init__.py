"""repro: TWCA for task chains (DATE 2017 reproduction).

Bounding deadline misses in weakly-hard real-time systems with task
dependencies: end-to-end latency analysis and deadline miss models for
uniprocessor SPP systems of synchronous/asynchronous task chains.

Quickstart::

    from repro import (SystemBuilder, PeriodicModel, SporadicModel,
                       analyze_latency, analyze_twca)

    system = (SystemBuilder("demo")
              .chain("app", PeriodicModel(100), deadline=100)
              .task("sense", priority=3, wcet=10)
              .task("act", priority=1, wcet=20)
              .chain("isr", SporadicModel(500), overload=True)
              .task("irq", priority=4, wcet=30)
              .build())
    result = analyze_twca(system, system["app"])
    print(result.status, result.dmm(10))
"""

from .analysis import (ActiveSegment, AnalysisError, BusyWindowDivergence,
                       ChainTwcaResult, Combination, DeadlineMissModel,
                       GuaranteeStatus, LatencyResult, NotAnalyzable,
                       Segment, active_segments, analyze_all,
                       analyze_latency, analyze_twca, busy_time,
                       critical_segment, header_segment, is_deferred,
                       segments)
from .arrivals import (ArrivalCurve, EventModel, PeriodicModel,
                       SporadicBurstModel, SporadicModel, StaircaseKernel)
from .kernel import kernel_name, set_kernel, using_kernel
from .model import ChainKind, System, SystemBuilder, Task, TaskChain
from .model.serialization import load_system_file
from .runner import (AnalysisCache, AnalysisJob, BatchExecutionError,
                     BatchResult, BatchRunner, JobResult)
from .service import (AnalysisOptions, AnalysisRequest, AnalysisResponse,
                      AnalysisService, RequestError, ServiceClient,
                      ServiceError, UnknownSystemError)
from . import api

__version__ = "1.3.0"

__all__ = [
    "__version__",
    # the stable public API module
    "api",
    # model
    "Task", "TaskChain", "ChainKind", "System", "SystemBuilder",
    "load_system_file",
    # arrivals
    "EventModel", "PeriodicModel", "SporadicModel", "SporadicBurstModel",
    "ArrivalCurve", "StaircaseKernel",
    # numeric kernel
    "kernel_name", "set_kernel", "using_kernel",
    # analysis
    "AnalysisError", "BusyWindowDivergence", "NotAnalyzable",
    "Segment", "ActiveSegment", "segments", "active_segments",
    "critical_segment", "header_segment", "is_deferred", "busy_time",
    "LatencyResult", "analyze_latency", "Combination",
    "GuaranteeStatus", "ChainTwcaResult", "analyze_twca", "analyze_all",
    "DeadlineMissModel",
    # runner
    "AnalysisCache", "AnalysisJob", "JobResult", "BatchRunner",
    "BatchResult", "BatchExecutionError",
    # service
    "AnalysisOptions", "AnalysisRequest", "AnalysisResponse",
    "AnalysisService", "RequestError", "ServiceClient", "ServiceError",
    "UnknownSystemError",
]
