"""Periodic and periodic-with-jitter activation models."""

from __future__ import annotations

import math

from .base import EventModel


class PeriodicModel(EventModel):
    """Events every ``period`` time units, released with up to ``jitter``
    deviation, but never closer than ``min_distance``.

    This is the classical three-parameter (P, J, d) event model of
    Compositional Performance Analysis.  With ``jitter == 0`` it is a
    strictly periodic stream; with ``jitter > 0`` events may bunch up to a
    spacing of ``max(period - jitter, min_distance)``.

    Curves (all standard):

    * ``eta_plus(dt)  = min(ceil((dt + J) / P), ceil(dt / d))``
    * ``delta_minus(k) = max((k - 1) * P - J, (k - 1) * d)``
    * ``delta_plus(k)  = (k - 1) * P + J``
    """

    def __init__(
        self, period: float, jitter: float = 0.0, min_distance: float = 0.0
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if min_distance < 0:
            raise ValueError(f"min_distance must be non-negative, got {min_distance}")
        if min_distance > period:
            raise ValueError(
                f"min_distance cannot exceed the period ({min_distance} > {period})"
            )
        if jitter >= period and min_distance == 0:
            raise ValueError(
                "jitter >= period requires a positive min_distance to keep "
                "eta_plus finite over small windows"
            )
        self.period = period
        self.jitter = jitter
        self.min_distance = min_distance

    # -- closed forms ---------------------------------------------------
    def delta_minus(self, k: int) -> float:
        if k <= 1:
            return 0.0 if isinstance(self.period, float) else 0
        spread = (k - 1) * self.period - self.jitter
        floor = (k - 1) * self.min_distance
        return max(spread, floor, 0)

    def delta_plus(self, k: int) -> float:
        if k <= 1:
            return 0.0 if isinstance(self.period, float) else 0
        return (k - 1) * self.period + self.jitter

    def eta_plus(self, dt: float) -> int:
        if dt <= 0:
            return 0
        if math.isinf(dt):
            raise OverflowError("eta_plus(inf) is unbounded for a periodic model")
        bound = math.ceil((dt + self.jitter) / self.period)
        if self.min_distance > 0:
            bound = min(bound, math.ceil(dt / self.min_distance))
        return int(bound)

    def eta_minus(self, dt: float) -> int:
        if dt < 0:
            return 0
        return max(0, int(math.floor((dt - self.jitter) / self.period)))

    def rate(self) -> float:
        return 1.0 / self.period

    def __repr__(self) -> str:
        parts = [f"period={self.period!r}"]
        if self.jitter:
            parts.append(f"jitter={self.jitter!r}")
        if self.min_distance:
            parts.append(f"min_distance={self.min_distance!r}")
        return f"PeriodicModel({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PeriodicModel)
            and self.period == other.period
            and self.jitter == other.jitter
            and self.min_distance == other.min_distance
        )

    def __hash__(self) -> int:
        return hash((PeriodicModel, self.period, self.jitter, self.min_distance))
