"""Periodic and periodic-with-jitter activation models."""

from __future__ import annotations

import math
from typing import Optional

from ..kernel import numpy_or_none
from .base import EventModel
from .staircase import (
    COMPILE_LIMIT,
    StaircaseKernel,
    integral_kernel,
    prefix_points,
)


class PeriodicModel(EventModel):
    """Events every ``period`` time units, released with up to ``jitter``
    deviation, but never closer than ``min_distance``.

    This is the classical three-parameter (P, J, d) event model of
    Compositional Performance Analysis.  With ``jitter == 0`` it is a
    strictly periodic stream; with ``jitter > 0`` events may bunch up to a
    spacing of ``max(period - jitter, min_distance)``.

    Curves (all standard):

    * ``eta_plus(dt)  = min(ceil((dt + J) / P), ceil(dt / d))``
    * ``delta_minus(k) = max((k - 1) * P - J, (k - 1) * d)``
    * ``delta_plus(k)  = (k - 1) * P + J``
    """

    def __init__(
        self, period: float, jitter: float = 0.0, min_distance: float = 0.0
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if min_distance < 0:
            raise ValueError(f"min_distance must be non-negative, got {min_distance}")
        if min_distance > period:
            raise ValueError(
                f"min_distance cannot exceed the period ({min_distance} > {period})"
            )
        if jitter >= period and min_distance == 0:
            raise ValueError(
                "jitter >= period requires a positive min_distance to keep "
                "eta_plus finite over small windows"
            )
        self.period = period
        self.jitter = jitter
        self.min_distance = min_distance

    # -- closed forms ---------------------------------------------------
    def delta_minus(self, k: int) -> float:
        if k <= 1:
            return 0.0 if isinstance(self.period, float) else 0
        spread = (k - 1) * self.period - self.jitter
        floor = (k - 1) * self.min_distance
        return max(spread, floor, 0)

    def delta_plus(self, k: int) -> float:
        if k <= 1:
            return 0.0 if isinstance(self.period, float) else 0
        return (k - 1) * self.period + self.jitter

    def delta_plus_many(self, ks):
        np = numpy_or_none()
        if np is None:
            return [self.delta_plus(int(k)) for k in ks]
        arr = np.asarray(ks, dtype=np.int64)
        # Same closed form and operation order as delta_plus, evaluated
        # elementwise, so the values are bit-identical to the scalar
        # loop for float parameters (and numerically equal for ints).
        out = (arr - 1) * self.period + self.jitter
        return np.where(arr <= 1, 0.0, out)

    def _compile_kernel(self) -> Optional[StaircaseKernel]:
        """Jittered streams bunch events until the ``(k-1)(P-d) >= J``
        regime, after which the staircase climbs by one period per
        event: the breakpoint prefix covers the bunching, the tail is
        ``(1 event, P)``.

        With ``jitter == 0`` (or ``period == min_distance``) the tail
        expression is float-identical to :meth:`delta_minus`, so the
        kernel is exact for any parameters.  A jittered prefix is only
        exact when the staircase is integral — the kernel's
        ``breaks[L-1] + c * P`` associates differently from the model's
        ``(k-1) * P - J`` and can drift an ulp across a boundary
        otherwise (an *under*-count there would be unsound), so
        non-integral jittered models keep the generic search over the
        authoritative ``delta_minus``."""
        period, jitter, floor = self.period, self.jitter, self.min_distance
        if jitter == 0 or period <= floor:
            return StaircaseKernel(prefix_points(self, 2), 1, period)
        length = 2 + math.ceil(jitter / (period - floor))
        if length > COMPILE_LIMIT:
            return None
        kernel = StaircaseKernel(prefix_points(self, length), 1, period)
        if not integral_kernel(kernel):
            return None
        return kernel

    def _eta_plus_unbounded(self) -> int:
        raise OverflowError("eta_plus(inf) is unbounded for a periodic model")

    def eta_minus(self, dt: float) -> int:
        if dt < 0:
            return 0
        return max(0, int(math.floor((dt - self.jitter) / self.period)))

    def rate(self) -> float:
        return 1.0 / self.period

    def __repr__(self) -> str:
        parts = [f"period={self.period!r}"]
        if self.jitter:
            parts.append(f"jitter={self.jitter!r}")
        if self.min_distance:
            parts.append(f"min_distance={self.min_distance!r}")
        return f"PeriodicModel({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PeriodicModel)
            and self.period == other.period
            and self.jitter == other.jitter
            and self.min_distance == other.min_distance
        )

    def __hash__(self) -> int:
        return hash((PeriodicModel, self.period, self.jitter, self.min_distance))
