"""Explicit staircase arrival curves.

Industrial activation patterns (the paper's overload chains come from
interrupt service routines and recovery chains observed at Thales) are
rarely captured by two-parameter models.  :class:`ArrivalCurve` stores the
``delta_minus`` staircase point-wise and extrapolates beyond the stored
prefix, which is exactly what trace-derived curves look like in CPA tools.
"""

from __future__ import annotations

import bisect
import math
from typing import Optional, Sequence

from .base import EventModel

#: Entry bound of the per-curve ``eta_plus`` memo table; reaching it
#: clears the table (analyses probe a bounded set of windows, so this
#: only guards against pathological callers).
ETA_MEMO_LIMIT = 65_536


class ArrivalCurve(EventModel):
    """Event model given by an explicit ``delta_minus`` prefix.

    Parameters
    ----------
    delta_min_points:
        ``delta_min_points[i]`` is ``delta_minus(i)``; the first two
        entries must be 0 (``delta_minus(0) == delta_minus(1) == 0``) and
        the sequence must be non-decreasing.
    tail_distance:
        Extrapolation spacing: for ``k`` beyond the stored prefix,
        ``delta_minus(k) = delta_minus(k_max) + (k - k_max) * tail_distance``.
        Defaults to the last increment of the prefix (or the largest
        increment if the last one is 0).
    delta_max_points:
        Optional explicit ``delta_plus`` prefix.  When omitted the model
        is sporadic-like (``delta_plus == inf`` for ``k >= 2``).
    """

    def __init__(
        self,
        delta_min_points: Sequence[float],
        tail_distance: Optional[float] = None,
        delta_max_points: Optional[Sequence[float]] = None,
    ):
        points = list(delta_min_points)
        if len(points) < 2:
            raise ValueError("need at least delta_minus(0) and delta_minus(1)")
        if points[0] != 0 or points[1] != 0:
            raise ValueError("delta_minus(0) and delta_minus(1) must be 0")
        for i in range(1, len(points)):
            if points[i] < points[i - 1]:
                raise ValueError(f"delta_minus must be non-decreasing (index {i})")
        self._points = points
        if tail_distance is None:
            if len(points) >= 3:
                tail_distance = points[-1] - points[-2]
                if tail_distance == 0:
                    tail_distance = max(
                        points[i] - points[i - 1] for i in range(1, len(points))
                    )
            else:
                tail_distance = 0
        if tail_distance < 0:
            raise ValueError("tail_distance must be non-negative")
        if tail_distance == 0 and len(points) > 2:
            # A zero tail would let eta_plus explode on any finite window.
            raise ValueError(
                "tail_distance of 0 makes the curve infinitely dense; "
                "provide a positive tail_distance"
            )
        self.tail_distance = tail_distance

        self._max_points = None
        if delta_max_points is not None:
            maxima = list(delta_max_points)
            if len(maxima) < 2 or maxima[0] != 0 or maxima[1] != 0:
                raise ValueError("delta_plus(0) and delta_plus(1) must be 0")
            for i in range(1, len(maxima)):
                if maxima[i] < maxima[i - 1]:
                    raise ValueError(
                        f"delta_plus must be non-decreasing (index {i})"
                    )
            for k in range(min(len(points), len(maxima))):
                if maxima[k] < points[k]:
                    raise ValueError(f"delta_plus({k}) < delta_minus({k})")
            self._max_points = maxima
        self._eta_memo: dict = {}

    @classmethod
    def from_trace(
        cls,
        timestamps: Sequence[float],
        tail_distance: Optional[float] = None,
    ) -> "ArrivalCurve":
        """Derive a conservative curve from an observed activation trace.

        ``delta_minus(k)`` becomes the *minimum* observed span over all
        windows of ``k`` consecutive timestamps, ``delta_plus(k)`` the
        maximum observed span — the standard trace-to-curve abstraction.
        """
        ts = sorted(timestamps)
        if len(ts) < 2:
            raise ValueError("need at least two timestamps")
        n = len(ts)
        mins = [0, 0]
        maxs = [0, 0]
        for k in range(2, n + 1):
            spans = [ts[i + k - 1] - ts[i] for i in range(n - k + 1)]
            mins.append(min(spans))
            maxs.append(max(spans))
        return cls(mins, tail_distance=tail_distance, delta_max_points=maxs)

    def delta_minus(self, k: int) -> float:
        if k <= 1:
            return 0
        if k < len(self._points):
            return self._points[k]
        extra = k - (len(self._points) - 1)
        return self._points[-1] + extra * self.tail_distance

    def delta_plus(self, k: int) -> float:
        if k <= 1:
            return 0
        if self._max_points is None:
            return math.inf
        if k < len(self._max_points):
            return self._max_points[k]
        return math.inf

    def eta_plus(self, dt: float) -> int:
        """Maximum events in any window of length ``dt``.

        Overrides the generic galloping pseudo-inverse with a direct
        bisect over the stored staircase prefix (plus tail arithmetic
        beyond it), memoized per window in an evaluation table — the
        busy-window fixed points and the Eq. (3) re-checks probe the
        same handful of windows over and over, and previously each probe
        re-walked the prefix logarithmically through ``delta_minus``.
        The result is definitionally identical to the base class:
        ``max{k : delta_minus(k) < dt}`` for ``dt > 0``.
        """
        if dt <= 0:
            return 0
        if math.isinf(dt):
            return self._eta_plus_unbounded()
        memo = self._eta_memo
        hit = memo.get(dt)
        if hit is not None:
            return hit
        points = self._points
        if dt <= points[-1]:
            # Largest k with points[k] < dt; extrapolated values are at
            # or above points[-1] >= dt, so the prefix answer is final.
            k = bisect.bisect_left(points, dt) - 1
        else:
            tail = self.tail_distance
            if tail <= 0:
                raise OverflowError(self._too_dense(dt))
            last = len(points) - 1
            k = last + int((dt - points[-1]) // tail)
            # Float-robust fix-up onto the exact staircase boundary
            # (the division estimate is off by at most a step or two):
            # delta_minus(k) < dt <= delta_minus(k + 1).
            while k > 1 and self.delta_minus(k) >= dt:
                k -= 1
            while self.delta_minus(k + 1) < dt and k <= self.MAX_EVENTS:
                k += 1
            if k > self.MAX_EVENTS:
                raise OverflowError(self._too_dense(dt))
        if len(memo) >= ETA_MEMO_LIMIT:
            memo.clear()
        memo[dt] = k
        return k

    def _too_dense(self, dt: float) -> str:
        return (
            f"eta_plus({dt!r}) exceeds {self.MAX_EVENTS} events; "
            "the event model is too dense for this window"
        )

    def rate(self) -> float:
        if self.tail_distance <= 0:
            return math.inf
        return 1.0 / self.tail_distance

    def __repr__(self) -> str:
        preview = self._points[:6]
        suffix = ", ..." if len(self._points) > 6 else ""
        return (
            f"ArrivalCurve(delta_min={preview}{suffix}, "
            f"tail_distance={self.tail_distance!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrivalCurve)
            and self._points == other._points
            and self.tail_distance == other.tail_distance
            and self._max_points == other._max_points
        )

    def __hash__(self) -> int:
        return hash(
            (
                ArrivalCurve,
                tuple(self._points),
                self.tail_distance,
                None if self._max_points is None else tuple(self._max_points),
            )
        )
