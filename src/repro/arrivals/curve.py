"""Explicit staircase arrival curves.

Industrial activation patterns (the paper's overload chains come from
interrupt service routines and recovery chains observed at Thales) are
rarely captured by two-parameter models.  :class:`ArrivalCurve` stores the
``delta_minus`` staircase point-wise and extrapolates beyond the stored
prefix, which is exactly what trace-derived curves look like in CPA tools.
``eta_plus`` (scalar and batched) is served by the shared
:class:`~repro.arrivals.staircase.StaircaseKernel` compiled directly from
the stored prefix.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from .base import EventModel
from .staircase import StaircaseKernel


class ArrivalCurve(EventModel):
    """Event model given by an explicit ``delta_minus`` prefix.

    Parameters
    ----------
    delta_min_points:
        ``delta_min_points[i]`` is ``delta_minus(i)``; the first two
        entries must be 0 (``delta_minus(0) == delta_minus(1) == 0``) and
        the sequence must be non-decreasing.
    tail_distance:
        Extrapolation spacing: for ``k`` beyond the stored prefix,
        ``delta_minus(k) = delta_minus(k_max) + (k - k_max) * tail_distance``.
        Defaults to the last increment of the prefix (or the largest
        increment if the last one is 0).
    delta_max_points:
        Optional explicit ``delta_plus`` prefix.  When omitted the model
        is sporadic-like (``delta_plus == inf`` for ``k >= 2``).
    """

    def __init__(
        self,
        delta_min_points: Sequence[float],
        tail_distance: Optional[float] = None,
        delta_max_points: Optional[Sequence[float]] = None,
    ):
        points = list(delta_min_points)
        if len(points) < 2:
            raise ValueError("need at least delta_minus(0) and delta_minus(1)")
        if points[0] != 0 or points[1] != 0:
            raise ValueError("delta_minus(0) and delta_minus(1) must be 0")
        for i in range(1, len(points)):
            if points[i] < points[i - 1]:
                raise ValueError(f"delta_minus must be non-decreasing (index {i})")
        self._points = points
        if tail_distance is None:
            if len(points) >= 3:
                tail_distance = points[-1] - points[-2]
                if tail_distance == 0:
                    tail_distance = max(
                        points[i] - points[i - 1] for i in range(1, len(points))
                    )
            else:
                tail_distance = 0
        if tail_distance < 0:
            raise ValueError("tail_distance must be non-negative")
        if tail_distance == 0 and len(points) > 2:
            # A zero tail would let eta_plus explode on any finite window.
            raise ValueError(
                "tail_distance of 0 makes the curve infinitely dense; "
                "provide a positive tail_distance"
            )
        self.tail_distance = tail_distance

        self._max_points = None
        if delta_max_points is not None:
            maxima = list(delta_max_points)
            if len(maxima) < 2 or maxima[0] != 0 or maxima[1] != 0:
                raise ValueError("delta_plus(0) and delta_plus(1) must be 0")
            for i in range(1, len(maxima)):
                if maxima[i] < maxima[i - 1]:
                    raise ValueError(
                        f"delta_plus must be non-decreasing (index {i})"
                    )
            for k in range(min(len(points), len(maxima))):
                if maxima[k] < points[k]:
                    raise ValueError(f"delta_plus({k}) < delta_minus({k})")
            self._max_points = maxima

    @classmethod
    def from_trace(
        cls,
        timestamps: Sequence[float],
        tail_distance: Optional[float] = None,
    ) -> "ArrivalCurve":
        """Derive a conservative curve from an observed activation trace.

        ``delta_minus(k)`` becomes the *minimum* observed span over all
        windows of ``k`` consecutive timestamps, ``delta_plus(k)`` the
        maximum observed span — the standard trace-to-curve abstraction.
        """
        ts = sorted(timestamps)
        if len(ts) < 2:
            raise ValueError("need at least two timestamps")
        n = len(ts)
        mins = [0, 0]
        maxs = [0, 0]
        for k in range(2, n + 1):
            spans = [ts[i + k - 1] - ts[i] for i in range(n - k + 1)]
            mins.append(min(spans))
            maxs.append(max(spans))
        return cls(mins, tail_distance=tail_distance, delta_max_points=maxs)

    def delta_minus(self, k: int) -> float:
        if k <= 1:
            return 0
        if k < len(self._points):
            return self._points[k]
        extra = k - (len(self._points) - 1)
        return self._points[-1] + extra * self.tail_distance

    def delta_plus(self, k: int) -> float:
        if k <= 1:
            return 0
        if self._max_points is None:
            return math.inf
        if k < len(self._max_points):
            return self._max_points[k]
        return math.inf

    def _compile_kernel(self) -> StaircaseKernel:
        """The stored prefix *is* the breakpoint array; the tail adds
        ``tail_distance`` per event.  The kernel memoizes the probed
        windows — the busy-window fixed points and the Eq. (3) re-checks
        evaluate the same handful over and over."""
        return StaircaseKernel(
            self._points, 1, self.tail_distance, max_events=self.MAX_EVENTS
        )

    def rate(self) -> float:
        if self.tail_distance <= 0:
            return math.inf
        return 1.0 / self.tail_distance

    def __repr__(self) -> str:
        preview = self._points[:6]
        suffix = ", ..." if len(self._points) > 6 else ""
        return (
            f"ArrivalCurve(delta_min={preview}{suffix}, "
            f"tail_distance={self.tail_distance!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrivalCurve)
            and self._points == other._points
            and self.tail_distance == other.tail_distance
            and self._max_points == other._max_points
        )

    def __hash__(self) -> int:
        return hash(
            (
                ArrivalCurve,
                tuple(self._points),
                self.tail_distance,
                None if self._max_points is None else tuple(self._max_points),
            )
        )
