"""Activation models (arrival curves) for task chains.

Public surface:

* :class:`EventModel` — abstract base (``eta_plus``, ``eta_minus``,
  ``delta_minus``, ``delta_plus``, ``rate``, ``validate``)
* :class:`PeriodicModel` — period / jitter / min-distance
* :class:`SporadicModel` — minimum inter-arrival only
* :class:`SporadicBurstModel` — bursty two-level sporadic
* :class:`ArrivalCurve` — explicit staircase (trace-derived) curves
* :class:`StaircaseKernel` — compiled breakpoint/value staircase behind
  every model's ``eta_plus`` / ``eta_plus_many``
* :mod:`repro.arrivals.algebra` — curve combinators and duality checks
"""

from .base import EventModel
from .curve import ArrivalCurve
from .periodic import PeriodicModel
from .sporadic import SporadicBurstModel, SporadicModel
from .staircase import StaircaseKernel

__all__ = [
    "EventModel",
    "PeriodicModel",
    "SporadicModel",
    "SporadicBurstModel",
    "ArrivalCurve",
    "StaircaseKernel",
]
