"""Compiled staircase form of ``delta_minus`` curves.

Every event model of the library (and of CPA practice) has an
*eventually periodic* minimum-distance staircase: an explicit breakpoint
prefix ``delta_minus(0..L-1)`` followed by a repeating tail that adds
``tail_span`` time units every ``tail_events`` events::

    delta_minus(k) = breaks[k - c * e] + c * s        for k >= L,
    c = ceil((k - L + 1) / e),  e = tail_events,  s = tail_span

:class:`StaircaseKernel` stores exactly that pair of arrays and answers
``eta_plus`` — the pseudo-inverse ``max {k : delta_minus(k) < dt}`` —
either for one window (:meth:`eta_plus`, a ``bisect`` over the prefix
plus tail arithmetic, memoized) or for a whole vector of windows
(:meth:`eta_plus_many`, a single ``numpy.searchsorted`` under the numpy
kernel).  Both paths run the identical float64 arithmetic and finish
with an exact fix-up against :meth:`delta`, so scalar and batched
answers are bit-identical under either ``REPRO_KERNEL`` setting.

The kernel is closed under the curve algebra: :meth:`scaled` stretches
time, :func:`merge_tightest` builds the compiled form of the pointwise
``max`` of two staircases (the ``delta_minus`` of
:func:`repro.arrivals.algebra.tightest`).
"""

from __future__ import annotations

import bisect
import math
from typing import List, Optional, Sequence

from ..kernel import numpy_or_none

#: Entry bound of the per-kernel scalar ``eta_plus`` memo table;
#: reaching it clears the table (analyses probe a bounded set of
#: windows, so this only guards against pathological callers).
ETA_MEMO_LIMIT = 65_536

#: Breakpoint budget of algebra closures (:func:`merge_tightest`) and
#: long jitter prefixes; beyond it compilation returns ``None`` and the
#: owning model falls back to the generic galloping search.
COMPILE_LIMIT = 65_536


class StaircaseKernel:
    """Breakpoint/value arrays of one eventually periodic staircase.

    Parameters
    ----------
    breaks:
        ``breaks[k] == delta_minus(k)`` for ``k in [0, L)``; the first
        two entries must be 0 and the sequence non-decreasing.
    tail_events, tail_span:
        The periodic tail: beyond the prefix, every ``tail_events``
        further events cost ``tail_span`` further time units.
        ``tail_span == 0`` marks a curve with no usable tail (any window
        past the prefix overflows as "too dense").
    max_events:
        Safety bound on any ``eta_plus`` answer, mirroring
        :attr:`repro.arrivals.base.EventModel.MAX_EVENTS`.
    """

    __slots__ = (
        "breaks",
        "tail_events",
        "tail_span",
        "max_events",
        "_memo",
        "_np_breaks",
    )

    def __init__(
        self,
        breaks: Sequence[float],
        tail_events: int = 1,
        tail_span: float = 0.0,
        *,
        max_events: int = 10**7,
    ):
        points = list(breaks)
        if len(points) < 2:
            raise ValueError("need at least delta_minus(0) and delta_minus(1)")
        if points[0] != 0 or points[1] != 0:
            raise ValueError("delta_minus(0) and delta_minus(1) must be 0")
        for i in range(1, len(points)):
            if points[i] < points[i - 1]:
                raise ValueError(f"breaks must be non-decreasing (index {i})")
        if not 1 <= tail_events <= len(points) - 1:
            raise ValueError(
                f"tail_events must lie in [1, {len(points) - 1}], "
                f"got {tail_events}"
            )
        if tail_span < 0:
            raise ValueError("tail_span must be non-negative")
        self.breaks = points
        self.tail_events = int(tail_events)
        self.tail_span = tail_span
        self.max_events = max_events
        self._memo: dict = {}
        self._np_breaks = None

    # ------------------------------------------------------------------
    # The staircase itself
    # ------------------------------------------------------------------
    def delta(self, k: int) -> float:
        """``delta_minus(k)`` as defined by the compiled arrays."""
        breaks = self.breaks
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if k < len(breaks):
            return breaks[k]
        e = self.tail_events
        cycles = -(-(k - len(breaks) + 1) // e)
        return breaks[k - cycles * e] + cycles * self.tail_span

    def delta_many(self, ks: Sequence[int]) -> Sequence[float]:
        """``delta`` over a whole vector of event counts.

        Under the numpy kernel this is one gather over the breakpoint
        array plus vectorized tail arithmetic — the identical float64
        operations as :meth:`delta`, so batched activation streams are
        bit-identical to generating them one event at a time.  Under
        the pure-Python kernel it loops the scalar path (the
        differential reference).  Returns a ``float64`` ndarray
        (numpy) or a list (python).
        """
        np = numpy_or_none()
        if np is None:
            return [self.delta(int(k)) for k in ks]
        arr = np.asarray(ks, dtype=np.int64)
        if arr.size and int(arr.min()) < 0:
            raise ValueError("k must be non-negative")
        if self._np_breaks is None:
            self._np_breaks = np.asarray(self.breaks, dtype=np.float64)
        breaks = self._np_breaks
        length = len(self.breaks)
        out = np.empty(arr.shape, dtype=np.float64)
        prefix = arr < length
        if prefix.any():
            out[prefix] = breaks[arr[prefix]]
        beyond = ~prefix
        if beyond.any():
            e = self.tail_events
            k = arr[beyond]
            cycles = -(-(k - length + 1) // e)
            out[beyond] = breaks[k - cycles * e] + cycles * self.tail_span
        return out

    def rate(self) -> float:
        """Long-run event rate of the tail (events per time unit)."""
        if self.tail_span <= 0:
            return math.inf
        return self.tail_events / self.tail_span

    # ------------------------------------------------------------------
    # eta_plus: scalar path
    # ------------------------------------------------------------------
    def eta_plus(self, dt: float) -> int:
        """``max {k : delta_minus(k) < dt}`` for one window ``dt``.

        Memoized per window: the busy-window fixed points and the
        Eq. (3) re-checks probe the same handful of windows over and
        over.
        """
        if dt <= 0:
            return 0
        if math.isinf(dt):
            raise OverflowError("eta_plus(inf) is unbounded for this staircase")
        memo = self._memo
        hit = memo.get(dt)
        if hit is not None:
            return hit
        k = self._eta_one(dt)
        if len(memo) >= ETA_MEMO_LIMIT:
            memo.clear()
        memo[dt] = k
        return k

    def _eta_one(self, dt: float) -> int:
        breaks = self.breaks
        last = breaks[-1]
        if dt <= last:
            # Largest k with breaks[k] < dt; tail values are at or above
            # breaks[-1] >= dt, so the prefix answer is final.
            return bisect.bisect_left(breaks, dt) - 1
        s = self.tail_span
        if s <= 0:
            raise OverflowError(self._too_dense(dt))
        e = self.tail_events
        length = len(breaks)
        # Cycle c whose value window (last + (c-1)s, last + cs] holds dt,
        # with a float-robust fix-up of the division estimate.
        cycles = math.ceil((dt - last) / s)
        while cycles > 1 and last + (cycles - 1) * s >= dt:
            cycles -= 1
        while last + cycles * s < dt:
            cycles += 1
        k = (length - 1) + (cycles - 1) * e
        # Count the events of cycle c that still fit strictly below dt.
        for j in range(length - e, length):
            if breaks[j] + cycles * s < dt:
                k += 1
            else:
                break
        if k > self.max_events:
            raise OverflowError(self._too_dense(dt))
        return k

    # ------------------------------------------------------------------
    # eta_plus: batched path
    # ------------------------------------------------------------------
    def eta_plus_many(self, dts: Sequence[float]) -> Sequence[int]:
        """``eta_plus`` over a whole vector of windows.

        Under the numpy kernel this is one ``searchsorted`` over the
        breakpoint array plus vectorized tail arithmetic — the same
        float64 operations as the scalar path, so the answers are
        bit-identical to calling :meth:`eta_plus` per window.  Under the
        pure-Python kernel it loops the scalar path.  The result is an
        ``int64`` ndarray (numpy) or a list of ints (python).
        """
        np = numpy_or_none()
        if np is None:
            return [self.eta_plus(dt) for dt in dts]
        arr = np.asarray(dts, dtype=np.float64)
        if np.isinf(arr).any():
            raise OverflowError("eta_plus(inf) is unbounded for this staircase")
        if self._np_breaks is None:
            self._np_breaks = np.asarray(self.breaks, dtype=np.float64)
        breaks = self._np_breaks
        last = float(breaks[-1])
        out = np.zeros(arr.shape, dtype=np.int64)
        prefix = (arr > 0) & (arr <= last)
        if prefix.any():
            out[prefix] = np.searchsorted(breaks, arr[prefix], side="left") - 1
        beyond = arr > last
        if beyond.any():
            s = self.tail_span
            if s <= 0:
                raise OverflowError(self._too_dense(float(arr[beyond][0])))
            e = self.tail_events
            length = len(self.breaks)
            d = arr[beyond]
            cycles = np.ceil((d - last) / s)
            while True:
                high = (cycles > 1) & (last + (cycles - 1) * s >= d)
                if not high.any():
                    break
                cycles[high] -= 1
            while True:
                low = last + cycles * s < d
                if not low.any():
                    break
                cycles[low] += 1
            k = (length - 1) + (cycles - 1) * e
            tail_values = breaks[length - e :]
            k = k + (tail_values[None, :] + cycles[:, None] * s < d[:, None]).sum(
                axis=1
            )
            if (k > self.max_events).any():
                index = int(np.argmax(k > self.max_events))
                raise OverflowError(self._too_dense(float(d[index])))
            out[beyond] = k.astype(np.int64)
        return out

    def _too_dense(self, dt: float) -> str:
        return (
            f"eta_plus({dt!r}) exceeds {self.max_events} events; "
            "the event model is too dense for this window"
        )

    # ------------------------------------------------------------------
    # Algebra closure
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "StaircaseKernel":
        """The kernel of the time-stretched curve (``factor > 0``)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return StaircaseKernel(
            [value * factor for value in self.breaks],
            self.tail_events,
            self.tail_span * factor,
            max_events=self.max_events,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StaircaseKernel({len(self.breaks)} breaks, "
            f"tail={self.tail_events}ev/{self.tail_span!r})"
        )


def integral_kernel(kernel: Optional[StaircaseKernel]) -> bool:
    """True when every breakpoint and the tail span are exactly
    representable integers small enough that all tail arithmetic
    (``breaks[j] + c * s`` for any event count up to ``max_events``)
    stays exact in float64.

    This is the soundness condition of the algebra closures: a composed
    kernel built from integral inputs evaluates the *identical* numbers
    as the composed model's own ``delta_minus``, associativity aside —
    non-integral inputs can differ by an ulp at staircase boundaries,
    which would break the pseudo-inverse contract, so composition is
    refused there and the generic search (which consults the model's
    authoritative ``delta_minus`` directly) applies instead.
    """
    if kernel is None:
        return False
    bound = 2.0**52
    span = float(kernel.tail_span)
    if not span.is_integer() or abs(span) >= bound:
        return False
    return all(
        float(value).is_integer() and abs(value) < bound
        for value in kernel.breaks
    )


def merge_tightest(
    a: Optional[StaircaseKernel],
    b: Optional[StaircaseKernel],
    *,
    limit: int = COMPILE_LIMIT,
) -> Optional[StaircaseKernel]:
    """The compiled form of the pointwise maximum of two staircases.

    Both tails are eventually periodic, so their maximum is too: over
    the least common multiple of the event periods, either both grow at
    the same rate (the maximum stays periodic immediately) or the
    faster one dominates from some breakpoint onwards.  Returns ``None``
    when either input is missing or non-integral (see
    :func:`integral_kernel`), or when domination is not reached within
    ``limit`` breakpoints — callers then fall back to the generic
    search.
    """
    if not integral_kernel(a) or not integral_kernel(b):
        return None
    events = math.lcm(a.tail_events, b.tail_events)
    span_a = a.tail_span * (events // a.tail_events)
    span_b = b.tail_span * (events // b.tail_events)
    max_events = min(a.max_events, b.max_events)
    start = max(len(a.breaks), len(b.breaks))
    if span_a == span_b:
        length = start + events
        if length > limit:
            return None
        breaks = [max(a.delta(k), b.delta(k)) for k in range(length)]
        return StaircaseKernel(breaks, events, span_a, max_events=max_events)
    high, low = (a, b) if span_a > span_b else (b, a)
    anchor = start
    while anchor + events <= limit:
        if all(
            high.delta(k) >= low.delta(k) for k in range(anchor, anchor + events)
        ):
            # Beyond one dominated period the gap only grows (the high
            # tail adds more per period), so the maximum follows the
            # high tail forever.
            breaks = [max(a.delta(k), b.delta(k)) for k in range(anchor + events)]
            return StaircaseKernel(
                breaks, events, max(span_a, span_b), max_events=max_events
            )
        anchor += events
    return None


def prefix_points(model, count: int) -> List[float]:
    """``delta_minus(0..count-1)`` of ``model`` as a list (compile-time
    helper for model-specific kernels)."""
    return [model.delta_minus(k) for k in range(count)]
