"""Abstract event models (arrival curves) for chain activations.

The paper (Sec. II) specifies chain activation with arrival curves in the
style of Compositional Performance Analysis / Real-Time Calculus:

* ``eta_plus(dt)`` / ``eta_minus(dt)`` — the maximum / minimum number of
  activations that may occur in any half-open time window of length ``dt``.
* ``delta_minus(k)`` / ``delta_plus(k)`` — the minimum / maximum distance
  between the first and the last event of any ``k`` consecutive events
  (the pseudo-inverses of the ``eta`` curves).

Conventions used throughout the library (pinned against the paper's case
study, see DESIGN.md):

* ``delta_minus(0) == delta_minus(1) == 0`` and likewise for
  ``delta_plus``.
* ``eta_plus(0) == 0`` and, for ``dt > 0``,
  ``eta_plus(dt) == max{k : delta_minus(k) < dt}``.  For a periodic model
  with period ``P`` this yields the classical busy-window bound
  ``ceil(dt / P)``.
* ``delta_plus`` may be infinite (sporadic models have no maximum
  distance); infinity is represented by ``math.inf``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence

from ..kernel import numpy_or_none
from .staircase import StaircaseKernel

#: Sentinel distinguishing "never compiled" from "compiled to None".
_KERNEL_UNSET = object()


class EventModel(ABC):
    """Base class of all activation models.

    Subclasses must implement :meth:`delta_minus` and :meth:`delta_plus`.
    The ``eta_plus`` curve is served by a compiled
    :class:`~repro.arrivals.staircase.StaircaseKernel` whenever the
    subclass provides one through :meth:`_compile_kernel` (all shipped
    models do); models without a staircase form fall back to the
    generic galloping pseudo-inverse search over ``delta_minus``.
    """

    #: Safety bound for pseudo-inverse searches.  ``eta_plus`` of a window
    #: never needs to look further than this many events in this library;
    #: analyses that would exceed it indicate a divergent busy window.
    MAX_EVENTS = 10**7

    @abstractmethod
    def delta_minus(self, k: int) -> float:
        """Minimum distance between the first and last of ``k`` events."""

    @abstractmethod
    def delta_plus(self, k: int) -> float:
        """Maximum distance between the first and last of ``k`` events.

        ``math.inf`` when the model places no upper bound (sporadic).
        """

    # ------------------------------------------------------------------
    # Compiled staircase kernel
    # ------------------------------------------------------------------
    def _compile_kernel(self) -> Optional[StaircaseKernel]:
        """Build this model's staircase kernel, or ``None`` when the
        curve has no (affordable) eventually periodic form.  Overridden
        by every shipped model; the default keeps user-defined models on
        the generic search."""
        return None

    def staircase_kernel(self) -> Optional[StaircaseKernel]:
        """The compiled ``delta_minus`` staircase of this model (cached;
        ``None`` for models without one)."""
        kernel = getattr(self, "_staircase_kernel", _KERNEL_UNSET)
        if kernel is _KERNEL_UNSET:
            kernel = self._compile_kernel()
            self._staircase_kernel = kernel
        return kernel

    # ------------------------------------------------------------------
    # Derived curves
    # ------------------------------------------------------------------
    def eta_plus(self, dt: float) -> int:
        """Maximum number of events in any window of length ``dt``.

        Derived from ``delta_minus`` by pseudo-inversion:
        ``eta_plus(dt) = max{k : delta_minus(k) < dt}`` for ``dt > 0``.
        Served by the compiled staircase kernel when the model has one,
        by the generic galloping search otherwise.
        """
        if dt <= 0:
            return 0
        if math.isinf(dt):
            return self._eta_plus_unbounded()
        kernel = self.staircase_kernel()
        if kernel is not None:
            return kernel.eta_plus(dt)
        return self._eta_plus_search(dt)

    def eta_plus_many(self, dts: Sequence[float]) -> Sequence[int]:
        """Batched :meth:`eta_plus` over a vector of windows.

        One vectorized ``searchsorted`` under the numpy kernel, a
        scalar loop otherwise — bit-identical to calling
        :meth:`eta_plus` per window either way.  Returns an ``int64``
        ndarray (numpy kernel) or a list of ints.
        """
        kernel = self.staircase_kernel()
        if kernel is not None:
            return kernel.eta_plus_many(dts)
        values = [self.eta_plus(dt) for dt in dts]
        np = numpy_or_none()
        if np is not None:
            return np.asarray(values, dtype=np.int64)
        return values

    def delta_minus_many(self, ks: Sequence[int]) -> Sequence[float]:
        """Batched :meth:`delta_minus` over a vector of event counts.

        Kernel-authoritative: when the model has a compiled staircase
        kernel both ``REPRO_KERNEL`` settings answer from it (the
        python kernel loops ``StaircaseKernel.delta``, numpy mirrors
        it with one gather), so batched activation streams are
        bit-identical across kernels by construction.  Models without
        a kernel loop :meth:`delta_minus` under both settings.
        Returns a ``float64`` ndarray (numpy kernel) or a list.
        """
        kernel = self.staircase_kernel()
        if kernel is not None:
            return kernel.delta_many(ks)
        values = [self.delta_minus(int(k)) for k in ks]
        np = numpy_or_none()
        if np is not None:
            return np.asarray(values, dtype=np.float64)
        return values

    def delta_plus_many(self, ks: Sequence[int]) -> Sequence[float]:
        """Batched :meth:`delta_plus` (a scalar loop by default; models
        with a closed form override it with vectorized arithmetic).
        ``math.inf`` entries are preserved."""
        values = [self.delta_plus(int(k)) for k in ks]
        np = numpy_or_none()
        if np is not None:
            return np.asarray(values, dtype=np.float64)
        return values

    def _eta_plus_search(self, dt: float) -> int:
        """The generic pseudo-inverse: exponential galloping followed by
        binary search over ``delta_minus`` — logarithmic in the answer,
        which matters for long windows.  Fallback for models without a
        staircase kernel and the differential reference of the kernel
        parity tests."""
        lo, hi = 1, 2
        while self.delta_minus(hi) < dt:
            lo = hi
            hi *= 2
            if hi > self.MAX_EVENTS:
                raise OverflowError(
                    f"eta_plus({dt!r}) exceeds {self.MAX_EVENTS} events; "
                    "the event model is too dense for this window"
                )
        # Invariant: delta_minus(lo) < dt <= delta_minus(hi).
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self.delta_minus(mid) < dt:
                lo = mid
            else:
                hi = mid
        return lo

    def eta_minus(self, dt: float) -> int:
        """Minimum number of events in any window of length ``dt``.

        Derived from ``delta_plus``:
        ``eta_minus(dt) = min{k >= 0 : delta_plus(k + 2) > dt} + ...`` —
        equivalently the largest ``k`` such that ``k + 1`` events *must*
        have started, i.e. ``max{k : delta_plus(k + 1) <= dt}`` with the
        convention that the result is 0 when even two events may be
        farther apart than ``dt``.
        """
        if dt < 0:
            return 0
        if math.isinf(self.delta_plus(2)):
            return 0
        k = 0
        while self.delta_plus(k + 2) <= dt:
            k += 1
            if k > self.MAX_EVENTS:
                raise OverflowError("eta_minus diverged")
        return k

    def _eta_plus_unbounded(self) -> int:
        """``eta_plus`` of an unbounded window (``math.inf`` events unless
        the model is finite)."""
        raise OverflowError("eta_plus(inf) is unbounded for this model")

    # ------------------------------------------------------------------
    # Long-run rate (used for utilization / divergence checks)
    # ------------------------------------------------------------------
    def rate(self) -> float:
        """Long-run maximum activation rate (events per time unit).

        Estimated as ``k / delta_minus(k + 1)`` for a large ``k``; exact
        for periodic/sporadic models which override it.
        """
        k = 4096
        span = self.delta_minus(k + 1)
        if span <= 0:
            return math.inf
        return k / span

    # ------------------------------------------------------------------
    # Sanity checking
    # ------------------------------------------------------------------
    def validate(self, up_to: int = 64) -> None:
        """Check basic curve well-formedness up to ``up_to`` events.

        Raises ``ValueError`` on: negative distances, non-monotone
        ``delta`` curves, or ``delta_minus > delta_plus``.
        """
        prev_minus = 0.0
        prev_plus = 0.0
        for k in (0, 1):
            if self.delta_minus(k) != 0:
                raise ValueError(f"delta_minus({k}) must be 0")
            if self.delta_plus(k) != 0:
                raise ValueError(f"delta_plus({k}) must be 0")
        for k in range(2, up_to + 1):
            dmin = self.delta_minus(k)
            dplus = self.delta_plus(k)
            if dmin < 0:
                raise ValueError(f"delta_minus({k}) is negative: {dmin}")
            if dmin < prev_minus:
                raise ValueError(f"delta_minus not monotone at k={k}")
            if dplus < prev_plus:
                raise ValueError(f"delta_plus not monotone at k={k}")
            if dmin > dplus:
                raise ValueError(
                    f"delta_minus({k})={dmin} exceeds delta_plus({k})={dplus}"
                )
            prev_minus = dmin
            prev_plus = dplus

    def __repr__(self) -> str:  # pragma: no cover - cosmetic default
        return f"{type(self).__name__}()"
