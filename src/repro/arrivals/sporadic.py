"""Sporadic activation models (no upper bound on event spacing)."""

from __future__ import annotations

import math

from .base import EventModel
from .staircase import StaircaseKernel, prefix_points


class SporadicModel(EventModel):
    """Events arrive with at least ``min_distance`` between consecutive
    events and no further constraint.

    This is the model of the case study's overload chains
    (``sigma_a[700]``, ``sigma_b[600]`` in Fig. 4: ``delta_minus(2)`` is
    the bracketed number).  ``delta_plus`` is infinite — a sporadic source
    may stay silent forever — so ``eta_minus`` is identically 0.
    """

    def __init__(self, min_distance: float):
        if min_distance <= 0:
            raise ValueError(f"min_distance must be positive, got {min_distance}")
        self.min_distance = min_distance

    def delta_minus(self, k: int) -> float:
        if k <= 1:
            return 0.0 if isinstance(self.min_distance, float) else 0
        return (k - 1) * self.min_distance

    def delta_plus(self, k: int) -> float:
        if k <= 1:
            return 0
        return math.inf

    def _compile_kernel(self) -> StaircaseKernel:
        return StaircaseKernel(prefix_points(self, 2), 1, self.min_distance)

    def _eta_plus_unbounded(self) -> int:
        raise OverflowError("eta_plus(inf) is unbounded for a sporadic model")

    def eta_minus(self, dt: float) -> int:
        return 0

    def rate(self) -> float:
        return 1.0 / self.min_distance

    def __repr__(self) -> str:
        return f"SporadicModel(min_distance={self.min_distance!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SporadicModel)
            and self.min_distance == other.min_distance
        )

    def __hash__(self) -> int:
        return hash((SporadicModel, self.min_distance))


class SporadicBurstModel(EventModel):
    """Bursty sporadic events: at most ``burst`` events with an inner
    spacing of ``inner_distance``, after which the stream must pause so
    that any ``burst + 1`` consecutive events span at least
    ``outer_distance``.

    This two-level model is typical for interrupt service routines and
    recovery chains — exactly the overload sources the paper names — and
    is the natural shape for the (unpublished) industrial overload curves
    of the case study.  Formally::

        delta_minus(k) = floor((k - 1) / burst) * outer_distance
                         + ((k - 1) mod burst) * inner_distance
    """

    def __init__(self, inner_distance: float, burst: int, outer_distance: float):
        if inner_distance <= 0:
            raise ValueError("inner_distance must be positive")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if outer_distance < burst * inner_distance:
            raise ValueError(
                "outer_distance must be at least burst * inner_distance "
                f"({outer_distance} < {burst * inner_distance})"
            )
        self.inner_distance = inner_distance
        self.burst = burst
        self.outer_distance = outer_distance

    def delta_minus(self, k: int) -> float:
        if k <= 1:
            return 0
        full, rem = divmod(k - 1, self.burst)
        return full * self.outer_distance + rem * self.inner_distance

    def delta_plus(self, k: int) -> float:
        if k <= 1:
            return 0
        return math.inf

    def _compile_kernel(self) -> StaircaseKernel:
        """One burst of ``burst`` events per ``outer_distance``: the
        prefix stores the first burst, the tail repeats it."""
        return StaircaseKernel(
            prefix_points(self, self.burst + 1), self.burst, self.outer_distance
        )

    def eta_minus(self, dt: float) -> int:
        return 0

    def rate(self) -> float:
        return self.burst / self.outer_distance

    def __repr__(self) -> str:
        return (
            f"SporadicBurstModel(inner_distance={self.inner_distance!r}, "
            f"burst={self.burst!r}, outer_distance={self.outer_distance!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SporadicBurstModel)
            and self.inner_distance == other.inner_distance
            and self.burst == other.burst
            and self.outer_distance == other.outer_distance
        )

    def __hash__(self) -> int:
        return hash(
            (
                SporadicBurstModel,
                self.inner_distance,
                self.burst,
                self.outer_distance,
            )
        )
