"""Curve algebra helpers: pseudo-inverse checks and curve combinators."""

from __future__ import annotations

import math
from typing import Callable, Optional

from .base import EventModel
from .staircase import StaircaseKernel, integral_kernel, merge_tightest


def check_duality(model: EventModel, up_to: int = 32) -> None:
    """Assert that ``eta_plus`` and ``delta_minus`` are proper
    pseudo-inverses of each other for ``model``.

    For every ``k`` in ``[1, up_to]`` we must have:

    * ``eta_plus(delta_minus(k)) <= k - 1``  (a window that *just* fails
      to strictly contain the k-th spacing holds at most k-1 events), and
    * ``eta_plus(delta_minus(k) + 1) >= k``  (open the window slightly and
      k events fit).

    The second check is skipped when ``delta_minus(k)`` is infinite.
    """
    for k in range(2, up_to + 1):
        d = model.delta_minus(k)
        if math.isinf(d):
            continue
        got = model.eta_plus(d)
        if d > 0 and got > k - 1:
            raise AssertionError(f"eta_plus(delta_minus({k})={d}) = {got} > {k - 1}")
        got_open = model.eta_plus(d + 1)
        if got_open < k:
            # Only a genuine violation if the curve is strictly increasing
            # at k; plateaus (several k with the same distance) are fine.
            if model.delta_minus(k + 1) > d:
                raise AssertionError(
                    f"eta_plus(delta_minus({k}) + 1) = {got_open} < {k}"
                )


class _LambdaModel(EventModel):
    """Internal: wrap delta functions into an :class:`EventModel`.

    The combinators pass the composed staircase kernel along when both
    operands have one, keeping the algebra closed under the compiled
    ``eta_plus`` machinery; without it the generic search applies.
    """

    def __init__(
        self,
        dmin: Callable[[int], float],
        dplus: Callable[[int], float],
        label: str,
        kernel: Optional[StaircaseKernel] = None,
    ):
        self._dmin = dmin
        self._dplus = dplus
        self._label = label
        self._kernel = kernel

    def delta_minus(self, k: int) -> float:
        return self._dmin(k)

    def delta_plus(self, k: int) -> float:
        return self._dplus(k)

    def _compile_kernel(self) -> Optional[StaircaseKernel]:
        return self._kernel

    def __repr__(self) -> str:
        return self._label


def scaled(model: EventModel, factor: float) -> EventModel:
    """Stretch time by ``factor`` (> 1 makes the stream sparser)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    # The composed kernel is only sound when its tail arithmetic
    # reproduces the scaled model's own delta_minus exactly: integral
    # staircase times an integer factor.  Anything else (fractional
    # factors, float curves) keeps the generic search, which consults
    # the authoritative delta_minus directly.
    kernel = None
    base_kernel = model.staircase_kernel()
    if integral_kernel(base_kernel) and float(factor).is_integer():
        kernel = base_kernel.scaled(factor)
    return _LambdaModel(
        lambda k: model.delta_minus(k) * factor,
        lambda k: model.delta_plus(k) * factor,
        f"scaled({model!r}, {factor!r})",
        kernel=kernel,
    )


def tightest(model_a: EventModel, model_b: EventModel) -> EventModel:
    """The most constrained model consistent with both inputs.

    ``delta_minus`` is the point-wise maximum (events must honour both
    spacing constraints) and ``delta_plus`` the point-wise minimum.
    """
    return _LambdaModel(
        lambda k: max(model_a.delta_minus(k), model_b.delta_minus(k)),
        lambda k: min(model_a.delta_plus(k), model_b.delta_plus(k)),
        f"tightest({model_a!r}, {model_b!r})",
        kernel=merge_tightest(
            model_a.staircase_kernel(), model_b.staircase_kernel()
        ),
    )


def superadditive_closure_defect(model: EventModel, up_to: int = 24) -> float:
    """Largest violation of super-additivity of ``delta_minus``.

    A well-formed minimum-distance function satisfies
    ``delta_minus(i + j - 1) >= delta_minus(i) + delta_minus(j)`` (gluing
    two densest windows shares one event).  Returns the largest positive
    defect found, 0.0 if the curve is super-additive up to ``up_to``.
    """
    worst = 0.0
    for i in range(2, up_to + 1):
        for j in range(2, up_to + 2 - i):
            lhs = model.delta_minus(i + j - 1)
            rhs = model.delta_minus(i) + model.delta_minus(j)
            if math.isinf(lhs) or math.isinf(rhs):
                continue
            worst = max(worst, rhs - lhs)
    return worst
