"""Fluent construction helper for systems.

The dataclass constructors are the canonical API; :class:`SystemBuilder`
exists for scripts and tests that assemble many similar systems and reads
close to the paper's ``sigma[delta:D]`` / ``tau[pi:C]`` notation::

    system = (SystemBuilder("case-study")
              .chain("sigma_c", PeriodicModel(200), deadline=200)
              .task("tau_c^1", priority=8, wcet=4)
              .task("tau_c^2", priority=7, wcet=6)
              .task("tau_c^3", priority=1, wcet=41)
              .chain("sigma_a", SporadicModel(700), overload=True)
              .task("tau_a^1", priority=4, wcet=10)
              .task("tau_a^2", priority=3, wcet=10)
              .build())
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..arrivals import EventModel
from .chain import ChainKind, TaskChain
from .system import System
from .task import Task


class SystemBuilder:
    """Incrementally build a :class:`System` chain by chain."""

    def __init__(self, name: str = "system", allow_shared_priorities: bool = False):
        self._name = name
        self._allow_shared = allow_shared_priorities
        self._chains: List[TaskChain] = []
        self._current_name: Optional[str] = None
        self._current_activation: Optional[EventModel] = None
        self._current_deadline: float = math.inf
        self._current_kind: ChainKind = ChainKind.SYNCHRONOUS
        self._current_overload: bool = False
        self._current_tasks: List[Task] = []

    def chain(
        self,
        name: str,
        activation: EventModel,
        deadline: float = math.inf,
        kind: ChainKind = ChainKind.SYNCHRONOUS,
        overload: bool = False,
    ) -> "SystemBuilder":
        """Start a new chain; subsequent :meth:`task` calls append to it."""
        self._flush()
        self._current_name = name
        self._current_activation = activation
        self._current_deadline = deadline
        self._current_kind = kind
        self._current_overload = overload
        self._current_tasks = []
        return self

    def task(
        self, name: str, priority: float, wcet: float, bcet: float = -1.0
    ) -> "SystemBuilder":
        """Append a task to the chain opened by the last :meth:`chain`."""
        if self._current_name is None:
            raise ValueError("call chain(...) before task(...)")
        self._current_tasks.append(Task(name, priority, wcet, bcet))
        return self

    def _flush(self) -> None:
        if self._current_name is not None:
            self._chains.append(
                TaskChain(
                    self._current_name,
                    self._current_tasks,
                    self._current_activation,
                    self._current_deadline,
                    self._current_kind,
                    self._current_overload,
                )
            )
            self._current_name = None

    def build(self) -> System:
        """Finalize and validate the system."""
        self._flush()
        return System(
            self._chains, name=self._name, allow_shared_priorities=self._allow_shared
        )
