"""Tasks: the atomic schedulable units of the system model (Sec. II).

A task is defined by a priority and an upper bound on its execution time
(the paper takes 0 as the lower bound; we allow an explicit ``bcet`` for
simulation purposes, defaulting to the WCET so that analysis-facing
behaviour matches the paper exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Task:
    """A single task within a chain.

    Attributes
    ----------
    name:
        Unique human-readable identifier (e.g. ``"tau_c^1"``).
    priority:
        Scheduling priority; **larger values mean higher priority**
        (matching the paper's case study, where priority 13 preempts
        priority 1).
    wcet:
        Upper bound on execution time, ``C`` in the paper.
    bcet:
        Lower bound on execution time, used only by the simulator.
        Defaults to ``wcet`` (deterministic execution).
    """

    name: str
    priority: float
    wcet: float
    bcet: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.wcet < 0:
            raise ValueError(
                f"task {self.name}: wcet must be non-negative, got {self.wcet}"
            )
        if self.bcet == -1.0:
            object.__setattr__(self, "bcet", self.wcet)
        if self.bcet < 0:
            raise ValueError(
                f"task {self.name}: bcet must be non-negative, got {self.bcet}"
            )
        if self.bcet > self.wcet:
            raise ValueError(
                f"task {self.name}: bcet {self.bcet} exceeds wcet {self.wcet}"
            )

    def with_priority(self, priority: float) -> "Task":
        """A copy of this task with a different priority (used by the
        random priority-assignment experiments)."""
        return Task(self.name, priority, self.wcet, self.bcet)

    def __str__(self) -> str:
        return f"{self.name}[{self.priority}:{self.wcet}]"
