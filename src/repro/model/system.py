"""The uniprocessor system: a set of disjoint task chains under SPP."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from .chain import TaskChain
from .task import Task


class System:
    """A uniprocessor SPP system made of disjoint task chains (Sec. II).

    The constructor validates the structural requirements of the paper's
    model: chains are disjoint (a task belongs to exactly one chain),
    names are unique, and — unless ``allow_shared_priorities`` — task
    priorities are pairwise distinct (the usual SPP assumption; the
    paper's strict inequalities between priorities presume it).
    """

    def __init__(
        self,
        chains: Sequence[TaskChain],
        name: str = "system",
        allow_shared_priorities: bool = False,
    ):
        self.name = name
        self.chains: Tuple[TaskChain, ...] = tuple(chains)
        if not self.chains:
            raise ValueError("a system needs at least one chain")
        self._by_name: Dict[str, TaskChain] = {}
        task_names = set()
        priorities: Dict[float, str] = {}
        for chain in self.chains:
            if chain.name in self._by_name:
                raise ValueError(f"duplicate chain name {chain.name!r}")
            self._by_name[chain.name] = chain
            for task in chain.tasks:
                if task.name in task_names:
                    raise ValueError(
                        f"task {task.name!r} appears in more than one chain "
                        "(chains must be disjoint)"
                    )
                task_names.add(task.name)
                if task.priority in priorities and not allow_shared_priorities:
                    raise ValueError(
                        f"priority {task.priority} shared by {task.name!r} "
                        f"and {priorities[task.priority]!r}; pass "
                        "allow_shared_priorities=True to permit ties"
                    )
                priorities.setdefault(task.priority, task.name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TaskChain]:
        return iter(self.chains)

    def __len__(self) -> int:
        return len(self.chains)

    def __getitem__(self, name: str) -> TaskChain:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no chain named {name!r}; have {sorted(self._by_name)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def tasks(self) -> List[Task]:
        """All tasks of the system in chain order."""
        return [task for chain in self.chains for task in chain.tasks]

    @property
    def overload_chains(self) -> Tuple[TaskChain, ...]:
        """``C_over``: the identified overload chains."""
        return tuple(c for c in self.chains if c.overload)

    @property
    def typical_chains(self) -> Tuple[TaskChain, ...]:
        """All non-overload chains (the *typical* part of the system)."""
        return tuple(c for c in self.chains if not c.overload)

    def others(self, chain: TaskChain) -> Tuple[TaskChain, ...]:
        """All chains except ``chain``."""
        return tuple(c for c in self.chains if c.name != chain.name)

    # ------------------------------------------------------------------
    # Derived systems
    # ------------------------------------------------------------------
    def without_overload(self) -> "System":
        """The *typical* system with every overload chain abstracted away
        (the second analysis of Experiment 1)."""
        typical = self.typical_chains
        if not typical:
            raise ValueError("system consists only of overload chains")
        return System(
            typical, name=f"{self.name}-typical", allow_shared_priorities=True
        )

    def with_priorities(self, assignment: Dict[str, float]) -> "System":
        """A copy of the system with task priorities replaced according
        to ``assignment`` (task name -> new priority).

        Every task of the system must be covered; this is the primitive
        under the random priority-assignment experiment (Experiment 2).
        """
        missing = [t.name for t in self.tasks if t.name not in assignment]
        if missing:
            raise ValueError(f"assignment misses tasks {missing}")
        new_chains = []
        for chain in self.chains:
            new_tasks = [t.with_priority(assignment[t.name]) for t in chain.tasks]
            new_chains.append(chain.with_tasks(new_tasks))
        return System(new_chains, name=self.name)

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    def content_digest(self) -> str:
        """SHA-256 over the canonical JSON serialization of the system.

        Two systems with identical chains, tasks, activation models and
        names share a digest; the runner's :class:`AnalysisCache` uses it
        to key memoized analysis artifacts by *content* rather than by
        object identity.  Computed lazily and cached on the instance
        (systems are immutable after construction by convention — every
        mutator returns a copy).
        """
        cached = self.__dict__.get("_content_digest")
        if cached is None:
            import hashlib

            from .serialization import canonical_system_json

            canonical = canonical_system_json(self)
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            self.__dict__["_content_digest"] = cached
        return cached

    # ------------------------------------------------------------------
    # Global properties
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Total long-run processor utilization (all chains)."""
        return sum(chain.utilization() for chain in self.chains)

    def typical_utilization(self) -> float:
        """Utilization of the non-overload chains only."""
        return sum(chain.utilization() for chain in self.typical_chains)

    def validate(self) -> None:
        """Full validation: structure (done at construction) plus
        activation-model well-formedness and a utilization sanity check.
        """
        for chain in self.chains:
            chain.activation.validate()
        if self.utilization() >= 1.0:
            raise ValueError(
                f"system utilization {self.utilization():.3f} >= 1; "
                "busy windows may diverge"
            )

    def __repr__(self) -> str:
        inner = ", ".join(c.name for c in self.chains)
        return f"System({self.name!r}: {inner})"
