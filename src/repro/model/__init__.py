"""System model: tasks, chains, and uniprocessor SPP systems (Sec. II)."""

from .builder import SystemBuilder
from .chain import ChainKind, TaskChain
from .system import System
from .task import Task

__all__ = ["Task", "TaskChain", "ChainKind", "System", "SystemBuilder"]
