"""JSON-friendly (de)serialization of systems.

Round-trips :class:`System` objects through plain dictionaries so that
experiment configurations can be stored on disk and diffed.  Only the
event models shipped with :mod:`repro.arrivals` are supported.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from ..arrivals import (
    ArrivalCurve,
    EventModel,
    PeriodicModel,
    SporadicBurstModel,
    SporadicModel,
)
from .chain import ChainKind, TaskChain
from .system import System
from .task import Task


def event_model_to_dict(model: EventModel) -> Dict[str, Any]:
    """Serialize a supported event model to a plain dict."""
    if isinstance(model, PeriodicModel):
        return {
            "type": "periodic",
            "period": model.period,
            "jitter": model.jitter,
            "min_distance": model.min_distance,
        }
    if isinstance(model, SporadicBurstModel):
        return {
            "type": "sporadic_burst",
            "inner_distance": model.inner_distance,
            "burst": model.burst,
            "outer_distance": model.outer_distance,
        }
    if isinstance(model, SporadicModel):
        return {"type": "sporadic", "min_distance": model.min_distance}
    if isinstance(model, ArrivalCurve):
        data: Dict[str, Any] = {
            "type": "curve",
            "delta_min_points": list(model._points),
            "tail_distance": model.tail_distance,
        }
        if model._max_points is not None:
            data["delta_max_points"] = list(model._max_points)
        return data
    raise TypeError(f"cannot serialize event model {model!r}")


def event_model_from_dict(data: Dict[str, Any]) -> EventModel:
    """Inverse of :func:`event_model_to_dict`."""
    kind = data["type"]
    if kind == "periodic":
        return PeriodicModel(
            data["period"], data.get("jitter", 0.0), data.get("min_distance", 0.0)
        )
    if kind == "sporadic":
        return SporadicModel(data["min_distance"])
    if kind == "sporadic_burst":
        return SporadicBurstModel(
            data["inner_distance"], data["burst"], data["outer_distance"]
        )
    if kind == "curve":
        return ArrivalCurve(
            data["delta_min_points"],
            data.get("tail_distance"),
            data.get("delta_max_points"),
        )
    raise ValueError(f"unknown event model type {kind!r}")


def system_to_dict(system: System) -> Dict[str, Any]:
    """Serialize a system (chains, tasks, activation models) to a dict."""
    chains = []
    for chain in system.chains:
        chains.append(
            {
                "name": chain.name,
                "kind": chain.kind.value,
                "overload": chain.overload,
                "deadline": None if math.isinf(chain.deadline) else chain.deadline,
                "activation": event_model_to_dict(chain.activation),
                "tasks": [
                    {
                        "name": t.name,
                        "priority": t.priority,
                        "wcet": t.wcet,
                        "bcet": t.bcet,
                    }
                    for t in chain.tasks
                ],
            }
        )
    return {"name": system.name, "chains": chains}


def system_from_dict(data: Dict[str, Any]) -> System:
    """Inverse of :func:`system_to_dict`."""
    chains = []
    for cdata in data["chains"]:
        tasks = [
            Task(t["name"], t["priority"], t["wcet"], t.get("bcet", -1.0))
            for t in cdata["tasks"]
        ]
        deadline = cdata.get("deadline")
        chains.append(
            TaskChain(
                cdata["name"],
                tasks,
                event_model_from_dict(cdata["activation"]),
                math.inf if deadline is None else deadline,
                ChainKind(cdata.get("kind", "synchronous")),
                cdata.get("overload", False),
            )
        )
    return System(chains, name=data.get("name", "system"), allow_shared_priorities=True)


def system_to_json(system: System, indent: int = 2) -> str:
    """Serialize a system to a JSON string."""
    return json.dumps(system_to_dict(system), indent=indent)


def canonical_system_json(system: System) -> str:
    """Canonical (sorted-key, no-whitespace) JSON for ``system``.

    The single source of content identity: :meth:`System.content_digest`
    and the batch runner's job digests both hash exactly this string, so
    they can never diverge."""
    return json.dumps(system_to_dict(system), sort_keys=True, separators=(",", ":"))


def system_from_json(text: str) -> System:
    """Parse a system from a JSON string."""
    return system_from_dict(json.loads(text))


def load_system_file(path: str) -> System:
    """Parse a system from a JSON file.

    The plain one-shot loading path (CLI ``analyze``/``simulate``);
    the batch runner's worker-side
    :class:`repro.runner.loader.SystemLoader` adds memoization and
    digest revalidation on top of the same parser, so parent-parsed
    and worker-parsed systems cannot diverge."""
    with open(path, "r", encoding="utf-8") as handle:
        return system_from_json(handle.read())
