"""Task chains: sequences of tasks that activate each other (Sec. II)."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from ..arrivals import EventModel
from .task import Task


class ChainKind(enum.Enum):
    """Execution semantics of a chain (Sec. II).

    SYNCHRONOUS:
        An incoming activation cannot be processed until the previous
        instance of the chain has finished; tasks of the chain never
        preempt each other.
    ASYNCHRONOUS:
        Incoming activations are processed independently; higher-priority
        tasks of the chain may preempt lower-priority ones across
        instances.
    """

    SYNCHRONOUS = "synchronous"
    ASYNCHRONOUS = "asynchronous"


@dataclass(frozen=True)
class TaskChain:
    """A finite sequence of distinct tasks activating one another.

    Attributes
    ----------
    name:
        Unique chain identifier (``sigma_a`` etc.).
    tasks:
        The ordered tasks ``(tau^1, ..., tau^n)``; the first is the
        *header* task, the last the *tail* task.
    activation:
        Arrival model at the input of the header task.
    deadline:
        Relative end-to-end deadline ``D``; ``math.inf`` when the chain
        has no deadline of interest (the case study's overload chains).
    kind:
        Synchronous or asynchronous execution semantics.
    overload:
        Whether the chain belongs to the identified overload set
        ``C_over`` (rarely-activated chains that cause transient
        overload).
    """

    name: str
    tasks: Tuple[Task, ...]
    activation: EventModel
    deadline: float = math.inf
    kind: ChainKind = ChainKind.SYNCHRONOUS
    overload: bool = False

    def __init__(
        self,
        name: str,
        tasks: Sequence[Task],
        activation: EventModel,
        deadline: float = math.inf,
        kind: ChainKind = ChainKind.SYNCHRONOUS,
        overload: bool = False,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "tasks", tuple(tasks))
        object.__setattr__(self, "activation", activation)
        object.__setattr__(self, "deadline", deadline)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "overload", overload)
        self._validate()

    def _validate(self) -> None:
        if not self.name:
            raise ValueError("chain name must be non-empty")
        if not self.tasks:
            raise ValueError(f"chain {self.name} has no tasks")
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError(
                f"chain {self.name}: tasks must be distinct, got {names}"
            )
        if self.deadline <= 0:
            raise ValueError(f"chain {self.name}: deadline must be positive")
        if not isinstance(self.kind, ChainKind):
            raise TypeError(f"chain {self.name}: kind must be a ChainKind")

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> Task:
        return self.tasks[index]

    @property
    def header(self) -> Task:
        """The first task of the chain."""
        return self.tasks[0]

    @property
    def tail(self) -> Task:
        """The last task of the chain."""
        return self.tasks[-1]

    @property
    def total_wcet(self) -> float:
        """``C_a``: the summed WCET of the whole chain."""
        return sum(t.wcet for t in self.tasks)

    @property
    def min_priority(self) -> float:
        """The lowest priority among the chain's tasks."""
        return min(t.priority for t in self.tasks)

    @property
    def max_priority(self) -> float:
        """The highest priority among the chain's tasks."""
        return max(t.priority for t in self.tasks)

    @property
    def is_synchronous(self) -> bool:
        return self.kind is ChainKind.SYNCHRONOUS

    @property
    def is_asynchronous(self) -> bool:
        return self.kind is ChainKind.ASYNCHRONOUS

    @property
    def has_deadline(self) -> bool:
        return not math.isinf(self.deadline)

    def utilization(self) -> float:
        """Long-run processor share demanded by the chain."""
        return self.total_wcet * self.activation.rate()

    # ------------------------------------------------------------------
    # Derived chains
    # ------------------------------------------------------------------
    def with_tasks(self, tasks: Sequence[Task]) -> "TaskChain":
        """A copy of the chain with a different task list (same length
        not required) — used by priority-permutation experiments."""
        return TaskChain(
            self.name, tasks, self.activation, self.deadline, self.kind, self.overload
        )

    def with_activation(self, activation: EventModel) -> "TaskChain":
        """A copy with a different arrival model (used to swap printed
        vs calibrated overload curves in the benchmarks)."""
        return TaskChain(
            self.name, self.tasks, activation, self.deadline, self.kind, self.overload
        )

    def header_prefix(self) -> Tuple[Task, ...]:
        """``s_header_a`` (Def. 5, first bullet): the prefix of the chain
        up to but excluding the first occurrence of the chain's *lowest*
        priority task.  Empty when the header task itself has the lowest
        priority.

        Only meaningful for asynchronous chains (the self-interference
        term of Theorem 1), but structurally defined for all.
        """
        lowest = self.min_priority
        prefix = []
        for task in self.tasks:
            if task.priority == lowest:
                break
            prefix.append(task)
        return tuple(prefix)

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.tasks)
        flags = []
        if self.overload:
            flags.append("overload")
        flags.append(self.kind.value)
        joined = ",".join(flags)
        return f"{self.name}({inner})<{joined}>"
