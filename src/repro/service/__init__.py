"""Analysis-as-a-service: the long-lived front over the TWCA engines.

Two layers:

* :class:`AnalysisService` — the in-process facade.  Typed
  :class:`AnalysisRequest` / :class:`AnalysisResponse` dataclasses wrap
  ``analyze_twca`` / ``analyze_latency`` / the batch runner behind one
  entrypoint that owns warm state: loaded systems keyed by content
  digest, the (optionally persistent) analysis cache, and the live
  packing/kernel artifacts it carries.
* ``repro serve`` — a stdlib HTTP/JSON server (:func:`serve_forever`,
  :func:`start_server`) exposing ``POST /analyze``, ``POST /batch``,
  ``POST /shard/run``, ``GET /cache/stats`` and ``GET /healthz``,
  coalescing identical in-flight requests and merging compatible ones
  into multi-q analyses.  :class:`ServiceClient` is the matching
  ``urllib`` client, with configurable timeouts and bounded
  retry-with-backoff for transport failures.  ``repro shard-worker``
  serves the same endpoints — the ``/shard/run`` chunk route is how
  the sharded batch coordinator (:mod:`repro.runner.shard`) drives
  remote hosts.

The CLI's ``analyze`` and ``batch`` subcommands are clients of the same
facade — in-process by default, against a daemon with ``--server URL`` —
so service responses are byte-identical to the classic exports.
"""

from .api import (
    AnalysisOptions,
    AnalysisRequest,
    AnalysisResponse,
    RequestError,
    UnknownSystemError,
)
from .core import AnalysisService
from .http import (
    AnalysisRequestHandler,
    AnalysisServer,
    ServiceClient,
    ServiceError,
    serve_forever,
    start_server,
)

__all__ = [
    "AnalysisOptions",
    "AnalysisRequest",
    "AnalysisResponse",
    "AnalysisService",
    "AnalysisRequestHandler",
    "AnalysisServer",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "UnknownSystemError",
    "serve_forever",
    "start_server",
]
