"""The HTTP/JSON front of the analysis service — stdlib only.

``repro serve`` stands a :class:`ThreadingHTTPServer` in front of one
:class:`~repro.service.core.AnalysisService`, exposing:

* ``POST /analyze`` — one :class:`~repro.service.api.AnalysisRequest`
  body; the response is the deterministic
  :class:`~repro.service.api.AnalysisResponse` payload.  Identical
  concurrent requests are coalesced (one compute, N responders); a
  coalesced response carries the ``X-Repro-Coalesced: 1`` header.
* ``POST /batch`` — ``{"requests": [...]}``; the response body is the
  deterministic batch export, byte-identical to the
  ``repro batch --json`` output for the same jobs.
* ``POST /shard/run`` — ``{"jobs": [...]}`` of
  :class:`~repro.runner.jobs.AnalysisJob` wire dicts; the response is
  ``{"jobs": [...]}`` of full (non-deterministic-form) job results.
  This is the chunk endpoint the sharded batch coordinator drives —
  ``repro shard-worker`` is ``repro serve`` under another name.
* ``GET /cache/stats`` — per-category cache counters plus service
  request accounting (requests, computes, coalesced, merged, systems).
* ``GET /healthz`` — liveness, version and the active numeric kernel.

Malformed requests are answered with structured ``400`` bodies
(``{"error": ...}``); unknown paths with ``404``; anything else that
escapes the service is a ``500`` naming the exception.

:class:`ServiceClient` is the matching ``urllib`` client used by the
CLI's ``--server`` mode and :mod:`examples.serve_client`.
"""

from __future__ import annotations

import http.client
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..kernel import kernel_name
from ..runner.jobs import AnalysisJob, JobResult
from ..runner.retry import NO_RETRY, RetryPolicy
from .api import AnalysisOptions, AnalysisRequest, RequestError
from .core import AnalysisService


class AnalysisRequestHandler(BaseHTTPRequestHandler):
    """Request/response plumbing only: parse, dispatch to the service,
    serialize.  All analysis state lives on ``server.service``."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            from .. import __version__

            self._send_json(
                200,
                {"status": "ok", "version": __version__, "kernel": kernel_name()},
            )
        elif self.path == "/cache/stats":
            self._send_json(200, self.service.cache_stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/analyze":
                self._handle_analyze()
            elif self.path == "/batch":
                self._handle_batch()
            elif self.path == "/shard/run":
                self._handle_shard_run()
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except RequestError as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - service bug surface
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _handle_analyze(self) -> None:
        request = AnalysisRequest.from_dict(self._read_json())
        response = self.service.analyze(request)
        headers = {"X-Repro-Coalesced": "1"} if response.coalesced else None
        self._send_text(200, response.to_json(), headers)

    def _handle_batch(self) -> None:
        payload = self._read_json()
        if isinstance(payload, dict):
            payload = payload.get("requests")
        if not isinstance(payload, list) or not payload:
            raise RequestError(
                "batch body must be {'requests': [...]} with at least one request"
            )
        requests = [AnalysisRequest.from_dict(item) for item in payload]
        result = self.service.batch(requests)
        self._send_text(200, result.to_json(deterministic=True))

    def _handle_shard_run(self) -> None:
        payload = self._read_json()
        if isinstance(payload, dict):
            payload = payload.get("jobs")
        if not isinstance(payload, list) or not payload:
            raise RequestError(
                "shard body must be {'jobs': [...]} with at least one job"
            )
        try:
            jobs = [AnalysisJob.from_dict(item) for item in payload]
        except (TypeError, ValueError) as exc:
            raise RequestError(f"bad shard job: {exc}") from exc
        results = self.service.run_jobs(jobs)
        # Non-deterministic form on purpose: the coordinator merges the
        # cache counter deltas of remote shards into the batch stats.
        self._send_json(
            200,
            {"jobs": [result.to_dict(deterministic=False) for result in results]},
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_body(self) -> bytes:
        """The validated request body: ``Content-Length`` must be a
        non-negative integer and the connection must actually deliver
        that many bytes — a short read (client died mid-upload) is a
        structured 400, not a confusing truncated-JSON parse error."""
        length = self.headers.get("Content-Length")
        if length is None:
            raise RequestError("missing Content-Length header")
        try:
            expected = int(length)
        except ValueError as exc:
            raise RequestError(f"bad Content-Length: {length!r}") from exc
        if expected < 0:
            raise RequestError(f"bad Content-Length: {length!r} (negative)")
        raw = self.rfile.read(expected)
        if len(raw) < expected:
            raise RequestError(
                f"short request body: Content-Length declared {expected} "
                f"bytes but only {len(raw)} arrived"
            )
        return raw

    def _read_json(self) -> Any:
        try:
            return json.loads(self._read_body().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(f"invalid JSON body: {exc}") from exc

    def _send_json(
        self, status: int, payload: Any, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self._send_text(status, json.dumps(payload, indent=2, sort_keys=True), headers)

    def _send_text(
        self, status: int, text: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "quiet", False):
            return
        super().log_message(format, *args)


class AnalysisServer(ThreadingHTTPServer):
    """One service behind a threaded stdlib HTTP server.

    Handler threads give request *concurrency*; the service runs the
    computes on its bounded pool (``AnalysisService(workers=N)``), so
    up to ``workers`` analyses genuinely overlap while identical
    in-flight requests still coalesce.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: AnalysisService,
        *,
        quiet: bool = False,
    ):
        super().__init__(address, AnalysisRequestHandler)
        self.service = service
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
) -> AnalysisServer:
    """Start a daemon-threaded server (``port=0`` picks a free port)
    and return it — the embedding/test entrypoint.  Call
    ``server.shutdown()`` to stop it."""
    server = AnalysisServer((host, port), service, quiet=quiet)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server


def serve_forever(
    host: str,
    port: int,
    options: Optional[AnalysisOptions] = None,
    *,
    workers: int = 1,
    service: Optional[AnalysisService] = None,
) -> int:
    """The blocking ``repro serve`` entrypoint: serve until interrupted.

    ``workers`` bounds the concurrently executing computes (ignored
    when an explicit ``service`` is passed — it already owns a pool).
    """
    service = (
        service
        if service is not None
        else AnalysisService(options, workers=workers)
    )
    server = AnalysisServer((host, port), service)
    cache_note = (
        f"persistent cache at {service.options.cache_dir}"
        if service.options.cache_dir
        else "in-memory cache"
    )
    print(
        f"repro serve: listening on {server.url} "
        f"(backend {service.options.backend}, kernel {kernel_name()}, "
        f"{service.workers} compute worker(s), {cache_note}); "
        f"Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
        service.close()
    return 0


class ServiceError(RuntimeError):
    """A failed service call: HTTP status (0 for transport errors) plus
    the server's structured error message."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


class ServiceClient:
    """Thin ``urllib`` client for a running ``repro serve`` daemon.

    Used by ``repro analyze --server`` / ``repro batch --server`` and
    by the sharded coordinator's remote workers; the raw-text
    :meth:`batch_text` preserves the byte-identity of the server's
    batch export.

    ``timeout`` bounds every socket operation (a hung daemon can no
    longer block a client forever), and ``retry`` — a
    :class:`~repro.runner.retry.RetryPolicy` — transparently re-issues
    calls that failed in *retryable* ways: transport errors (connection
    refused while a daemon restarts, resets, timeouts; ``status == 0``)
    and server-side ``5xx``.  Analysis requests are pure and idempotent,
    so re-sending one is always safe.  ``4xx`` rejections are the
    caller's bug and surface immediately.  The default is
    :data:`~repro.runner.retry.NO_RETRY` — single attempt, the
    historical behavior; the CLI's ``--server`` mode and the shard
    coordinator pass explicit policies.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 600.0,
        retry: Optional[RetryPolicy] = None,
    ):
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else NO_RETRY

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return json.loads(self._request("GET", "/healthz")[1])

    def cache_stats(self) -> Dict[str, Any]:
        return json.loads(self._request("GET", "/cache/stats")[1])

    def analyze(
        self, request: Union[AnalysisRequest, Dict[str, Any]]
    ) -> Dict[str, Any]:
        """POST one request; the parsed response payload."""
        return json.loads(self._request("POST", "/analyze", self._wire(request))[1])

    def batch_text(
        self, requests: Sequence[Union[AnalysisRequest, Dict[str, Any]]]
    ) -> str:
        """POST a batch; the *raw* response body — byte-identical to
        the ``repro batch --json`` export for the same jobs."""
        payload = {"requests": [self._wire(request) for request in requests]}
        return self._request("POST", "/batch", payload)[1]

    def batch(
        self, requests: Sequence[Union[AnalysisRequest, Dict[str, Any]]]
    ) -> Dict[str, Any]:
        return json.loads(self.batch_text(requests))

    def run_jobs(self, jobs: Sequence[AnalysisJob]) -> List[JobResult]:
        """POST a chunk of pre-built jobs to ``/shard/run`` and rebuild
        the full results — the remote-shard-worker transport."""
        payload = {"jobs": [job.to_dict() for job in jobs]}
        body = json.loads(self._request("POST", "/shard/run", payload)[1])
        return [JobResult.from_dict(item) for item in body["jobs"]]

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _wire(request: Union[AnalysisRequest, Dict[str, Any]]) -> Dict[str, Any]:
        if isinstance(request, AnalysisRequest):
            return request.to_dict()
        return dict(request)

    @staticmethod
    def _retryable(exc: ServiceError) -> bool:
        """Transport failures and server-side errors are retryable;
        structured 4xx rejections are not (re-sending the same bad
        request cannot succeed)."""
        return exc.status == 0 or exc.status >= 500

    def _request(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Tuple[int, str]:
        """One logical call under the retry policy: up to
        ``retry.attempts`` transmissions of :meth:`_request_once` with
        exponential backoff between them, giving up immediately on
        non-retryable failures."""
        failures = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServiceError as exc:
                if not self._retryable(exc):
                    raise
                failures += 1
                if not self.retry.retries_left(failures):
                    raise
                time.sleep(self.retry.delay(failures))

    def _request_once(
        self, method: str, path: str, payload: Optional[Any] = None
    ) -> Tuple[int, str]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, self._error_message(exc)) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach analysis server at {self.base_url}: {exc.reason}"
            ) from exc
        except (OSError, http.client.HTTPException) as exc:
            # Raw transport failures urllib does not wrap: a connection
            # reset mid-read (ConnectionError), a socket timeout during
            # the response body, a torn HTTP frame.
            raise ServiceError(
                0, f"cannot reach analysis server at {self.base_url}: {exc}"
            ) from exc

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            message = payload.get("error")
        except (ValueError, AttributeError):
            message = None
        return message or f"HTTP {exc.code}: {exc.reason}"
