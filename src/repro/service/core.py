"""The in-process analysis service: one facade over every analyzing
entrypoint, owning the warm state that used to die with each CLI
invocation.

:class:`AnalysisService` wraps :func:`repro.analysis.analyze_twca` /
:func:`repro.analysis.analyze_latency` / the batch runner behind one
request/response entrypoint and keeps three kinds of state hot across
calls:

* **loaded systems**, keyed by content digest — a client can send a
  system once and reference it by digest forever after;
* **the analysis cache** (in-memory, or persistent under
  ``options.cache_dir``) — memoized Theorem 1 fixed points, Omega
  capacities, segment decompositions, exact Def. 10 verdicts, Theorem 3
  packing optima and whole job results;
* **live packing/kernel state** — the ``packing`` and ``jobs`` cache
  categories carry the warm-started :class:`~repro.ilp.engine.PackingEngine`
  optima and compiled staircase kernels across requests, so a repeated
  request recomputes zero fixed points.

Concurrency model: the service is thread-safe and built for the
threaded HTTP front.  Identical in-flight requests are *coalesced* on
the request digest (one compute, N responders); requests that differ
only in their DMM window sizes attach to the in-flight compute when
their windows are a subset, and :meth:`AnalysisService.batch` merges
compatible queued requests into one multi-q analysis.  The computes
themselves run on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
(``workers``, surfaced as ``repro serve --workers``) and genuinely
overlap: the memoization hook of :mod:`repro.analysis.memo` is a
``contextvars.ContextVar`` (each compute thread installs its own
cache), the shared :class:`~repro.runner.cache.AnalysisCache` is locked
internally, and every stateful :class:`~repro.ilp.engine.PackingEngine`
carries a per-engine lock — so nothing is serialized globally anymore.
The one remaining cross-compute coupling is the process-wide kernel
switch: computes that *override* the kernel are serialized among
themselves (both kernels are bit-identical by design, so a concurrent
default-kernel compute observing the override changes nothing but
wall-clock time).
"""

from __future__ import annotations

import contextlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis import ChainTwcaResult, LatencyResult, analyze_latency, analyze_twca
from ..kernel import kernel_name, using_kernel
from ..model import System
from ..model.serialization import system_from_json
from ..runner.batch import BatchResult, BatchRunner, _build_cache
from ..runner.cache import AnalysisCache, merge_stats
from ..runner.jobs import (
    DEFAULT_KS,
    AnalysisJob,
    JobResult,
    default_chain_names,
    execute_job,
    run_chain_job,
)
from .api import (
    AnalysisOptions,
    AnalysisRequest,
    AnalysisResponse,
    RequestError,
    UnknownSystemError,
    derive_jobs,
)


#: Serializes computes that install a kernel *override*: the kernel
#: switch is process-wide state, so overriding computes take turns.
#: Default-kernel computes never touch it — see the module docstring.
_KERNEL_SWITCH_LOCK = threading.Lock()


class _InFlight:
    """One in-flight compute: the leader's window sizes, a completion
    event, and the outcome shared with every coalesced waiter."""

    __slots__ = ("ks", "event", "jobs", "system_digest", "error")

    def __init__(self, ks: Tuple[int, ...]):
        self.ks = tuple(ks)
        self.event = threading.Event()
        self.jobs: Optional[List[JobResult]] = None
        self.system_digest = ""
        self.error: Optional[BaseException] = None


class AnalysisService:
    """Long-lived analysis facade with warm engines and caches.

    Parameters
    ----------
    options:
        The shared analysis knobs (backend, kernel, cache policy);
        defaults to :class:`AnalysisOptions`'s defaults.
    ks:
        Default DMM window sizes for :meth:`runner`-built batches.
    cache:
        Explicit cache instance; overrides the ``options`` cache
        policy (used by tests and embedders sharing a cache).
    workers:
        Maximum concurrently executing computes (the bound of the
        compute thread pool).  ``1`` (default) keeps the serialized
        behavior; the daemon surfaces this as ``repro serve
        --workers``.
    """

    def __init__(
        self,
        options: Optional[AnalysisOptions] = None,
        *,
        ks: Tuple[int, ...] = DEFAULT_KS,
        cache: Optional[AnalysisCache] = None,
        cache_maxsize: int = 200_000,
        workers: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.options = options if options is not None else AnalysisOptions()
        self.ks = tuple(ks)
        self.workers = workers
        if cache is not None:
            self.cache: Optional[AnalysisCache] = cache
        else:
            self.cache = _build_cache(
                self.options.use_cache, self.options.cache_dir, cache_maxsize
            )
        self._systems: Dict[str, System] = {}
        self._lock = threading.Lock()
        # Threads spawn lazily on first submit, so an in-process
        # one-shot service (the CLI path) never pays for the pool.
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-compute"
        )
        self._inflight: Dict[str, _InFlight] = {}
        self._executing = 0
        self.started_at = time.time()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "computes": 0,
            "coalesced": 0,
            "merged": 0,
        }

    def close(self) -> None:
        """Shut the compute pool down (idempotent).  In-flight computes
        finish; the service stays usable for everything that does not
        need the pool (registry, stats)."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Warm system registry
    # ------------------------------------------------------------------
    def register_system(self, system: System) -> str:
        """Keep ``system`` warm and return its content digest — the
        handle later requests can pass as ``system_digest``."""
        digest = system.content_digest()
        with self._lock:
            self._systems[digest] = system
        return digest

    def system_for(self, request: AnalysisRequest) -> System:
        """Resolve the request's system: the warm instance when the
        digest is known, else parse (and register) the inline payload.
        :class:`UnknownSystemError` for an unregistered reference."""
        digest = request.system_identity
        with self._lock:
            system = self._systems.get(digest)
        if system is not None:
            return system
        if request.system_json is None:
            raise UnknownSystemError(
                f"unknown system_digest {request.system_digest!r}; "
                "send the request once with the system inline to register it"
            )
        system = system_from_json(request.system_json)
        # The request carries the canonical serialization, so the digest
        # is already content-true; seed it to skip the re-hash.
        system.__dict__["_content_digest"] = digest
        with self._lock:
            self._systems[digest] = system
        return system

    @property
    def system_count(self) -> int:
        with self._lock:
            return len(self._systems)

    # ------------------------------------------------------------------
    # The request/response entrypoint
    # ------------------------------------------------------------------
    def analyze(self, request: AnalysisRequest) -> AnalysisResponse:
        """Serve one request, coalescing identical in-flight work.

        The first thread in becomes the *leader* and computes; any
        thread arriving with the same :attr:`~AnalysisRequest.compat_key`
        while the compute is in flight attaches as a waiter when its
        window sizes are a subset of the leader's, and is answered from
        the leader's result (byte-identically — see
        :func:`~repro.service.api.derive_jobs`).
        """
        key = request.compat_key
        with self._lock:
            self.counters["requests"] += 1
            entry = self._inflight.get(key)
            if entry is not None and set(request.ks) <= set(entry.ks):
                self.counters["coalesced"] += 1
                leader = False
            else:
                entry = _InFlight(request.ks)
                self._inflight[key] = entry
                leader = True
        if not leader:
            entry.event.wait()
            if entry.error is not None:
                raise entry.error
            return self._respond(request, entry, coalesced=True)
        try:
            # The leader's own thread blocks; the compute runs on the
            # bounded pool so at most ``workers`` analyses execute at
            # once no matter how many HTTP threads pile in.
            entry.system_digest, entry.jobs = self._executor.submit(
                self._execute, request
            ).result()
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            with self._lock:
                if self._inflight.get(key) is entry:
                    del self._inflight[key]
            entry.event.set()
        return self._respond(request, entry, coalesced=False)

    def batch(self, requests: Sequence[AnalysisRequest]) -> BatchResult:
        """Serve many requests as one batch, merging compatible ones.

        Requests sharing a :attr:`~AnalysisRequest.compat_key` (same
        system, chain selector, backend, enumeration, cache policy,
        kernel and label — different window sizes) are folded into a
        single analysis over the union of their windows: one multi-q
        kernel call instead of one per request.  The result order
        follows the request order, and the deterministic export is
        byte-identical to running every request separately — which is
        exactly what ``repro batch --json`` does client-side.
        """
        requests = list(requests)
        if not requests:
            raise RequestError("batch requires at least one request")
        start = time.perf_counter()
        with self._lock:
            self.counters["requests"] += len(requests)
        groups: Dict[str, List[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(request.compat_key, []).append(index)
        per_request: List[Optional[List[JobResult]]] = [None] * len(requests)
        totals: Dict[str, Dict[str, int]] = {}
        pending: List[Tuple[List[int], Tuple[int, ...], Any]] = []
        for indices in groups.values():
            merged_ks = requests[indices[0]].ks
            if len(indices) > 1:
                merged_ks = tuple(
                    sorted({k for i in indices for k in requests[i].ks})
                )
                with self._lock:
                    self.counters["merged"] += len(indices) - 1
            leader = requests[indices[0]]
            if merged_ks != leader.ks:
                leader = AnalysisRequest(
                    system_json=leader.system_json,
                    system_digest=leader.system_digest,
                    chain=leader.chain,
                    ks=merged_ks,
                    backend=leader.backend,
                    enumeration=leader.enumeration,
                    kernel=leader.kernel,
                    use_cache=leader.use_cache,
                    label=leader.label,
                )
            # Distinct groups fan out over the compute pool; each
            # group is still one merged multi-q analysis.
            pending.append(
                (indices, merged_ks, self._executor.submit(self._execute, leader))
            )
        for indices, merged_ks, future in pending:
            _, jobs = future.result()
            for job in jobs:
                merge_stats(totals, job.cache)
            for i in indices:
                per_request[i] = derive_jobs(jobs, requests[i].ks, merged_ks)
        flat = [job for group in per_request for job in group or []]
        return BatchResult(
            jobs=flat,
            workers=1,
            wall_time=time.perf_counter() - start,
            cache_stats=totals,
        )

    def run_jobs(self, jobs: Sequence[AnalysisJob]) -> List[JobResult]:
        """Execute pre-built :class:`AnalysisJob` units under the
        service cache — the ``POST /shard/run`` compute path.

        Jobs carry all their own parameters (the coordinator built
        them), so unlike :meth:`batch` there is no request resolution:
        each job fans out over the compute pool and the results come
        back in submission order, exactly as
        :func:`~repro.runner.jobs.execute_job` would produce them
        in-process — which is what keeps remote shards byte-identical
        to local ones.
        """
        jobs = list(jobs)
        if not jobs:
            raise RequestError("shard run requires at least one job")
        with self._lock:
            self.counters["requests"] += 1
            self.counters["computes"] += len(jobs)
            self._executing += 1
        try:
            futures = [
                self._executor.submit(execute_job, job, self.cache) for job in jobs
            ]
            return [future.result() for future in futures]
        finally:
            with self._lock:
                self._executing -= 1

    def _respond(
        self, request: AnalysisRequest, entry: _InFlight, *, coalesced: bool
    ) -> AnalysisResponse:
        assert entry.jobs is not None
        return AnalysisResponse(
            request_digest=request.digest,
            system_digest=entry.system_digest,
            jobs=derive_jobs(entry.jobs, request.ks, entry.ks),
            coalesced=coalesced,
        )

    def _execute(self, request: AnalysisRequest) -> Tuple[str, List[JobResult]]:
        """One actual compute: resolve the system, select the chains,
        run the per-chain jobs under the service cache (and the
        request's kernel, when it names one).  Runs on the compute
        pool; overlapping computes are safe — see the module
        docstring."""
        system = self.system_for(request)
        if request.chain is not None:
            if request.chain not in system:
                raise RequestError(
                    f"no chain named {request.chain!r} in system "
                    f"{system.name!r}; have "
                    f"{sorted(c.name for c in system.chains)}"
                )
            names: Tuple[str, ...] = (request.chain,)
        else:
            names = default_chain_names(system)
        cache = self.cache if request.use_cache else None
        label = request.label or system.name
        with self._lock:
            self.counters["computes"] += 1
            self._executing += 1
        try:
            with contextlib.ExitStack() as stack:
                if request.kernel is not None:
                    stack.enter_context(_KERNEL_SWITCH_LOCK)
                    stack.enter_context(using_kernel(request.kernel))
                jobs = [
                    run_chain_job(
                        system,
                        name,
                        ks=request.ks,
                        backend=request.backend,
                        enumeration=request.enumeration,
                        label=label,
                        cache=cache,
                    )
                    for name in names
                ]
        finally:
            with self._lock:
                self._executing -= 1
        return system.content_digest(), jobs

    # ------------------------------------------------------------------
    # In-process conveniences (the CLI's non-batch subcommands)
    # ------------------------------------------------------------------
    def activate(self) -> contextlib.AbstractContextManager:
        """Context manager installing the service cache (a no-op when
        caching is disabled) — for callers that run analysis-layer
        functions directly but want the service's warm state."""
        if self.cache is None:
            return contextlib.nullcontext()
        return self.cache.activate()

    def analyze_chain(self, system: System, chain_name: str) -> ChainTwcaResult:
        """The full-fidelity TWCA of one chain under the service's
        options and warm cache — the in-process path of
        ``repro analyze``, which needs the rich
        :class:`~repro.analysis.twca.ChainTwcaResult` for reporting."""
        with self.activate():
            return analyze_twca(
                system,
                system[chain_name],
                backend=self.options.backend,
                enumeration=self.options.enumeration,
            )

    def latency(self, system: System, chain_name: str) -> LatencyResult:
        """Theorem 2 worst-case latency under the service cache."""
        with self.activate():
            return analyze_latency(system, system[chain_name])

    def runner(
        self, *, workers: int = 1, ks: Optional[Tuple[int, ...]] = None
    ) -> BatchRunner:
        """A batch runner sharing this service's cache and options —
        the in-process path of ``repro batch`` (``workers > 1`` fans
        out over processes; the per-worker caches then share the
        persistent ``cache_dir``, when one is configured)."""
        return BatchRunner(
            workers=workers,
            ks=tuple(ks) if ks is not None else self.ks,
            backend=self.options.backend,
            enumeration=self.options.enumeration,
            cache=self.cache,
            cache_dir=self.options.cache_dir,
            use_cache=self.options.use_cache,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Any]:
        """The ``GET /cache/stats`` payload: per-category cache
        counters plus the service-level request accounting, the
        compute-pool bound (``workers``), the number of computes
        executing right now (``inflight``) and the active numeric
        kernel (``kernel`` — how operators tell numpy from pure-python
        deployments apart)."""
        with self._lock:
            service: Dict[str, Any] = dict(self.counters)
            service["systems"] = len(self._systems)
            service["workers"] = self.workers
            service["inflight"] = self._executing
        service["uptime"] = time.time() - self.started_at
        service["kernel"] = kernel_name()
        return {
            "cache": self.cache.stats_dict() if self.cache is not None else {},
            "service": service,
        }
