"""Typed request/response surface of the analysis service.

One analysis — in-process through :class:`~repro.service.core.AnalysisService`
or over HTTP through ``repro serve`` — is described by an
:class:`AnalysisRequest`: the system (inline, or referenced by content
digest once the daemon has it warm), a chain selector, the DMM window
sizes, the packing backend, the numeric kernel and the cache policy.
Requests are content-addressed: :attr:`AnalysisRequest.digest` is the
identity the daemon coalesces identical in-flight work on, and
:attr:`AnalysisRequest.compat_key` (the digest *minus* the window sizes)
is the identity compatible requests are merged on — two requests that
differ only in ``ks`` share one multi-q analysis.

:class:`AnalysisResponse` carries the resulting per-chain
:class:`~repro.runner.jobs.JobResult` payloads.  Its deterministic
export mirrors the batch runner's: the ``jobs`` entries of a response
are byte-identical to the corresponding ``repro batch --json`` export.

Malformed requests raise :class:`RequestError` (mapped to structured
HTTP 400 responses by the server); :class:`UnknownSystemError` is the
specific case of a ``system_digest`` the service has never seen.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..ilp import BACKENDS, DEFAULT_BACKEND
from ..model import System
from ..model.serialization import canonical_system_json, system_from_dict
from ..runner.jobs import DEFAULT_KS, JobResult


class RequestError(ValueError):
    """A malformed analysis request (HTTP 400)."""


class UnknownSystemError(RequestError):
    """The request referenced a ``system_digest`` the service has not
    loaded; resend the request with the system inline to register it."""


#: Valid ``enumeration`` values (mirrors ``analyze_twca``).
ENUMERATIONS: Tuple[str, ...] = ("pruned", "exhaustive")

#: Valid per-request kernel selections (``None`` inherits the daemon's).
KERNELS: Tuple[str, ...] = ("auto", "numpy", "python")


@dataclass(frozen=True)
class AnalysisOptions:
    """The analysis knobs shared by every analyzing entrypoint.

    One dataclass carries what used to be five copy-pasted argparse
    options (``--backend``/``--kernel``/``--cache-dir``/``--no-cache``/
    ``--exhaustive``) uniformly through ``analyze``, ``experiment``,
    ``batch``, ``report`` and ``serve`` — and configures an
    :class:`~repro.service.core.AnalysisService` the same way.
    """

    backend: str = DEFAULT_BACKEND
    kernel: Optional[str] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    exhaustive: bool = False

    @property
    def enumeration(self) -> str:
        """The combination-pipeline mode implied by ``exhaustive``."""
        return "exhaustive" if self.exhaustive else "pruned"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RequestError(message)


@dataclass(frozen=True)
class AnalysisRequest:
    """One unit of service work: analyze ``chain`` (or every typical
    deadline chain) of a system for the DMM windows ``ks``.

    Exactly one of ``system_json`` (the canonical serialization, for
    first contact) and ``system_digest`` (the content digest of a
    system the service already holds warm) identifies the system.
    ``kernel=None`` inherits the daemon's numeric kernel; either choice
    is byte-identical by design.  ``use_cache=False`` bypasses the
    service's memoization for this request only.
    """

    system_json: Optional[str] = None
    system_digest: Optional[str] = None
    chain: Optional[str] = None
    ks: Tuple[int, ...] = DEFAULT_KS
    backend: str = DEFAULT_BACKEND
    enumeration: str = "pruned"
    kernel: Optional[str] = None
    use_cache: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        _require(
            (self.system_json is None) != (self.system_digest is None),
            "exactly one of 'system' and 'system_digest' is required",
        )
        _require(
            self.chain is None or (isinstance(self.chain, str) and self.chain),
            "'chain' must be a non-empty string when given",
        )
        object.__setattr__(self, "ks", tuple(self.ks))
        _require(bool(self.ks), "'ks' must name at least one DMM window size")
        for k in self.ks:
            _require(
                isinstance(k, int) and not isinstance(k, bool) and k >= 1,
                f"'ks' entries must be integers >= 1, got {k!r}",
            )
        _require(
            self.backend in BACKENDS,
            f"unknown backend {self.backend!r}; choose from {sorted(BACKENDS)}",
        )
        _require(
            self.enumeration in ENUMERATIONS,
            f"unknown enumeration {self.enumeration!r}; "
            f"choose from {list(ENUMERATIONS)}",
        )
        _require(
            self.kernel is None or self.kernel in KERNELS,
            f"unknown kernel {self.kernel!r}; choose from {list(KERNELS)}",
        )
        _require(isinstance(self.use_cache, bool), "'use_cache' must be a boolean")
        _require(isinstance(self.label, str), "'label' must be a string")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_system(cls, system: System, **kwargs: Any) -> "AnalysisRequest":
        """Build a request carrying ``system`` inline (canonically
        serialized, so the request digest is content-addressed)."""
        return cls(system_json=canonical_system_json(system), **kwargs)

    @classmethod
    def from_dict(cls, data: Any) -> "AnalysisRequest":
        """Parse and validate a wire-form request dict.

        ``system`` may be the plain-dict serialization or an
        already-canonical JSON string; it is always re-canonicalized
        through the model layer, so equivalent payloads share a digest.
        Unknown fields are rejected rather than silently dropped.
        """
        _require(isinstance(data, Mapping), "request body must be a JSON object")
        known = {
            "system",
            "system_digest",
            "chain",
            "ks",
            "backend",
            "enumeration",
            "kernel",
            "use_cache",
            "label",
        }
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown request fields: {unknown}")

        system_json: Optional[str] = None
        raw_system = data.get("system")
        if raw_system is not None:
            if isinstance(raw_system, str):
                try:
                    raw_system = json.loads(raw_system)
                except json.JSONDecodeError as exc:
                    raise RequestError(f"'system' is not valid JSON: {exc}") from exc
            _require(
                isinstance(raw_system, Mapping),
                "'system' must be a system object (or its JSON string)",
            )
            try:
                system = system_from_dict(dict(raw_system))
            except (KeyError, TypeError, ValueError) as exc:
                raise RequestError(f"invalid system: {exc}") from exc
            system_json = canonical_system_json(system)

        ks = data.get("ks", DEFAULT_KS)
        _require(
            isinstance(ks, (list, tuple)),
            f"'ks' must be a list of window sizes, got {type(ks).__name__}",
        )
        return cls(
            system_json=system_json,
            system_digest=data.get("system_digest"),
            chain=data.get("chain"),
            ks=tuple(ks),
            backend=data.get("backend", DEFAULT_BACKEND),
            enumeration=data.get("enumeration", "pruned"),
            kernel=data.get("kernel"),
            use_cache=data.get("use_cache", True),
            label=data.get("label", ""),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Wire form (the inverse of :meth:`from_dict`).  The system
        travels as its parsed dict; defaults are included so a request
        round-trips field-for-field."""
        data: Dict[str, Any] = {
            "chain": self.chain,
            "ks": list(self.ks),
            "backend": self.backend,
            "enumeration": self.enumeration,
            "kernel": self.kernel,
            "use_cache": self.use_cache,
            "label": self.label,
        }
        if self.system_json is not None:
            data["system"] = json.loads(self.system_json)
        else:
            data["system_digest"] = self.system_digest
        return data

    # ------------------------------------------------------------------
    # Content identity
    # ------------------------------------------------------------------
    @property
    def system_identity(self) -> str:
        """The content digest of the requested system — hashed from the
        inline serialization, or the reference digest verbatim (the
        same value :meth:`repro.model.System.content_digest` yields)."""
        if self.system_digest is not None:
            return self.system_digest
        assert self.system_json is not None
        return hashlib.sha256(self.system_json.encode("utf-8")).hexdigest()

    def _identity_payload(self, *, with_ks: bool) -> str:
        fields = [
            self.system_identity,
            self.chain,
            self.backend,
            self.enumeration,
            self.kernel,
            self.use_cache,
            self.label,
        ]
        if with_ks:
            fields.append(list(self.ks))
        return json.dumps(fields, separators=(",", ":"))

    @property
    def digest(self) -> str:
        """Content digest of the whole request: identical requests —
        inline or by reference — share it, and the daemon coalesces
        concurrent in-flight work on it."""
        payload = self._identity_payload(with_ks=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def compat_key(self) -> str:
        """The request identity *minus* the window sizes: requests that
        agree on it differ only in ``ks`` and can be served by one
        merged multi-q analysis."""
        payload = self._identity_payload(with_ks=False)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def derive_jobs(
    jobs: List[JobResult], ks: Tuple[int, ...], computed_ks: Tuple[int, ...]
) -> List[JobResult]:
    """Project merged multi-q results onto one request's window sizes.

    Every :class:`JobResult` field except ``dmm`` is independent of the
    evaluated windows, and ``dmm(k)`` is a pure per-``k`` function of
    the (system, chain, backend) content — so sub-selecting the merged
    curve is byte-identical to having analyzed the narrower request
    directly (observability fields are zeroed: they belong to the
    compute, not to the derived view).
    """
    if tuple(ks) == tuple(computed_ks):
        return jobs
    return [
        replace(
            job,
            dmm={k: job.dmm[k] for k in ks} if job.ok else {},
            elapsed=0.0,
            cache={},
            packing={},
        )
        for job in jobs
    ]


@dataclass
class AnalysisResponse:
    """The service's answer to one :class:`AnalysisRequest`.

    ``jobs`` holds one :class:`~repro.runner.jobs.JobResult` per
    analyzed chain, in deterministic chain order.  ``coalesced`` is
    observability (this response was served by attaching to an
    identical in-flight compute) and is deliberately excluded from the
    payload, so warm, cold and coalesced responses to one request are
    byte-identical.
    """

    request_digest: str
    system_digest: str
    jobs: List[JobResult] = field(default_factory=list)
    coalesced: bool = False

    @property
    def job_count(self) -> int:
        return len(self.jobs)

    @property
    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.jobs:
            counts[job.status] = counts.get(job.status, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic payload.  The ``jobs`` entries are exactly the
        deterministic :meth:`JobResult.to_dict` exports of the batch
        runner, so service and ``repro batch --json`` outputs agree
        byte-for-byte job-by-job."""
        return {
            "request_digest": self.request_digest,
            "system_digest": self.system_digest,
            "job_count": self.job_count,
            "status_counts": self.status_counts,
            "jobs": [job.to_dict(deterministic=True) for job in self.jobs],
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
