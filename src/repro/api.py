"""The stable public API surface of :mod:`repro`.

Library users should import from here (or from :mod:`repro` itself,
which re-exports the same names) rather than from deep submodules —
submodule paths are implementation detail and may move between
releases; this module will not.

Quickstart::

    from repro.api import AnalysisRequest, AnalysisService, load_system_file

    service = AnalysisService()
    system = load_system_file("system.json")
    response = service.analyze(
        AnalysisRequest.from_system(system, chain="sigma_c", ks=(1, 10, 100))
    )
    print(response.to_json())
"""

from .analysis import (
    AnalysisError,
    ChainTwcaResult,
    DeadlineMissModel,
    GuaranteeStatus,
    LatencyResult,
    analyze_latency,
    analyze_twca,
)
from .model import System, SystemBuilder
from .model.serialization import (
    load_system_file,
    system_from_json,
    system_to_json,
)
from .runner import AnalysisCache, BatchResult, BatchRunner, JobResult
from .service import (
    AnalysisOptions,
    AnalysisRequest,
    AnalysisResponse,
    AnalysisService,
    RequestError,
    ServiceClient,
    ServiceError,
    UnknownSystemError,
    serve_forever,
    start_server,
)

__all__ = [
    # model
    "System",
    "SystemBuilder",
    "load_system_file",
    "system_from_json",
    "system_to_json",
    # analysis
    "AnalysisError",
    "ChainTwcaResult",
    "DeadlineMissModel",
    "GuaranteeStatus",
    "LatencyResult",
    "analyze_latency",
    "analyze_twca",
    # batch runner
    "AnalysisCache",
    "BatchResult",
    "BatchRunner",
    "JobResult",
    # service
    "AnalysisOptions",
    "AnalysisRequest",
    "AnalysisResponse",
    "AnalysisService",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "UnknownSystemError",
    "serve_forever",
    "start_server",
]
