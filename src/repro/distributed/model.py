"""Distributed system model: chains spanning several SPP resources.

The paper analyzes uniprocessor systems and closes with: *"This paper is
an important step towards using TWCA for the practical design of
distributed embedded systems."*  This subpackage takes that step in the
standard Compositional Performance Analysis (CPA) way:

* a **resource** is one SPP-scheduled processor (or bus);
* a **distributed chain** is a sequence of tasks, each mapped to a
  resource;
* the chain decomposes into **legs** — maximal subchains on one
  resource — connected by event streams;
* each leg is analyzed locally with the paper's Theorem 1/2 (and
  TWCA), and its *output event model* feeds the next leg (jitter
  propagation);
* the global analysis iterates until the event models converge.

Everything here composes the uniprocessor machinery from
:mod:`repro.analysis`; nothing re-derives it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..arrivals import EventModel
from ..model import ChainKind, Task


@dataclass(frozen=True)
class MappedTask:
    """A task plus the name of the resource executing it."""

    task: Task
    resource: str

    @property
    def name(self) -> str:
        return self.task.name


@dataclass(frozen=True)
class DistributedChain:
    """A chain whose tasks may live on different resources.

    Attributes mirror :class:`~repro.model.TaskChain`; legs (the
    per-resource subchains) are derived, not stored.
    """

    name: str
    tasks: Tuple[MappedTask, ...]
    activation: EventModel
    deadline: float = float("inf")
    kind: ChainKind = ChainKind.SYNCHRONOUS
    overload: bool = False

    def __init__(
        self,
        name: str,
        tasks: Sequence[MappedTask],
        activation: EventModel,
        deadline: float = float("inf"),
        kind: ChainKind = ChainKind.SYNCHRONOUS,
        overload: bool = False,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "tasks", tuple(tasks))
        object.__setattr__(self, "activation", activation)
        object.__setattr__(self, "deadline", deadline)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "overload", overload)
        if not self.tasks:
            raise ValueError(f"chain {name} has no tasks")
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"chain {name}: duplicate task names")

    def legs(self) -> List[Tuple[str, Tuple[Task, ...]]]:
        """Maximal runs of consecutive tasks on the same resource, in
        chain order: ``[(resource, tasks), ...]``."""
        result: List[Tuple[str, Tuple[Task, ...]]] = []
        current_resource: Optional[str] = None
        current: List[Task] = []
        for mapped in self.tasks:
            if mapped.resource != current_resource:
                if current:
                    result.append((current_resource, tuple(current)))
                current_resource = mapped.resource
                current = [mapped.task]
            else:
                current.append(mapped.task)
        result.append((current_resource, tuple(current)))
        return result

    @property
    def resources(self) -> List[str]:
        """Resources visited, in order, without repetition of runs."""
        return [resource for resource, _ in self.legs()]

    @property
    def total_wcet(self) -> float:
        return sum(t.task.wcet for t in self.tasks)

    @property
    def has_deadline(self) -> bool:
        return self.deadline != float("inf")


class DistributedSystem:
    """A set of resources and distributed chains mapped onto them."""

    def __init__(
        self, chains: Sequence[DistributedChain], name: str = "distributed"
    ):
        self.name = name
        self.chains: Tuple[DistributedChain, ...] = tuple(chains)
        if not self.chains:
            raise ValueError("need at least one chain")
        self._by_name: Dict[str, DistributedChain] = {}
        seen_tasks = set()
        resources = set()
        for chain in self.chains:
            if chain.name in self._by_name:
                raise ValueError(f"duplicate chain name {chain.name!r}")
            self._by_name[chain.name] = chain
            for mapped in chain.tasks:
                if mapped.name in seen_tasks:
                    raise ValueError(f"task {mapped.name!r} mapped more than once")
                seen_tasks.add(mapped.name)
                resources.add(mapped.resource)
        self.resources: Tuple[str, ...] = tuple(sorted(resources))

    def __getitem__(self, name: str) -> DistributedChain:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no chain named {name!r}; have {sorted(self._by_name)}"
            ) from None

    def __iter__(self):
        return iter(self.chains)

    def __len__(self) -> int:
        return len(self.chains)

    @property
    def overload_chains(self) -> Tuple[DistributedChain, ...]:
        return tuple(c for c in self.chains if c.overload)

    def tasks_on(self, resource: str) -> List[MappedTask]:
        """All mapped tasks living on ``resource``."""
        return [
            mapped
            for chain in self.chains
            for mapped in chain.tasks
            if mapped.resource == resource
        ]

    def __repr__(self) -> str:
        return (
            f"DistributedSystem({self.name!r}: "
            f"{len(self.chains)} chains on "
            f"{len(self.resources)} resources)"
        )


def on(resource: str, task: Task) -> MappedTask:
    """Tiny readability helper: ``on("cpu0", Task(...))``."""
    return MappedTask(task, resource)
