"""Global analysis of distributed chain systems.

The classic CPA outer loop around the paper's uniprocessor analyses:

1. decompose every distributed chain into per-resource *legs*;
2. analyze each leg locally (Theorem 1/2) under the current input
   event models;
3. derive each leg's output event model (jitter propagation,
   :mod:`repro.distributed.propagation`) and feed it to the next leg;
4. repeat until the event models — and hence the leg latencies —
   converge (the loop is monotone: jitters only grow).

End-to-end results compose the converged legs:

* worst-case end-to-end latency = sum of leg WCLs (the standard
  compositional bound);
* end-to-end deadline miss model = sum of per-leg DMMs under a split
  of the deadline into per-leg budgets (a union bound: if the chain
  misses, at least one leg overran its budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.exceptions import (
    AnalysisError,
    BusyWindowDivergence,
    NotAnalyzable,
)
from ..analysis.latency import LatencyResult, analyze_latency
from ..analysis.twca import analyze_twca
from ..arrivals import EventModel
from ..model import System, TaskChain
from .model import DistributedSystem
from .propagation import propagate

#: Cap on the global convergence loop.
MAX_GLOBAL_ITERATIONS = 64


@dataclass
class LegResult:
    """One converged leg of a distributed chain."""

    chain_name: str
    index: int
    resource: str
    local_chain: TaskChain
    input_model: EventModel
    latency: LatencyResult

    @property
    def wcl(self) -> float:
        return self.latency.wcl

    @property
    def bcl(self) -> float:
        """Best-case leg latency: uninterrupted best-case execution."""
        return sum(t.bcet for t in self.local_chain.tasks)


@dataclass
class ChainEndToEndResult:
    """End-to-end view of one distributed chain after convergence."""

    chain_name: str
    deadline: float
    legs: List[LegResult]

    @property
    def wcl(self) -> float:
        """End-to-end worst-case latency (sum of converged leg WCLs)."""
        return sum(leg.wcl for leg in self.legs)

    @property
    def meets_deadline(self) -> bool:
        return self.wcl <= self.deadline

    def leg_budgets(self) -> List[float]:
        """Per-leg deadline budgets: each leg's typical demand plus a
        proportional share of the end-to-end slack.

        Budgets sum to the deadline.  Raises ``NotAnalyzable`` for
        chains without a finite deadline.
        """
        if math.isinf(self.deadline):
            raise NotAnalyzable(f"chain {self.chain_name!r} has no finite deadline")
        costs = [max(leg.bcl, 1e-12) for leg in self.legs]
        total = sum(costs)
        slack = self.deadline - total
        if slack < 0:
            # Budgets below the best case are useless; scale down
            # proportionally anyway (every leg will look missed, which
            # is the honest verdict).
            return [self.deadline * c / total for c in costs]
        return [c + slack * c / total for c in costs]


@dataclass
class DistributedAnalysisResult:
    """Output of :func:`analyze_distributed`."""

    system: DistributedSystem
    chains: Dict[str, ChainEndToEndResult]
    resource_systems: Dict[str, System]
    iterations: int

    def __getitem__(self, chain_name: str) -> ChainEndToEndResult:
        return self.chains[chain_name]


def _leg_chain_name(chain_name: str, index: int) -> str:
    return f"{chain_name}#leg{index}"


def _build_resource_systems(
    dsystem: DistributedSystem,
    models: Dict[Tuple[str, int], EventModel],
    budgets: Optional[Dict[Tuple[str, int], float]] = None,
) -> Dict[str, System]:
    """Local uniprocessor systems, one per resource, with the given
    per-leg activation models (and optional per-leg deadlines)."""
    per_resource: Dict[str, List[TaskChain]] = {
        resource: [] for resource in dsystem.resources
    }
    for chain in dsystem.chains:
        for index, (resource, tasks) in enumerate(chain.legs()):
            key = (chain.name, index)
            deadline = math.inf
            if budgets is not None and key in budgets:
                deadline = budgets[key]
            per_resource[resource].append(
                TaskChain(
                    _leg_chain_name(chain.name, index),
                    tasks,
                    models[key],
                    deadline,
                    chain.kind,
                    chain.overload,
                )
            )
    return {
        resource: System(
            chains,
            name=f"{dsystem.name}@{resource}",
            allow_shared_priorities=True,
        )
        for resource, chains in per_resource.items()
        if chains
    }


def analyze_distributed(
    dsystem: DistributedSystem, *, max_iterations: int = MAX_GLOBAL_ITERATIONS
) -> DistributedAnalysisResult:
    """Run the global fixed-point analysis over all resources.

    Raises
    ------
    BusyWindowDivergence
        If a resource is overloaded or the global loop does not
        converge within ``max_iterations``.
    """
    # Initial models: every leg sees its chain's source model
    # (zero-distortion optimistic start; the loop only inflates).
    models: Dict[Tuple[str, int], EventModel] = {}
    for chain in dsystem.chains:
        for index, _ in enumerate(chain.legs()):
            models[(chain.name, index)] = chain.activation

    previous_wcls: Optional[Dict[Tuple[str, int], float]] = None
    for iteration in range(1, max_iterations + 1):
        systems = _build_resource_systems(dsystem, models)
        wcls: Dict[Tuple[str, int], float] = {}
        latencies: Dict[Tuple[str, int], LatencyResult] = {}
        # Local analyses under current models.
        for resource, system in systems.items():
            for local in system.chains:
                base_name, leg_tag = local.name.rsplit("#leg", 1)
                key = (base_name, int(leg_tag))
                result = analyze_latency(system, local)
                wcls[key] = result.wcl
                latencies[key] = result
        # Re-derive downstream models.
        new_models = dict(models)
        for chain in dsystem.chains:
            legs = chain.legs()
            model = chain.activation
            for index, (resource, tasks) in enumerate(legs):
                key = (chain.name, index)
                new_models[key] = model
                bcl = sum(t.bcet for t in tasks)
                model = propagate(
                    model, wcls[key], bcl, last_task_bcet=tasks[-1].bcet
                )
        if previous_wcls == wcls and all(
            new_models[k] == models[k] for k in models
        ):
            break
        models = new_models
        previous_wcls = wcls
    else:
        raise BusyWindowDivergence(
            dsystem.name,
            max_iterations,
            "global event-model iteration did not converge",
        )

    chains: Dict[str, ChainEndToEndResult] = {}
    for chain in dsystem.chains:
        legs = []
        for index, (resource, tasks) in enumerate(chain.legs()):
            key = (chain.name, index)
            system = systems[resource]
            legs.append(
                LegResult(
                    chain_name=chain.name,
                    index=index,
                    resource=resource,
                    local_chain=system[_leg_chain_name(chain.name, index)],
                    input_model=models[key],
                    latency=latencies[key],
                )
            )
        chains[chain.name] = ChainEndToEndResult(
            chain_name=chain.name, deadline=chain.deadline, legs=legs
        )
    return DistributedAnalysisResult(
        system=dsystem, chains=chains, resource_systems=systems, iterations=iteration
    )


def distributed_dmm(
    dsystem: DistributedSystem,
    chain_name: str,
    k: int,
    *,
    backend: str = "branch_bound",
    analysis: Optional[DistributedAnalysisResult] = None,
) -> int:
    """End-to-end deadline miss bound for a distributed chain.

    Splits the end-to-end deadline into per-leg budgets, runs the
    paper's TWCA per leg against its budget, and sums the per-leg
    bounds (union bound), clamped to ``k``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if analysis is None:
        analysis = analyze_distributed(dsystem)
    e2e = analysis[chain_name]
    if e2e.meets_deadline:
        return 0
    budgets = e2e.leg_budgets()
    # Rebuild the resource systems with the budget deadlines attached.
    models = {
        (c.name, i): (
            analysis[c.name].legs[i].input_model
            if c.name in analysis.chains
            else c.activation
        )
        for c in dsystem.chains
        for i, _ in enumerate(c.legs())
    }
    budget_map = {(chain_name, i): budget for i, budget in enumerate(budgets)}
    systems = _build_resource_systems(dsystem, models, budget_map)
    total = 0
    for index, leg in enumerate(e2e.legs):
        system = systems[leg.resource]
        local = system[_leg_chain_name(chain_name, index)]
        try:
            result = analyze_twca(system, local, backend=backend)
        except AnalysisError:
            return k
        total += result.dmm(k)
        if total >= k:
            return k
    return min(total, k)
