"""Distributed extension: chains spanning multiple SPP resources.

Implements the paper's stated next step (Sec. VII) in the standard CPA
style: per-resource application of the uniprocessor analyses, output
event-model propagation between legs, a global convergence loop, and
end-to-end latency / deadline-miss composition.
"""

from .analysis import (
    ChainEndToEndResult,
    DistributedAnalysisResult,
    LegResult,
    analyze_distributed,
    distributed_dmm,
)
from .model import DistributedChain, DistributedSystem, MappedTask, on
from .propagation import PropagatedModel, jitter_of, propagate
from .sim import (
    DistributedSimulationResult,
    DistributedSimulator,
    worst_case_distributed_activations,
)

__all__ = [
    "MappedTask",
    "on",
    "DistributedChain",
    "DistributedSystem",
    "PropagatedModel",
    "propagate",
    "jitter_of",
    "LegResult",
    "ChainEndToEndResult",
    "DistributedAnalysisResult",
    "analyze_distributed",
    "distributed_dmm",
    "DistributedSimulator",
    "DistributedSimulationResult",
    "worst_case_distributed_activations",
]
