"""Discrete-event simulation of distributed chain systems.

Generalizes the uniprocessor engine to multiple SPP resources running
in parallel: each resource independently executes the highest-priority
ready job mapped to it, and a chain instance migrates across resources
as its tasks complete.  Semantics mirror :mod:`repro.sim.engine`:

* synchronous chains serialize instances end-to-end;
* per-task FIFO ordering across instances;
* deadline-agnostic execution;
* completions at an instant precede arrivals at that instant
  (the half-open window convention of the analyses).

Used to validate the distributed analysis empirically — leg and
end-to-end latencies must stay below the converged bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .model import DistributedChain, DistributedSystem


@dataclass
class DistributedInstanceRecord:
    """Lifecycle of one chain instance across resources."""

    chain: str
    index: int
    activation: float
    finish: Optional[float] = None
    task_finishes: Dict[str, float] = field(default_factory=dict)

    @property
    def latency(self) -> Optional[float]:
        if self.finish is None:
            return None
        return self.finish - self.activation


@dataclass
class DistributedSimulationResult:
    """Simulation output for a distributed system."""

    system: DistributedSystem
    horizon: float
    instances: Dict[str, List[DistributedInstanceRecord]]

    def latencies(self, chain: str) -> List[float]:
        return [rec.latency for rec in self.instances[chain]
                if rec.latency is not None]

    def max_latency(self, chain: str) -> float:
        observed = self.latencies(chain)
        return max(observed) if observed else 0.0

    def miss_flags(self, chain: str) -> List[bool]:
        deadline = self.system[chain].deadline
        return [rec.latency > deadline
                for rec in self.instances[chain]
                if rec.latency is not None]

    def empirical_dmm(self, chain: str, k: int) -> int:
        flags = self.miss_flags(chain)
        if len(flags) < k:
            return sum(flags)
        window = sum(flags[:k])
        best = window
        for i in range(k, len(flags)):
            window += flags[i] - flags[i - k]
            best = max(best, window)
        return best

    def leg_latency(self, chain: str, instance: int,
                    leg_tasks: Sequence[str], leg_input: float) -> float:
        """Observed latency of one leg of one instance (finish of the
        leg's last task minus ``leg_input``)."""
        record = self.instances[chain][instance]
        return record.task_finishes[leg_tasks[-1]] - leg_input


@dataclass
class _Job:
    chain: DistributedChain
    task_index: int
    instance: int
    remaining: float

    @property
    def mapped(self):
        return self.chain.tasks[self.task_index]

    @property
    def priority(self) -> float:
        return self.mapped.task.priority

    @property
    def task_name(self) -> str:
        return self.mapped.name

    @property
    def resource(self) -> str:
        return self.mapped.resource


class DistributedSimulator:
    """Event-driven simulation over all resources of a system."""

    def __init__(self, system: DistributedSystem):
        self.system = system

    def run(self, activations: Dict[str, Sequence[float]],
            horizon: float) -> DistributedSimulationResult:
        records: Dict[str, List[DistributedInstanceRecord]] = {}
        releases: List[Tuple[float, DistributedChain, int]] = []
        for chain in self.system.chains:
            times = [t for t in activations.get(chain.name, ())
                     if t <= horizon]
            if sorted(times) != list(times):
                raise ValueError(
                    f"activations of {chain.name!r} must be sorted")
            records[chain.name] = [
                DistributedInstanceRecord(chain.name, i, t)
                for i, t in enumerate(times)]
            releases.extend((t, chain, i) for i, t in enumerate(times))
        releases.sort(key=lambda item: item[0])

        ready: Dict[str, List[_Job]] = {r: [] for r in
                                        self.system.resources}
        sync_busy: Dict[str, bool] = {c.name: False
                                      for c in self.system.chains}
        sync_backlog: Dict[str, List[_Job]] = {c.name: []
                                               for c in self.system.chains}
        task_turn: Dict[str, int] = {}
        fifo_backlog: Dict[str, List[_Job]] = {}
        release_index = 0
        time = 0.0

        def admit(job: _Job) -> None:
            turn = task_turn.setdefault(job.task_name, 0)
            if job.instance == turn:
                ready[job.resource].append(job)
            else:
                fifo_backlog.setdefault(job.task_name, []).append(job)

        def release_header(chain: DistributedChain, instance: int) -> None:
            job = _Job(chain, 0, instance, chain.tasks[0].task.wcet)
            if chain.kind.value == "synchronous":
                if sync_busy[chain.name]:
                    sync_backlog[chain.name].append(job)
                    return
                sync_busy[chain.name] = True
            admit(job)

        def finish_job(job: _Job, at: float) -> None:
            record = records[job.chain.name][job.instance]
            record.task_finishes[job.task_name] = at
            task_turn[job.task_name] = job.instance + 1
            queued = fifo_backlog.get(job.task_name, [])
            for i, blocked in enumerate(queued):
                if blocked.instance == job.instance + 1:
                    ready[blocked.resource].append(queued.pop(i))
                    break
            if job.task_index + 1 < len(job.chain.tasks):
                nxt = job.chain.tasks[job.task_index + 1]
                admit(_Job(job.chain, job.task_index + 1, job.instance,
                           nxt.task.wcet))
                return
            record.finish = at
            if job.chain.kind.value == "synchronous":
                backlog = sync_backlog[job.chain.name]
                if backlog:
                    admit(backlog.pop(0))
                else:
                    sync_busy[job.chain.name] = False

        def top_of(resource: str) -> Optional[_Job]:
            jobs = ready[resource]
            if not jobs:
                return None
            return max(jobs, key=lambda j: (j.priority, -j.instance))

        iterations = 0
        while True:
            iterations += 1
            if iterations > 10_000_000:
                raise RuntimeError("distributed simulation stalled")
            # Completions at `time` precede arrivals at `time`.
            progressed = True
            while progressed:
                progressed = False
                for resource in self.system.resources:
                    top = top_of(resource)
                    if top is not None and top.remaining <= 1e-12:
                        ready[resource].remove(top)
                        finish_job(top, time)
                        progressed = True

            while (release_index < len(releases)
                   and releases[release_index][0] <= time):
                _, chain, instance = releases[release_index]
                release_header(chain, instance)
                release_index += 1

            running = [top_of(r) for r in self.system.resources]
            running = [job for job in running if job is not None]
            if not running:
                if release_index >= len(releases):
                    break
                time = releases[release_index][0]
                continue

            next_arrival = (releases[release_index][0]
                            if release_index < len(releases)
                            else math.inf)
            if next_arrival - time <= 1e-9:
                time = next_arrival
                continue
            step = min(min(job.remaining for job in running),
                       next_arrival - time)
            if step <= 0:
                # Zero-remaining jobs were drained above; this is a
                # float-residue case — close the smallest job out.
                smallest = min(running, key=lambda j: j.remaining)
                ready[smallest.resource].remove(smallest)
                finish_job(smallest, time)
                continue
            for job in running:
                job.remaining -= step
            time += step
            for job in running:
                if job.remaining <= 1e-12:
                    ready[job.resource].remove(job)
                    finish_job(job, time)

        return DistributedSimulationResult(self.system, horizon, records)


def worst_case_distributed_activations(system: DistributedSystem,
                                       horizon: float
                                       ) -> Dict[str, List[float]]:
    """Critical-instant streams for every chain of a distributed
    system."""
    streams: Dict[str, List[float]] = {}
    for chain in system.chains:
        times: List[float] = []
        i = 0
        while True:
            t = chain.activation.delta_minus(i + 1)
            if t > horizon:
                break
            times.append(t)
            i += 1
        streams[chain.name] = times
    return streams
