"""Discrete-event simulation of distributed chain systems.

Generalizes the uniprocessor engine to multiple SPP resources running
in parallel: each resource independently executes the highest-priority
ready job mapped to it, and a chain instance migrates across resources
as its tasks complete.  Semantics mirror :mod:`repro.sim.engine`:

* synchronous chains serialize instances end-to-end;
* per-task FIFO ordering across instances;
* deadline-agnostic execution;
* completions at an instant precede arrivals at that instant
  (the half-open window convention of the analyses).

Used to validate the distributed analysis empirically — leg and
end-to-end latencies must stay below the converged bounds.

Under the numpy kernel the run is fast-forwarded with the same
event-calendar classification as :mod:`repro.sim.calendar`: the
serialized busy-finish prefix scan remains a sound bound here because
the multi-resource loop is globally work-conserving (whenever work is
pending, the earliest unfinished instance of some chain has a ready
job, so at least one resource is busy and total work drains at rate
>= 1).  Instances isolated behind the conservative margin execute
alone across all resources, so their task finishes are the plain
sequential float sums the scalar loop would compute; contended
stretches replay through the identical scalar loop seeded with the
per-task FIFO counters.  Results are bit-identical across kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel import numpy_or_none
from .model import DistributedChain, DistributedSystem


@dataclass
class DistributedInstanceRecord:
    """Lifecycle of one chain instance across resources."""

    chain: str
    index: int
    activation: float
    finish: Optional[float] = None
    task_finishes: Dict[str, float] = field(default_factory=dict)

    @property
    def latency(self) -> Optional[float]:
        if self.finish is None:
            return None
        return self.finish - self.activation


@dataclass
class DistributedSimulationResult:
    """Simulation output for a distributed system."""

    system: DistributedSystem
    horizon: float
    instances: Dict[str, List[DistributedInstanceRecord]]

    def latencies(self, chain: str) -> List[float]:
        return [
            rec.latency for rec in self.instances[chain] if rec.latency is not None
        ]

    def max_latency(self, chain: str) -> float:
        observed = self.latencies(chain)
        return max(observed) if observed else 0.0

    def miss_flags(self, chain: str) -> List[bool]:
        deadline = self.system[chain].deadline
        return [
            rec.latency > deadline
            for rec in self.instances[chain]
            if rec.latency is not None
        ]

    def empirical_dmm(self, chain: str, k: int) -> int:
        flags = self.miss_flags(chain)
        if len(flags) < k:
            return sum(flags)
        window = sum(flags[:k])
        best = window
        for i in range(k, len(flags)):
            window += flags[i] - flags[i - k]
            best = max(best, window)
        return best

    def leg_latency(
        self, chain: str, instance: int, leg_tasks: Sequence[str], leg_input: float
    ) -> float:
        """Observed latency of one leg of one instance (finish of the
        leg's last task minus ``leg_input``)."""
        record = self.instances[chain][instance]
        return record.task_finishes[leg_tasks[-1]] - leg_input


@dataclass
class _Job:
    chain: DistributedChain
    task_index: int
    instance: int
    remaining: float

    @property
    def mapped(self):
        return self.chain.tasks[self.task_index]

    @property
    def priority(self) -> float:
        return self.mapped.task.priority

    @property
    def task_name(self) -> str:
        return self.mapped.name

    @property
    def resource(self) -> str:
        return self.mapped.resource


class DistributedSimulator:
    """Event-driven simulation over all resources of a system."""

    def __init__(self, system: DistributedSystem):
        self.system = system

    def run(
        self, activations: Dict[str, Sequence[float]], horizon: float
    ) -> DistributedSimulationResult:
        records: Dict[str, List[DistributedInstanceRecord]] = {}
        releases: List[Tuple[float, DistributedChain, int]] = []
        for chain in self.system.chains:
            times = [
                float(t) for t in activations.get(chain.name, ()) if t <= horizon
            ]
            if sorted(times) != times:
                raise ValueError(f"activations of {chain.name!r} must be sorted")
            records[chain.name] = [
                DistributedInstanceRecord(chain.name, i, t)
                for i, t in enumerate(times)
            ]
            releases.extend((t, chain, i) for i, t in enumerate(times))
        releases.sort(key=lambda item: item[0])

        np = numpy_or_none()
        if np is not None and releases:
            self._run_calendar(np, records, releases)
        else:
            self._event_loop(releases, records, {})
        return DistributedSimulationResult(self.system, horizon, records)

    def _run_calendar(
        self,
        np,
        records: Dict[str, List[DistributedInstanceRecord]],
        releases: List[Tuple[float, DistributedChain, int]],
    ) -> None:
        """Fast-forward isolated instances; scalar-replay the rest.

        Mirrors :func:`repro.sim.calendar.run_calendar`: the prefix-scan
        busy-finish bound classifies every release, misclassification
        only routes releases to the exact scalar loop.
        """
        from ..sim.calendar import MARGIN_ABS, MARGIN_REL_FLOOR, MARGIN_REL_PER_EVENT

        chains = self.system.chains
        chain_index = {chain.name: c for c, chain in enumerate(chains)}
        total = len(releases)
        t = np.asarray([item[0] for item in releases])
        cid = np.asarray([chain_index[item[1].name] for item in releases])
        inst = np.asarray([item[2] for item in releases])

        exec_times = [
            [float(mapped.task.wcet) for mapped in chain.tasks] for chain in chains
        ]
        chain_work = np.asarray([sum(w) for w in exec_times])
        work = chain_work[cid]
        cum = np.cumsum(work)
        finish_bound = cum + np.maximum.accumulate(t - (cum - work))
        margin = (
            MARGIN_ABS
            + max(MARGIN_REL_FLOOR, MARGIN_REL_PER_EVENT * total) * np.abs(t)
        )

        idle_before = np.empty(total, dtype=bool)
        idle_before[0] = True
        idle_before[1:] = t[1:] - finish_bound[:-1] > margin[1:]
        gap_after = np.empty(total, dtype=bool)
        gap_after[-1] = True
        gap_after[:-1] = t[1:] - (t[:-1] + work[:-1]) > margin[1:]
        fast = idle_before & gap_after

        fast_idx = np.flatnonzero(fast)
        if fast_idx.size:
            fast_cid = cid[fast_idx]
            for c, chain in enumerate(chains):
                sel = fast_idx[fast_cid == c]
                if not sel.size:
                    continue
                instances = inst[sel].tolist()
                clock = t[sel]
                rows = []
                for wcet in exec_times[c]:
                    clock = clock + wcet
                    rows.append(clock.tolist())
                names = [mapped.name for mapped in chain.tasks]
                chain_records = records[chain.name]
                for pos, instance in enumerate(instances):
                    record = chain_records[instance]
                    for name, row in zip(names, rows):
                        record.task_finishes[name] = row[pos]
                    record.finish = rows[-1][pos]

        slow_idx = np.flatnonzero(~fast)
        if slow_idx.size:
            slow = [releases[i] for i in slow_idx.tolist()]
            cuts = np.flatnonzero(np.diff(slow_idx) > 1) + 1
            bounds = [0, *cuts.tolist(), len(slow)]
            for lo, hi in zip(bounds, bounds[1:]):
                pending = slow[lo:hi]
                task_turn: Dict[str, int] = {}
                for _, chain, instance in pending:
                    if chain.tasks[0].name not in task_turn:
                        for mapped in chain.tasks:
                            task_turn[mapped.name] = instance
                self._event_loop(pending, records, task_turn)

    def _event_loop(
        self,
        releases: List[Tuple[float, DistributedChain, int]],
        records: Dict[str, List[DistributedInstanceRecord]],
        task_turn: Dict[str, int],
    ) -> None:
        ready: Dict[str, List[_Job]] = {r: [] for r in self.system.resources}
        sync_busy: Dict[str, bool] = {c.name: False for c in self.system.chains}
        sync_backlog: Dict[str, List[_Job]] = {
            c.name: [] for c in self.system.chains
        }
        fifo_backlog: Dict[str, List[_Job]] = {}
        release_index = 0
        time = 0.0

        def admit(job: _Job) -> None:
            turn = task_turn.setdefault(job.task_name, 0)
            if job.instance == turn:
                ready[job.resource].append(job)
            else:
                fifo_backlog.setdefault(job.task_name, []).append(job)

        def release_header(chain: DistributedChain, instance: int) -> None:
            job = _Job(chain, 0, instance, float(chain.tasks[0].task.wcet))
            if chain.kind.value == "synchronous":
                if sync_busy[chain.name]:
                    sync_backlog[chain.name].append(job)
                    return
                sync_busy[chain.name] = True
            admit(job)

        def finish_job(job: _Job, at: float) -> None:
            record = records[job.chain.name][job.instance]
            record.task_finishes[job.task_name] = at
            task_turn[job.task_name] = job.instance + 1
            queued = fifo_backlog.get(job.task_name, [])
            for i, blocked in enumerate(queued):
                if blocked.instance == job.instance + 1:
                    ready[blocked.resource].append(queued.pop(i))
                    break
            if job.task_index + 1 < len(job.chain.tasks):
                nxt = job.chain.tasks[job.task_index + 1]
                admit(
                    _Job(
                        job.chain,
                        job.task_index + 1,
                        job.instance,
                        float(nxt.task.wcet),
                    )
                )
                return
            record.finish = at
            if job.chain.kind.value == "synchronous":
                backlog = sync_backlog[job.chain.name]
                if backlog:
                    admit(backlog.pop(0))
                else:
                    sync_busy[job.chain.name] = False

        def top_of(resource: str) -> Optional[_Job]:
            jobs = ready[resource]
            if not jobs:
                return None
            return max(jobs, key=lambda j: (j.priority, -j.instance))

        iterations = 0
        while True:
            iterations += 1
            if iterations > 10_000_000:
                raise RuntimeError("distributed simulation stalled")
            # Completions at `time` precede arrivals at `time`.
            progressed = True
            while progressed:
                progressed = False
                for resource in self.system.resources:
                    top = top_of(resource)
                    if top is not None and top.remaining <= 1e-12:
                        ready[resource].remove(top)
                        finish_job(top, time)
                        progressed = True

            while release_index < len(releases) and releases[release_index][0] <= time:
                _, chain, instance = releases[release_index]
                release_header(chain, instance)
                release_index += 1

            running = [top_of(r) for r in self.system.resources]
            running = [job for job in running if job is not None]
            if not running:
                if release_index >= len(releases):
                    break
                time = releases[release_index][0]
                continue

            next_arrival = (
                releases[release_index][0]
                if release_index < len(releases)
                else math.inf
            )
            if next_arrival - time <= 1e-9:
                time = next_arrival
                continue
            step = min(min(job.remaining for job in running), next_arrival - time)
            if step <= 0:
                # Zero-remaining jobs were drained above; this is a
                # float-residue case — close the smallest job out.
                smallest = min(running, key=lambda j: j.remaining)
                ready[smallest.resource].remove(smallest)
                finish_job(smallest, time)
                continue
            for job in running:
                job.remaining -= step
            time += step
            for job in running:
                if job.remaining <= 1e-12:
                    ready[job.resource].remove(job)
                    finish_job(job, time)


def worst_case_distributed_activations(
    system: DistributedSystem, horizon: float
) -> Dict[str, List[float]]:
    """Critical-instant streams for every chain of a distributed
    system, generated through the batched stream builder (one array op
    per chain under the numpy kernel)."""
    from ..sim.activations import worst_case_stream

    return {
        chain.name: worst_case_stream(chain.activation, horizon)
        for chain in system.chains
    }
