"""Output event models: how activation streams distort across a leg.

Classic CPA jitter propagation: if a leg processes an input stream with
best-case latency ``bcl`` and worst-case latency ``wcl``, its output
stream is the input stream *shifted by a per-event delay in
[bcl, wcl]*.  Consequently

* the output jitter grows by the response-time spread
  ``wcl - bcl``, and
* the minimum distance shrinks by the same spread, floored by the
  best-case execution of the leg's last task (two outputs cannot be
  produced closer than that on one resource).

For periodic-with-jitter inputs this yields the familiar
``P_out = P_in, J_out = J_in + (wcl - bcl)``.  For arbitrary curves we
apply the same distortion point-wise to ``delta_minus`` /
``delta_plus``.
"""

from __future__ import annotations

import math

from ..arrivals import EventModel, PeriodicModel


class PropagatedModel(EventModel):
    """The output stream of a leg: input distorted by a response-time
    spread of ``jitter_gain = wcl - bcl`` and floored by
    ``min_output_distance``."""

    def __init__(
        self,
        source: EventModel,
        jitter_gain: float,
        min_output_distance: float = 0.0,
    ):
        if jitter_gain < 0:
            raise ValueError("jitter_gain must be non-negative")
        if min_output_distance < 0:
            raise ValueError("min_output_distance must be non-negative")
        self.source = source
        self.jitter_gain = jitter_gain
        self.min_output_distance = min_output_distance

    def delta_minus(self, k: int) -> float:
        if k <= 1:
            return 0
        squeezed = self.source.delta_minus(k) - self.jitter_gain
        floor = (k - 1) * self.min_output_distance
        return max(squeezed, floor, 0)

    def delta_plus(self, k: int) -> float:
        if k <= 1:
            return 0
        spread = self.source.delta_plus(k)
        if math.isinf(spread):
            return math.inf
        return spread + self.jitter_gain

    def rate(self) -> float:
        return self.source.rate()

    def __repr__(self) -> str:
        return (
            f"PropagatedModel({self.source!r}, "
            f"jitter_gain={self.jitter_gain!r}, "
            f"min_output_distance={self.min_output_distance!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PropagatedModel)
            and self.source == other.source
            and self.jitter_gain == other.jitter_gain
            and self.min_output_distance == other.min_output_distance
        )

    def __hash__(self) -> int:
        return hash(
            (
                PropagatedModel,
                self.source,
                self.jitter_gain,
                self.min_output_distance,
            )
        )


def propagate(
    source: EventModel, wcl: float, bcl: float, last_task_bcet: float = 0.0
) -> EventModel:
    """Output event model of a leg with latency range ``[bcl, wcl]``.

    Periodic inputs stay periodic (the closed form keeps ``eta_plus``
    cheap); everything else becomes a :class:`PropagatedModel`.
    """
    if wcl < bcl:
        raise ValueError(f"wcl {wcl} below bcl {bcl}")
    gain = wcl - bcl
    if gain == 0 and last_task_bcet == 0:
        return source
    if isinstance(source, PeriodicModel):
        jitter = source.jitter + gain
        min_distance = max(source.min_distance - gain, last_task_bcet)
        if jitter >= source.period and min_distance <= 0:
            # A positive floor keeps eta_plus finite over tiny windows;
            # the smallest sound floor is the last task's best case, or
            # an epsilon when that is 0 (denser = more pessimistic =
            # still sound).
            min_distance = min(source.period, source.period * 1e-9) or 1e-9
        min_distance = min(min_distance, source.period)
        return PeriodicModel(source.period, jitter, max(min_distance, 0))
    return PropagatedModel(source, gain, last_task_bcet)


def jitter_of(model: EventModel, probe: int = 16) -> float:
    """Estimated jitter of a model: ``max_k (k-1) * P - delta_minus(k)``
    with ``P`` the long-run period; exact for PeriodicModel.  Used by
    the convergence test of the global analysis loop."""
    if isinstance(model, PeriodicModel):
        return model.jitter
    rate = model.rate()
    if rate <= 0 or math.isinf(rate):
        return math.inf
    period = 1.0 / rate
    worst = 0.0
    for k in range(2, probe + 1):
        d = model.delta_minus(k)
        if math.isinf(d):
            continue
        worst = max(worst, (k - 1) * period - d)
    return worst
