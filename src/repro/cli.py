"""Command-line interface.

Subcommands::

    repro analyze [--system FILE.json] [--chain NAME] [--k K ...]
        TWCA of one or all chains (default: the Fig. 4 case study).
    repro simulate [--system FILE.json] [--horizon T]
        Critical-instant simulation with an ASCII schedule.
    repro experiment {table1,table2,figure5} [--samples N] [--seed S]
        Regenerate a paper artifact on stdout.
    repro batch [--system FILE ...|--random N] [--workers W] [--json]
        Parallel TWCA over many (system, chain) jobs via the batch
        runner; the --json export is identical for any worker count.
    repro serve [--host H] [--port P] [--workers N]
        Long-lived analysis daemon (HTTP/JSON): keeps engines and
        caches hot across requests and runs up to N computes
        concurrently; see POST /analyze, POST /batch, POST /shard/run,
        GET /cache/stats, GET /healthz.
    repro shard-worker [--host H] [--port P] [--workers N]
        A shard-worker endpoint for `repro shard --worker URL`: the
        same daemon under its deployment name (the chunk route is
        POST /shard/run).
    repro shard [--corpus DIR|--system FILE ...|--random N] [--shards S]
        Sharded TWCA: partition the jobs over S local worker processes
        and/or remote --worker URLs with work-stealing and bounded
        retries; the merged --json export is byte-identical to
        --serial (and to `repro batch --json`).
    repro corpus {generate,verify}
        Seeded benchmark corpora: generate a reproducible population
        of systems (same seed, same manifest digest — on any host,
        under either kernel) or re-verify one against its manifest.
    repro cache DIR [--prune-older-than AGE]
        Report (and optionally prune by age) a persistent analysis
        cache directory, per category.

    Every analyzing subcommand (analyze, experiment, batch, report,
    serve) accepts one shared block of analysis options — --backend,
    --kernel, --cache-dir, --no-cache, --exhaustive — wired through
    :func:`add_analysis_options` into one
    :class:`~repro.service.AnalysisOptions`.  ``analyze`` and ``batch``
    are clients of the same :class:`~repro.service.AnalysisService`
    facade the daemon runs: in-process by default, against a daemon
    with ``--server URL`` — the batch JSON export is byte-identical
    either way.

The module is intentionally thin: all logic lives in the library; the
CLI parses arguments, loads/creates systems and prints reports.
"""

from __future__ import annotations

import argparse
import random
import sys
import urllib.error
from typing import Any, Dict, List, Optional

from .ilp import BACKENDS, DEFAULT_BACKEND
from .kernel import KernelUnavailable, kernel_name, set_kernel
from .model.serialization import load_system_file
from .report.histogram import figure5_panel
from .report.tables import (
    dmm_table,
    format_packing_stats,
    format_table,
    twca_summary,
    wcl_table,
)
from .runner import (
    BatchResult,
    JobResult,
    RetryPolicy,
    ShardExecutionError,
    ShardLog,
    run_sharded,
)
from .runner.jobs import DEFAULT_KS
from .service import (
    AnalysisOptions,
    AnalysisRequest,
    AnalysisService,
    ServiceClient,
    ServiceError,
    serve_forever,
)
from .sim import render_gantt, simulate_worst_case
from .synth import figure4_system, labeled_random_systems, random_systems
from .synth.corpus import CorpusError, CorpusManifest, CorpusSpec, generate_corpus


def add_analysis_options(parser: argparse.ArgumentParser) -> None:
    """The shared analysis knobs of every analyzing subcommand — one
    block instead of five copy-pasted ``add_argument`` calls."""
    group = parser.add_argument_group("analysis options")
    group.add_argument(
        "--backend",
        default=DEFAULT_BACKEND,
        choices=sorted(BACKENDS),
        help="ILP backend for the Theorem 3 packing engine",
    )
    group.add_argument(
        "--kernel",
        default=None,
        choices=("auto", "numpy", "python"),
        help="numeric kernel for curves, fixed points and the "
        "simplex tableau (default: REPRO_KERNEL, else auto = "
        "numpy when available); results are byte-identical "
        "either way",
    )
    group.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent analysis cache shared by all workers and "
        "later runs (created on demand); warm runs skip every "
        "memoized fixed-point recomputation",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable analysis memoization entirely (escape hatch; "
        "results are identical, only slower)",
    )
    group.add_argument(
        "--exhaustive",
        action="store_true",
        help="materialize and test every overload combination instead "
        "of the lazy dominance-pruned frontier search (reference "
        "path; exports are identical, only slower)",
    )


def analysis_options(args: argparse.Namespace) -> AnalysisOptions:
    """The :class:`AnalysisOptions` carried by the shared flag block."""
    return AnalysisOptions(
        backend=args.backend,
        kernel=args.kernel,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        exhaustive=args.exhaustive,
    )


def _retry_policy(args: argparse.Namespace) -> RetryPolicy:
    """The retry policy carried by the shared ``--retries`` /
    ``--retry-delay`` flags (transport failures and 5xx only; see
    :class:`~repro.service.ServiceClient`)."""
    return RetryPolicy(attempts=args.retries, base_delay=args.retry_delay)


def _service_client(args: argparse.Namespace) -> ServiceClient:
    """A :class:`ServiceClient` for ``--server`` mode, honoring the
    shared ``--timeout``/``--retries``/``--retry-delay`` flags."""
    return ServiceClient(args.server, timeout=args.timeout, retry=_retry_policy(args))


def _load_system(path: Optional[str], calibrated: bool):
    if path is None:
        return figure4_system(calibrated=calibrated)
    return load_system_file(path)


def _jobs_summary(jobs: List[JobResult]) -> str:
    """One-screen table of job results (the server-mode ``analyze``
    report; mirrors the rows of :meth:`BatchResult.summary`)."""
    rows = []
    for job in jobs:
        dmm = ", ".join(f"dmm({k})={v}" for k, v in sorted(job.dmm.items()))
        wcl = "-" if job.wcl is None else f"{job.wcl:g}"
        rows.append((job.label, job.chain_name, job.status, wcl, dmm or "-"))
    return format_table(("job", "chain", "status", "WCL", "DMM"), rows)


def _cmd_analyze(args: argparse.Namespace) -> int:
    options = analysis_options(args)
    system = _load_system(args.system, args.calibrated)
    if args.server:
        request = AnalysisRequest.from_system(
            system,
            chain=args.chain,
            ks=tuple(args.k) if args.k else DEFAULT_KS,
            backend=options.backend,
            enumeration=options.enumeration,
            kernel=options.kernel,
            use_cache=options.use_cache,
        )
        payload = _service_client(args).analyze(request)
        jobs = [JobResult.from_dict(job) for job in payload["jobs"]]
        print(_jobs_summary(jobs))
        return 0
    service = AnalysisService(options)
    names = (
        [args.chain]
        if args.chain
        else [c.name for c in system.typical_chains if c.has_deadline]
    )
    for name in names:
        result = service.analyze_chain(system, name)
        print(twca_summary(result))
        if args.k:
            print(dmm_table(result, args.k))
            stats = result.packing_stats()
            if stats:
                print(
                    f"packing engine [{options.backend}]: "
                    f"{format_packing_stats(stats)}",
                    file=sys.stderr,
                )
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    system = _load_system(args.system, args.calibrated)
    result = simulate_worst_case(system, args.horizon)
    for chain in system.chains:
        finished = result.latencies(chain.name)
        if not finished:
            continue
        print(
            f"{chain.name}: {len(finished)} instances, "
            f"max latency {max(finished):g}, "
            f"misses {result.miss_count(chain.name)}"
        )
    print()
    print(
        render_gantt(
            result, until=min(args.horizon, args.gantt_until), width=args.width
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    options = analysis_options(args)
    service = AnalysisService(options)
    if args.which == "table1":
        system = figure4_system(calibrated=args.calibrated)
        results = {
            name: service.latency(system, name) for name in ("sigma_c", "sigma_d")
        }
        deadlines = {name: system[name].deadline for name in results}
        print("Table I: worst-case latencies of the case study")
        print(wcl_table(results, deadlines))
    elif args.which == "table2":
        for calibrated in (False, True):
            system = figure4_system(calibrated=calibrated)
            result = service.analyze_chain(system, "sigma_c")
            mode = "calibrated" if calibrated else "printed parameters"
            print(f"Table II ({mode}):")
            print(dmm_table(result, args.k or [3, 76, 250]))
            print()
    elif args.which == "figure5":
        rng = random.Random(args.seed)
        base = figure4_system(calibrated=args.calibrated)
        values = {"sigma_c": [], "sigma_d": []}
        for system in random_systems(base, args.samples, rng):
            for name in values:
                result = service.analyze_chain(system, name)
                values[name].append(0 if result.is_schedulable else result.dmm(10))
        for name in ("sigma_c", "sigma_d"):
            print(figure5_panel(values[name], name))
            print()
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.which)
    return 0


def _batch_stderr_report(batch, timings: bool) -> None:
    """Observability lines on stderr (stdout stays byte-reproducible).

    Per-job timing lines are emitted by the parent, in submission
    order, tagged with the job id — never interleaved from workers, so
    every line is attributable to its job for any worker count."""
    if timings:
        for index, job in enumerate(batch.jobs):
            print(
                f"[job {index:04d}] {job.label}/{job.chain_name}: "
                f"{job.elapsed:.3f}s",
                file=sys.stderr,
            )
    merged = ", ".join(
        f"{category} {stats.get('hits', 0)}h/{stats.get('misses', 0)}m"
        f"/{stats.get('disk_hits', 0)}d"
        for category, stats in sorted(batch.cache_stats.items())
    )
    print(
        f"{len(batch)} jobs in {batch.wall_time:.2f}s with "
        f"{batch.workers} worker(s), kernel {kernel_name()}, "
        f"cache hit rate {batch.cache_hit_rate:.0%}"
        + (f" [{merged}]" if merged else ""),
        file=sys.stderr,
    )
    packing: dict = {}
    for job in batch.jobs:
        for key, value in job.packing.items():
            packing[key] = packing.get(key, 0) + value
    if packing:
        print(f"packing engine: {format_packing_stats(packing)}", file=sys.stderr)


def _batch_requests(
    args: argparse.Namespace, options: AnalysisOptions
) -> List[AnalysisRequest]:
    """The service requests equivalent to one local batch invocation —
    same systems, labels and (file-then-chain) expansion order, so the
    daemon's export is byte-identical to the local one."""
    common: Dict[str, Any] = dict(
        ks=tuple(args.k) if args.k else DEFAULT_KS,
        backend=options.backend,
        enumeration=options.enumeration,
        kernel=options.kernel,
        use_cache=options.use_cache,
    )
    chains = args.chain or [None]
    requests = []
    if args.system:
        for path in args.system:
            system = load_system_file(path)
            requests.extend(
                AnalysisRequest.from_system(
                    system, chain=chain, label=str(path), **common
                )
                for chain in chains
            )
    else:
        base = figure4_system(calibrated=args.calibrated)
        for label, system in labeled_random_systems(base, args.random, args.seed):
            requests.extend(
                AnalysisRequest.from_system(system, chain=chain, label=label, **common)
                for chain in chains
            )
    return requests


def _cmd_batch(args: argparse.Namespace) -> int:
    options = analysis_options(args)
    if args.server:
        if args.timings:
            print(
                "error: --timings is local observability; it is not "
                "available with --server",
                file=sys.stderr,
            )
            return 2
        client = _service_client(args)
        text = client.batch_text(_batch_requests(args, options))
        if args.json:
            if args.output:
                with open(args.output, "w", encoding="utf-8") as handle:
                    handle.write(text + "\n")
                print(f"wrote {args.output}", file=sys.stderr)
            else:
                print(text)
        else:
            import json as _json

            payload = _json.loads(text)
            batch = BatchResult(
                jobs=[JobResult.from_dict(job) for job in payload["jobs"]]
            )
            print(batch.summary())
        return 0

    service = AnalysisService(options)
    runner = service.runner(
        workers=args.workers, ks=tuple(args.k) if args.k else DEFAULT_KS
    )
    if args.system:
        # System files are read and parsed inside the workers (memoized
        # per process, revalidated by content digest), so parse
        # I/O overlaps analysis instead of serializing in the parent.
        batch = runner.run_paths(args.system, args.chain or None)
    else:
        base = figure4_system(calibrated=args.calibrated)
        labeled = labeled_random_systems(base, args.random, args.seed)
        labels = [label for label, _ in labeled]
        systems = [system for _, system in labeled]
        batch = runner.run_systems(systems, args.chain or None, labels=labels)

    if args.json:
        text = batch.to_json(deterministic=not args.timings)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
        _batch_stderr_report(batch, args.timings)
    else:
        print(batch.summary())
        if args.timings:
            _batch_stderr_report(batch, True)
    return 1 if batch.errors and args.strict else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    return serve_forever(
        args.host, args.port, analysis_options(args), workers=args.workers
    )


def _shard_systems(args: argparse.Namespace):
    """The (systems, labels) of one ``repro shard`` invocation.

    Corpus entries are named ``sys-<index>`` by the generator, so the
    default labels are already stable; file inputs keep the batch
    convention of labeling by path."""
    if args.corpus:
        manifest = CorpusManifest.load(args.corpus)
        systems = list(manifest.systems(limit=args.limit))
        return systems, None
    if args.system:
        systems = [load_system_file(path) for path in args.system]
        return systems, [str(path) for path in args.system]
    base = figure4_system(calibrated=args.calibrated)
    labeled = labeled_random_systems(base, args.random, args.seed)
    return [system for _, system in labeled], [label for label, _ in labeled]


def _cmd_shard(args: argparse.Namespace) -> int:
    options = analysis_options(args)
    if args.shards < 0:
        print("error: --shards must be >= 0", file=sys.stderr)
        return 2
    if not args.serial and args.shards + len(args.worker) < 1:
        print(
            "error: need at least one shard: --shards N and/or --worker URL",
            file=sys.stderr,
        )
        return 2
    service = AnalysisService(options)
    runner = service.runner(ks=tuple(args.k) if args.k else DEFAULT_KS)
    systems, labels = _shard_systems(args)
    jobs = runner.jobs_for(systems, args.chain or None, labels=labels)
    if args.serial:
        # The single-process reference the merged export must be
        # byte-identical to (the CI smoke diffs the two).
        batch = runner.run(jobs)
    else:
        log = ShardLog(verbose=args.verbose)
        try:
            batch = run_sharded(
                jobs,
                shards=args.shards,
                worker_urls=args.worker,
                use_cache=options.use_cache,
                cache_dir=options.cache_dir,
                chunk_size=args.chunk_size,
                retry=_retry_policy(args),
                timeout=args.timeout,
                log=log,
            )
        except ShardExecutionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.json:
        text = batch.to_json()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
        _batch_stderr_report(batch, False)
    else:
        print(batch.summary())
    return 1 if batch.errors and args.strict else 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    try:
        if args.corpus_command == "generate":
            spec = CorpusSpec(
                count=args.count,
                seed=args.seed,
                family=args.family,
                utilization=tuple(args.utilization),
                chains=args.chains,
                tasks_per_chain=tuple(args.tasks_per_chain),
            )
            progress = (
                ShardLog(verbose=True).tag("corpus") if args.verbose else None
            )
            manifest = generate_corpus(
                spec,
                args.dir,
                progress=progress,
                progress_every=args.progress_every,
            )
            print(
                f"generated {manifest.count} systems under {args.dir} "
                f"(family {spec.family}, seed {spec.seed})\n"
                f"manifest digest: {manifest.manifest_digest}"
            )
        else:
            manifest = CorpusManifest.load(args.dir)
            checked = manifest.verify(limit=args.limit)
            scope = (
                "all system files"
                if args.limit is None
                else f"first {checked} system files"
            )
            print(
                f"corpus at {args.dir} verified: {manifest.count} entries, "
                f"{scope} match\nmanifest digest: {manifest.manifest_digest}"
            )
    except (CorpusError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


#: Suffix multipliers of the ``--prune-older-than`` age syntax.
_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_age(text: str) -> float:
    """Parse an age like ``90d``, ``12h``, ``30m``, ``45s`` or plain
    seconds into seconds.  Raises ``ValueError`` on junk."""
    import math

    raw = text.strip().lower()
    if not raw:
        raise ValueError("empty age")
    unit = 1.0
    if raw[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[raw[-1]]
        raw = raw[:-1]
    value = float(raw)
    # float() happily accepts "nan"/"inf"; NaN passes every comparison
    # guard and would make an age-based prune delete *everything*.
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"age must be a non-negative number: {text!r}")
    return value * unit


def _format_bytes(size: float) -> str:
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or suffix == "GiB":
            return f"{size:.0f} {suffix}" if suffix == "B" else f"{size:.1f} {suffix}"
        size /= 1024
    return f"{size:.1f} GiB"  # pragma: no cover - unreachable


def _cmd_cache(args: argparse.Namespace) -> int:
    import os

    from .runner.diskcache import DiskStore

    if not os.path.isdir(args.dir):
        print(f"no cache directory at {args.dir!r}", file=sys.stderr)
        return 2

    # Read-only handle: inspecting (or pruning) a directory must never
    # plant cache subdirectories in it.
    store = DiskStore(args.dir, create=False)
    if args.prune_older_than is not None:
        try:
            age = parse_age(args.prune_older_than)
        except ValueError as exc:
            print(f"bad --prune-older-than value: {exc}", file=sys.stderr)
            return 2
        removed = store.prune_older_than(age)
        dropped = sum(entry["removed"] for entry in removed.values())
        freed = sum(entry["bytes"] for entry in removed.values())
        print(
            f"pruned {dropped} entries ({_format_bytes(freed)}) older "
            f"than {args.prune_older_than}"
        )
    stats = store.category_stats()
    rows = []
    for category in sorted(stats):
        entry = stats[category]
        note = f"{entry['stale_tmp']} stale tmp" if entry["stale_tmp"] else ""
        rows.append(
            (category, entry["entries"], _format_bytes(entry["bytes"]), note)
        )
    total_entries = sum(entry["entries"] for entry in stats.values())
    total_bytes = sum(entry["bytes"] for entry in stats.values())
    rows.append(("total", total_entries, _format_bytes(total_bytes), ""))
    print(format_table(("category", "entries", "size", "notes"), rows))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .report.markdown import reproduction_report

    options = analysis_options(args)
    service = AnalysisService(options)
    with service.activate():
        text = reproduction_report(
            samples=args.samples, seed=args.seed, backend=options.backend
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TWCA for task chains (DATE 2017 reproduction)"
    )
    parser.add_argument(
        "--calibrated",
        action="store_true",
        help="use the calibrated overload curves (reproduces Table II exactly)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_client_options(command) -> None:
        """Transport knobs shared by every command that talks HTTP:
        ``--server`` clients and the shard coordinator's remote
        workers (also reused as the coordinator's chunk retry
        budget)."""
        command.add_argument(
            "--timeout",
            type=float,
            default=600.0,
            metavar="SECONDS",
            help="per-call socket timeout for daemon requests "
            "(default 600; a hung daemon can no longer block forever)",
        )
        command.add_argument(
            "--retries",
            type=int,
            default=3,
            metavar="N",
            help="total attempts per call for transport failures and "
            "server 5xx errors (default 3; analysis requests are "
            "idempotent, so re-sending is always safe)",
        )
        command.add_argument(
            "--retry-delay",
            type=float,
            default=0.1,
            metavar="SECONDS",
            help="base backoff before the first retry, doubling per "
            "failure (default 0.1)",
        )

    def add_server_option(command) -> None:
        command.add_argument(
            "--server",
            metavar="URL",
            help="send the analysis to a running `repro serve` daemon "
            "instead of computing in-process (exports are "
            "byte-identical either way)",
        )
        add_client_options(command)

    analyze = sub.add_parser("analyze", help="TWCA of chains")
    analyze.add_argument("--system", help="system JSON file")
    analyze.add_argument("--chain", help="analyze only this chain")
    analyze.add_argument(
        "--k", type=int, nargs="*", help="window sizes for the DMM table"
    )
    add_analysis_options(analyze)
    add_server_option(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    simulate = sub.add_parser("simulate", help="critical-instant simulation")
    simulate.add_argument("--system", help="system JSON file")
    simulate.add_argument("--horizon", type=float, default=2000.0)
    simulate.add_argument("--gantt-until", type=float, default=600.0)
    simulate.add_argument("--width", type=int, default=100)
    add_analysis_options(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument("which", choices=("table1", "table2", "figure5"))
    experiment.add_argument("--samples", type=int, default=1000)
    experiment.add_argument("--seed", type=int, default=2017)
    experiment.add_argument("--k", type=int, nargs="*")
    add_analysis_options(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    batch = sub.add_parser(
        "batch", help="parallel TWCA over many (system, chain) jobs"
    )
    batch.add_argument(
        "--system",
        nargs="+",
        help="system JSON files (default: a random priority sweep of "
        "the case study); at least one file when given, so an "
        "empty shell glob fails loudly instead of silently "
        "analyzing the random sweep",
    )
    batch.add_argument(
        "--random",
        type=int,
        default=50,
        metavar="N",
        help="size of the random sweep when no --system files are "
        "given (default 50)",
    )
    batch.add_argument("--seed", type=int, default=2017)
    batch.add_argument(
        "--chain",
        nargs="*",
        help="chains to analyze (default: every typical chain with a "
        "finite deadline)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial reference; ignored with "
        "--server, where the daemon owns execution)",
    )
    batch.add_argument(
        "--k", type=int, nargs="*", help="DMM window sizes (default 1 10 100)"
    )
    add_analysis_options(batch)
    add_server_option(batch)
    batch.add_argument(
        "--json",
        action="store_true",
        help="deterministic JSON on stdout (identical for any "
        "--workers value)",
    )
    batch.add_argument(
        "--timings",
        action="store_true",
        help="include timing/cache/kernel fields in the JSON (no "
        "longer worker-count invariant)",
    )
    batch.add_argument("--output", help="write the JSON to a file")
    batch.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any job errored",
    )
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="long-lived analysis daemon keeping engines and caches "
        "hot across HTTP/JSON requests",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="concurrently executing computes (bounded thread pool; "
        "1 = serialized, the pre-pool behavior)",
    )
    add_analysis_options(serve)
    serve.set_defaults(func=_cmd_serve)

    shard_worker = sub.add_parser(
        "shard-worker",
        help="a shard-worker endpoint for `repro shard --worker URL` "
        "(the analysis daemon under its deployment name; chunks "
        "arrive on POST /shard/run)",
    )
    shard_worker.add_argument("--host", default="127.0.0.1")
    shard_worker.add_argument("--port", type=int, default=8788)
    shard_worker.add_argument(
        "--workers",
        type=int,
        default=1,
        help="concurrently executing computes on this worker host "
        "(bounded thread pool)",
    )
    add_analysis_options(shard_worker)
    shard_worker.set_defaults(func=_cmd_serve)

    shard = sub.add_parser(
        "shard",
        help="sharded TWCA: partition jobs over local worker processes "
        "and/or remote shard-worker endpoints with work-stealing "
        "and bounded retries",
    )
    shard.add_argument(
        "--corpus",
        metavar="DIR",
        help="analyze a generated corpus (see `repro corpus generate`)",
    )
    shard.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="only the first N corpus entries",
    )
    shard.add_argument(
        "--system",
        nargs="+",
        help="system JSON files (labels follow the batch convention: "
        "the file paths)",
    )
    shard.add_argument(
        "--random",
        type=int,
        default=50,
        metavar="N",
        help="size of the random sweep when neither --corpus nor "
        "--system is given (default 50)",
    )
    shard.add_argument("--seed", type=int, default=2017)
    shard.add_argument(
        "--chain",
        nargs="*",
        help="chains to analyze (default: every typical chain with a "
        "finite deadline)",
    )
    shard.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="S",
        help="local shard worker processes (default 2; 0 with "
        "--worker runs remote-only)",
    )
    shard.add_argument(
        "--worker",
        action="append",
        default=[],
        metavar="URL",
        help="remote `repro shard-worker` endpoint (repeatable; mixes "
        "freely with local --shards)",
    )
    shard.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="N",
        help="jobs per dispatched chunk (default: about four chunks "
        "per worker)",
    )
    shard.add_argument(
        "--serial",
        action="store_true",
        help="run the single-process reference instead of sharding "
        "(the export the merged run is byte-identical to)",
    )
    shard.add_argument(
        "--k", type=int, nargs="*", help="DMM window sizes (default 1 10 100)"
    )
    shard.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="tagged per-chunk progress on stderr (line-buffered: "
        "lines never interleave, whatever the shard count)",
    )
    add_analysis_options(shard)
    add_client_options(shard)
    shard.add_argument(
        "--json",
        action="store_true",
        help="deterministic JSON on stdout (identical for any shard "
        "topology, and to --serial)",
    )
    shard.add_argument("--output", help="write the JSON to a file")
    shard.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any job errored",
    )
    shard.set_defaults(func=_cmd_shard)

    corpus = sub.add_parser(
        "corpus",
        help="generate or verify a seeded, reproducible benchmark "
        "corpus of systems",
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_generate = corpus_sub.add_parser(
        "generate", help="generate a corpus under DIR (streamed to disk)"
    )
    corpus_generate.add_argument("dir", help="corpus root (must not exist yet)")
    corpus_generate.add_argument(
        "--count", type=int, required=True, metavar="N", help="number of systems"
    )
    corpus_generate.add_argument("--seed", type=int, default=2017)
    corpus_generate.add_argument(
        "--family",
        default="uunifast",
        choices=("uunifast", "waters"),
        help="generator family: UUniFast chain systems or "
        "WATERS-profile automotive systems",
    )
    corpus_generate.add_argument(
        "--utilization",
        type=float,
        nargs=2,
        default=(0.5, 0.7),
        metavar=("LOW", "HIGH"),
        help="per-system target utilization range (default 0.5 0.7)",
    )
    corpus_generate.add_argument(
        "--chains", type=int, default=3, help="typical chains per system"
    )
    corpus_generate.add_argument(
        "--tasks-per-chain",
        type=int,
        nargs=2,
        default=(2, 5),
        metavar=("LO", "HI"),
        help="inclusive chain-length range (default 2 5)",
    )
    corpus_generate.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="progress lines on stderr while generating",
    )
    corpus_generate.add_argument(
        "--progress-every",
        type=int,
        default=10_000,
        metavar="N",
        help="progress granularity with --verbose (default 10000)",
    )
    corpus_generate.set_defaults(func=_cmd_corpus)
    corpus_verify = corpus_sub.add_parser(
        "verify", help="re-check a corpus against its manifest digests"
    )
    corpus_verify.add_argument("dir", help="corpus root")
    corpus_verify.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="only re-hash the first N system files (manifest digest "
        "is always checked in full)",
    )
    corpus_verify.set_defaults(func=_cmd_corpus)

    cache = sub.add_parser(
        "cache", help="inspect or prune a persistent analysis cache"
    )
    cache.add_argument("dir", help="cache directory (the --cache-dir of batch runs)")
    cache.add_argument(
        "--prune-older-than",
        metavar="AGE",
        help="delete entries older than AGE (e.g. 90d, 12h, 30m, 45s, "
        "or plain seconds) before reporting",
    )
    cache.set_defaults(func=_cmd_cache)

    report = sub.add_parser("report", help="emit the markdown reproduction report")
    report.add_argument("--samples", type=int, default=200)
    report.add_argument("--seed", type=int, default=2017)
    report.add_argument("--output", help="write to a file instead of stdout")
    add_analysis_options(report)
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "kernel", None) is not None:
        try:
            set_kernel(args.kernel)
        except KernelUnavailable as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        return args.func(args)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (urllib.error.URLError, ConnectionError) as exc:
        # Transport failures the client layer did not wrap (or raised
        # outside ServiceClient): a clean message, not a traceback.
        server = getattr(args, "server", None)
        target = f" at {server}" if server else ""
        reason = getattr(exc, "reason", exc)
        print(f"error: cannot reach daemon{target}: {reason}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
