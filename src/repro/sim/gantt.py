"""ASCII Gantt rendering of simulation traces.

Produces a compact textual schedule view — the library's counterpart of
the paper's Fig. 3 execution diagram — without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from .engine import SimulationResult


def render_gantt(
    result: SimulationResult, *, until: Optional[float] = None, width: int = 100
) -> str:
    """Render the processor schedule as one text row per task.

    Each column is a time quantum of ``until / width``; a letter marks
    which task ran (first character of the slice owner), ``.`` idle.
    Busy windows of each chain with a finite deadline are marked under
    the task rows with ``^`` at activation instants.
    """
    if until is None:
        until = max((s.end for s in result.slices), default=0.0)
    if until <= 0:
        return "(empty schedule)"
    scale = width / until

    task_rows: Dict[str, List[str]] = {}
    order: List[str] = []
    for chain in result.system.chains:
        for task in chain.tasks:
            task_rows[task.name] = ["."] * width
            order.append(task.name)

    for piece in result.slices:
        if piece.start >= until:
            continue
        row = task_rows.get(piece.task)
        if row is None:
            continue
        begin = int(piece.start * scale)
        end = max(begin + 1, int(math.ceil(min(piece.end, until) * scale)))
        mark = str(piece.instance % 10)
        for column in range(begin, min(end, width)):
            row[column] = mark

    label_width = max(len(name) for name in order) + 1
    lines = []
    for name in order:
        lines.append(f"{name:<{label_width}}|{''.join(task_rows[name])}|")

    for chain in result.system.chains:
        marks = [" "] * width
        for rec in result.instances[chain.name]:
            if rec.activation < until:
                marks[min(int(rec.activation * scale), width - 1)] = "^"
            if rec.finish is not None and rec.finish < until:
                column = min(int(rec.finish * scale), width - 1)
                marks[column] = "v" if marks[column] == " " else "*"
        lines.append(f"{chain.name:<{label_width}}|{''.join(marks)}|")
    lines.append(f"{'':<{label_width}} 0{'':>{width - len(str(until)) - 1}}{until}")
    return "\n".join(lines)
