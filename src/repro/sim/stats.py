"""Trace statistics: latency distributions, overshoot and settling time.

Reference [6] of the paper (Kumar & Thiele, RTSS'12) quantifies rare
timing events through *overshoot* (how far latencies exceed the typical
level after an overload activation) and *settling time* (how long until
they return).  This module computes both from simulation traces, plus
the usual distribution statistics, giving the simulator an evaluation
vocabulary matching the weakly-hard literature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..kernel import numpy_or_none
from .engine import SimulationResult


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary of a chain's observed latencies."""

    chain: str
    count: int
    minimum: float
    maximum: float
    mean: float
    percentiles: Dict[int, float]

    @classmethod
    def from_samples(
        cls,
        chain: str,
        samples: Sequence[float],
        marks: Sequence[int] = (50, 90, 95, 99),
    ) -> "LatencyStats":
        if len(samples) == 0:
            raise ValueError(f"no finished instances for chain {chain!r}")
        np = numpy_or_none()
        if np is not None and isinstance(samples, np.ndarray):
            # One vectorized sort; the mean below still runs the same
            # sequential float summation as the list path, so the
            # statistics are bit-identical across kernels.
            ordered = np.sort(samples).tolist()
        else:
            ordered = sorted(samples)
        return cls(
            chain=chain,
            count=len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            mean=sum(ordered) / len(ordered),
            percentiles={mark: percentile(ordered, mark) for mark in marks},
        )


def percentile(ordered: Sequence[float], mark: int) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    if not 0 <= mark <= 100:
        raise ValueError(f"percentile mark {mark} outside [0, 100]")
    if mark == 0:
        return ordered[0]
    rank = math.ceil(mark / 100 * len(ordered))
    return ordered[rank - 1]


def latency_stats(
    result: SimulationResult, chain: str, marks: Sequence[int] = (50, 90, 95, 99)
) -> LatencyStats:
    """Distribution summary of ``chain``'s latencies in ``result``."""
    trace = getattr(result, "_trace", None)
    if trace is not None and getattr(result, "_instances", None) is None:
        np = numpy_or_none()
        if np is not None:
            finish = trace.finish[chain]
            done = ~np.isnan(finish)
            samples = finish[done] - trace.activation[chain][done]
            return LatencyStats.from_samples(chain, samples, marks)
    return LatencyStats.from_samples(chain, result.latencies(chain), marks)


@dataclass(frozen=True)
class OvershootReport:
    """Effect of one overload activation on a victim chain.

    Attributes
    ----------
    overload_time:
        When the overload chain was activated.
    overshoot:
        Peak victim latency in the disturbed episode minus the typical
        (pre-overload) worst latency; 0 when nothing rose.
    settling_instances:
        Number of victim instances from the overload activation until
        latencies return to the typical level (the discrete settling
        time of Kumar & Thiele).
    peak_latency:
        The worst latency observed during the episode.
    """

    overload_time: float
    overshoot: float
    settling_instances: int
    peak_latency: float


def overshoot_report(
    result: SimulationResult,
    victim: str,
    overload: str,
    typical_level: Optional[float] = None,
) -> List[OvershootReport]:
    """One report per overload activation in the trace.

    ``typical_level`` defaults to the worst latency observed *before
    the first* overload activation (the trace's own typical regime);
    pass the analytical typical WCL for a model-based reference.
    """
    victims = [rec for rec in result.instances[victim] if rec.latency is not None]
    if not victims:
        raise ValueError(f"no finished instances of {victim!r}")
    overload_times = [rec.activation for rec in result.instances[overload]]
    if typical_level is None:
        first = overload_times[0] if overload_times else math.inf
        baseline = [rec.latency for rec in victims if rec.activation < first]
        typical_level = max(baseline) if baseline else 0.0

    reports: List[OvershootReport] = []
    for index, start in enumerate(overload_times):
        end = (
            overload_times[index + 1] if index + 1 < len(overload_times) else math.inf
        )
        episode = [rec for rec in victims if start <= rec.activation < end]
        if not episode:
            reports.append(OvershootReport(start, 0.0, 0, 0.0))
            continue
        peak = max(rec.latency for rec in episode)
        settled = 0
        for position, rec in enumerate(episode):
            if rec.latency > typical_level:
                settled = position + 1
        reports.append(
            OvershootReport(
                overload_time=start,
                overshoot=max(0.0, peak - typical_level),
                settling_instances=settled,
                peak_latency=peak,
            )
        )
    return reports


def max_settling_time(
    result: SimulationResult,
    victim: str,
    overload: str,
    typical_level: Optional[float] = None,
) -> int:
    """Largest observed settling time (in victim instances) over all
    overload activations."""
    reports = overshoot_report(result, victim, overload, typical_level)
    return max((r.settling_instances for r in reports), default=0)


def miss_streaks(result: SimulationResult, chain: str) -> List[int]:
    """Lengths of consecutive-miss runs — the quantity the
    'no more than N consecutive misses' weakly-hard constraint bounds.

    Vectorized as an edge detection over the padded flag vector under
    the numpy kernel; the run lengths are exact integers either way.
    """
    flags = result.miss_flags(chain)
    np = numpy_or_none()
    if np is not None:
        arr = np.asarray(flags, dtype=np.int8)
        if arr.size == 0:
            return []
        edges = np.diff(np.concatenate((arr[:1] * 0, arr, arr[:1] * 0)))
        starts = np.flatnonzero(edges == 1)
        ends = np.flatnonzero(edges == -1)
        return (ends - starts).tolist()
    streaks: List[int] = []
    run = 0
    for missed in flags:
        if missed:
            run += 1
        elif run:
            streaks.append(run)
            run = 0
    if run:
        streaks.append(run)
    return streaks
