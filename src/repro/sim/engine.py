"""Discrete-event simulator for SPP-scheduled task chains.

Implements the execution semantics of Sec. II faithfully:

* uniprocessor, static-priority preemptive scheduling over *tasks*;
* a chain instance runs its tasks in sequence — the finish of task ``i``
  is the arrival of task ``i+1``;
* **synchronous** chains serialize instances: an activation is not
  processed until the previous instance of the chain finished (and hence
  tasks of a synchronous chain never preempt each other);
* **asynchronous** chains process activations independently, with each
  task serving its activations in FIFO order;
* the scheduler is deadline-agnostic: instances run to completion
  regardless of misses (weakly-hard execution model).

The simulator is event-driven and deterministic given the activation
streams and execution times.  Two backends share the event loop below:
under ``REPRO_KERNEL=python`` the loop runs the whole horizon; under
``REPRO_KERNEL=numpy`` the calendar backend (:mod:`repro.sim.calendar`)
retires isolated activations in batch array operations and runs the
*same* loop only over the contended stretches, producing bit-identical
traces (the differential guarantee of the kernel parity tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..kernel import numpy_or_none
from ..model import System, TaskChain


@dataclass
class ExecutionSlice:
    """A maximal interval during which one job occupied the processor."""

    chain: str
    task: str
    instance: int
    start: float
    end: float


@dataclass
class InstanceRecord:
    """Lifecycle of one chain instance (one activation of the chain)."""

    chain: str
    index: int
    activation: float
    start: Optional[float] = None
    finish: Optional[float] = None
    task_finishes: Dict[str, float] = field(default_factory=dict)

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency; ``None`` while unfinished."""
        if self.finish is None:
            return None
        return self.finish - self.activation

    def misses(self, deadline: float) -> bool:
        """True iff the instance finished after its relative deadline."""
        latency = self.latency
        return latency is not None and latency > deadline


class SimulationResult:
    """Everything a simulation run produced.

    The python backend fills :attr:`instances` and :attr:`slices` with
    objects directly; the numpy calendar backend carries the trace as
    arrays and materializes the object views lazily on first access, so
    soak-scale runs pay for Python objects only when somebody actually
    iterates them.  Metric queries answer from the arrays when they are
    present — with value-identical arithmetic, checked by the kernel
    parity suite.
    """

    def __init__(
        self,
        system: System,
        horizon: float,
        instances: Optional[Dict[str, List[InstanceRecord]]] = None,
        slices: Optional[List[ExecutionSlice]] = None,
        *,
        trace=None,
    ):
        self.system = system
        self.horizon = horizon
        self._instances = instances
        self._slices = slices
        self._trace = trace

    @property
    def instances(self) -> Dict[str, List[InstanceRecord]]:
        if self._instances is None:
            self._instances = self._trace.build_instances()
        return self._instances

    @property
    def slices(self) -> List[ExecutionSlice]:
        if self._slices is None:
            self._slices = self._trace.build_slices()
        return self._slices

    def latencies(self, chain: str) -> List[float]:
        """Latencies of all *finished* instances of ``chain``."""
        if self._instances is None and self._trace is not None:
            return self._trace.latencies(chain)
        return [rec.latency for rec in self.instances[chain] if rec.latency is not None]

    def max_latency(self, chain: str) -> float:
        """Largest observed latency of ``chain`` (0.0 if none finished)."""
        observed = self.latencies(chain)
        return max(observed) if observed else 0.0

    def miss_flags(self, chain: str) -> List[bool]:
        """Per finished instance: did it miss the chain deadline?"""
        deadline = self.system[chain].deadline
        if self._instances is None and self._trace is not None:
            return self._trace.miss_flags(chain, deadline)
        return [
            rec.misses(deadline)
            for rec in self.instances[chain]
            if rec.finish is not None
        ]

    def miss_count(self, chain: str) -> int:
        return sum(self.miss_flags(chain))

    def empirical_dmm(self, chain: str, k: int) -> int:
        """Maximum misses observed in any window of ``k`` consecutive
        finished instances of ``chain`` — an empirical lower bound on any
        valid ``dmm(k)``."""
        if self._instances is None and self._trace is not None:
            deadline = self.system[chain].deadline
            return self._trace.empirical_dmm(chain, deadline, k)
        flags = self.miss_flags(chain)
        if len(flags) < k:
            return sum(flags)
        window = sum(flags[:k])
        best = window
        for i in range(k, len(flags)):
            window += flags[i] - flags[i - k]
            best = max(best, window)
        return best

    def busy_windows(self, chain: str) -> List[Tuple[float, float]]:
        """Maximal intervals during which at least one instance of
        ``chain`` was pending (activated, unfinished) — the
        sigma_b-busy-windows of Def. 6."""
        if self._instances is None and self._trace is not None:
            return self._trace.busy_windows(chain)
        intervals = sorted(
            (rec.activation, rec.finish if rec.finish is not None else self.horizon)
            for rec in self.instances[chain]
        )
        merged: List[Tuple[float, float]] = []
        for start, end in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged


@dataclass
class _Job:
    """One task of one chain instance, as seen by the scheduler."""

    chain: TaskChain
    task_index: int
    instance: int
    release: float
    remaining: float

    @property
    def priority(self) -> float:
        return self.chain.tasks[self.task_index].priority

    @property
    def task_name(self) -> str:
        return self.chain.tasks[self.task_index].name


class _ObjectStore:
    """Record sink of the python backend: plain :class:`InstanceRecord`s."""

    __slots__ = ("records",)

    def __init__(self, records: Dict[str, List[InstanceRecord]]):
        self.records = records

    def mark_start(self, chain: str, instance: int, at: float) -> None:
        record = self.records[chain][instance]
        if record.start is None:
            record.start = at

    def task_finish(
        self, chain: str, instance: int, task_index: int, task_name: str, at: float
    ) -> None:
        self.records[chain][instance].task_finishes[task_name] = at

    def finish(self, chain: str, instance: int, at: float) -> None:
        self.records[chain][instance].finish = at


def run_event_loop(
    pending_releases: List[Tuple[float, TaskChain, int]],
    execution_time: Callable[[TaskChain, int], float],
    store,
    slices: List[ExecutionSlice],
    task_turn: Dict[str, int],
) -> None:
    """The SPP event loop, shared verbatim between both backends.

    ``pending_releases`` must be sorted by time; ``store`` receives the
    record lifecycle callbacks (``mark_start`` / ``task_finish`` /
    ``finish``); ``slices`` collects execution slices in chronological
    order; ``task_turn`` carries the per-task FIFO counters — the python
    backend starts it empty, the calendar backend seeds it with the
    first instance index of every chain present in a contended stretch
    (the loop state a full scalar run would have reached at the idle
    point opening the stretch).
    """
    next_release_index = 0
    ready: List[_Job] = []
    chain_names = {chain.name for _, chain, _ in pending_releases}
    #: Instances of synchronous chains waiting for their predecessor.
    sync_backlog: Dict[str, List[_Job]] = {name: [] for name in chain_names}
    #: Whether an instance of a sync chain is currently in flight.
    sync_busy: Dict[str, bool] = {name: False for name in chain_names}
    #: Jobs blocked by the per-task FIFO order.
    fifo_backlog: Dict[str, List[_Job]] = {}

    time = 0.0

    def admit(job: _Job) -> None:
        """Place a job into the ready set, honouring per-task FIFO."""
        turn = task_turn.setdefault(job.task_name, 0)
        if job.instance == turn:
            ready.append(job)
        else:
            fifo_backlog.setdefault(job.task_name, []).append(job)

    def release_header(chain: TaskChain, instance: int, at: float) -> None:
        job = _Job(chain, 0, instance, at, execution_time(chain, 0))
        if chain.is_synchronous:
            if sync_busy[chain.name]:
                sync_backlog[chain.name].append(job)
                return
            sync_busy[chain.name] = True
        store.mark_start(chain.name, instance, at)
        admit(job)

    def finish_job(job: _Job, at: float) -> None:
        store.task_finish(job.chain.name, job.instance, job.task_index, job.task_name, at)
        task_turn[job.task_name] = job.instance + 1
        # Unblock the FIFO successor of this task, if queued.
        queued = fifo_backlog.get(job.task_name, [])
        for i, blocked in enumerate(queued):
            if blocked.instance == job.instance + 1:
                ready.append(queued.pop(i))
                break
        if job.task_index + 1 < len(job.chain.tasks):
            successor = _Job(
                job.chain,
                job.task_index + 1,
                job.instance,
                at,
                execution_time(job.chain, job.task_index + 1),
            )
            admit(successor)
            return
        # Chain instance complete.
        store.finish(job.chain.name, job.instance, at)
        if job.chain.is_synchronous:
            backlog = sync_backlog[job.chain.name]
            if backlog:
                nxt = backlog.pop(0)
                store.mark_start(job.chain.name, nxt.instance, at)
                admit(nxt)
            else:
                sync_busy[job.chain.name] = False

    max_iterations = 10_000_000
    iterations = 0
    while True:
        iterations += 1
        if iterations > max_iterations:
            preview = [(j.task_name, j.instance, j.remaining) for j in ready[:5]]
            raise RuntimeError(
                "simulation did not terminate: "
                f"time={time!r}, ready={len(ready)}, "
                f"released {next_release_index}/{len(pending_releases)}, "
                f"ready_jobs={preview!r}"
            )
        # Half-open window convention (matches the eta_plus of the
        # analysis): work completing exactly at `time` finishes
        # *before* activations arriving exactly at `time` are seen.
        # Zero-remaining ready jobs therefore cascade to completion
        # first — but only while they are the highest-priority work.
        while ready:
            top = max(ready, key=lambda j: (j.priority, -j.release, -j.instance))
            if top.remaining <= 1e-12:
                ready.remove(top)
                finish_job(top, time)
            else:
                break

        # Release every activation due at or before `time`.
        while (
            next_release_index < len(pending_releases)
            and pending_releases[next_release_index][0] <= time
        ):
            at, chain, instance = pending_releases[next_release_index]
            release_header(chain, instance, at)
            next_release_index += 1

        if not ready:
            if next_release_index >= len(pending_releases):
                break  # no work left and no future releases
            time = pending_releases[next_release_index][0]
            continue

        job = max(ready, key=lambda j: (j.priority, -j.release, -j.instance))
        ready.remove(job)
        next_arrival = (
            pending_releases[next_release_index][0]
            if next_release_index < len(pending_releases)
            else math.inf
        )
        if next_arrival - time <= 1e-9 and job.remaining > 1e-12:
            # Guard against float-epsilon livelock: an arrival due
            # "now" (within rounding) is drained before executing.
            ready.append(job)
            time = next_arrival
            continue
        run_until = min(time + job.remaining, next_arrival)
        if run_until <= time and job.remaining > 0:
            # The residue is below float resolution at this time
            # magnitude (time + remaining rounds back to time); the
            # job cannot make further progress — close it out.
            finish_job(job, time)
            continue
        if run_until > time:
            if (
                slices
                and slices[-1].chain == job.chain.name
                and slices[-1].task == job.task_name
                and slices[-1].instance == job.instance
                and slices[-1].end == time
            ):
                slices[-1].end = run_until
            else:
                slices.append(
                    ExecutionSlice(
                        job.chain.name, job.task_name, job.instance, time, run_until
                    )
                )
        job.remaining -= run_until - time
        time = run_until
        if job.remaining <= 1e-12:
            finish_job(job, time)
        else:
            ready.append(job)


class Simulator:
    """Event-driven SPP simulation of a system of task chains."""

    def __init__(self, system: System, use_bcet: bool = False):
        self.system = system
        self.use_bcet = use_bcet

    def _execution_time(self, chain: TaskChain, task_index: int) -> float:
        task = chain.tasks[task_index]
        return float(task.bcet if self.use_bcet else task.wcet)

    def prepare_releases(
        self, activations: Dict[str, Sequence[float]], horizon: float
    ) -> Dict[str, List[float]]:
        """Filter, float-coerce and validate the activation streams.

        Timestamps are coerced to float on ingestion so both backends
        run the identical float64 arithmetic regardless of whether a
        caller supplied integer timestamps.
        """
        prepared: Dict[str, List[float]] = {}
        for chain in self.system.chains:
            times = [float(t) for t in activations.get(chain.name, ()) if t <= horizon]
            if sorted(times) != times:
                raise ValueError(f"activations of {chain.name!r} must be sorted")
            prepared[chain.name] = times
        return prepared

    def run(
        self, activations: Dict[str, Sequence[float]], horizon: float
    ) -> SimulationResult:
        """Simulate until every instance activated before ``horizon`` has
        finished (the scheduler is work-conserving, so this terminates
        whenever the supplied load is feasible).

        Parameters
        ----------
        activations:
            Chain name -> sorted activation timestamps.  Chains not
            listed receive no activations.
        horizon:
            Activations beyond the horizon are ignored.
        """
        if numpy_or_none() is not None:
            from .calendar import run_calendar

            return run_calendar(self, activations, horizon)
        return self._run_python(activations, horizon)

    def _run_python(
        self, activations: Dict[str, Sequence[float]], horizon: float
    ) -> SimulationResult:
        prepared = self.prepare_releases(activations, horizon)
        records: Dict[str, List[InstanceRecord]] = {}
        pending_releases: List[Tuple[float, TaskChain, int]] = []
        for chain in self.system.chains:
            times = prepared[chain.name]
            records[chain.name] = [
                InstanceRecord(chain.name, i, t) for i, t in enumerate(times)
            ]
            for i, t in enumerate(times):
                pending_releases.append((t, chain, i))
        pending_releases.sort(key=lambda item: item[0])

        slices: List[ExecutionSlice] = []
        run_event_loop(
            pending_releases, self._execution_time, _ObjectStore(records), slices, {}
        )
        return SimulationResult(self.system, horizon, records, slices)
