"""Discrete-event SPP simulation of task chains (validation substrate)."""

from .activations import periodic_stream, random_stream, single_burst, worst_case_stream
from .calendar import TraceArrays
from .engine import ExecutionSlice, InstanceRecord, SimulationResult, Simulator
from .export import (
    instance_records,
    instances_csv,
    schedule_csv,
    schedule_records,
    trace_json,
    write_trace,
)
from .gantt import render_gantt
from .stats import (
    LatencyStats,
    OvershootReport,
    latency_stats,
    max_settling_time,
    miss_streaks,
    overshoot_report,
    percentile,
)
from .metrics import (
    ValidationReport,
    busy_window_activation_counts,
    phase_swept_empirical_dmm,
    randomized_activations,
    simulate_worst_case,
    validate_against_analysis,
    worst_case_activations,
)

__all__ = [
    "Simulator",
    "SimulationResult",
    "TraceArrays",
    "InstanceRecord",
    "ExecutionSlice",
    "periodic_stream",
    "worst_case_stream",
    "random_stream",
    "single_burst",
    "render_gantt",
    "ValidationReport",
    "worst_case_activations",
    "randomized_activations",
    "simulate_worst_case",
    "validate_against_analysis",
    "busy_window_activation_counts",
    "phase_swept_empirical_dmm",
    "LatencyStats",
    "latency_stats",
    "percentile",
    "OvershootReport",
    "overshoot_report",
    "max_settling_time",
    "miss_streaks",
    "schedule_records",
    "instance_records",
    "schedule_csv",
    "instances_csv",
    "trace_json",
    "write_trace",
]
