"""Activation-stream generation from event models.

The simulator consumes explicit activation timestamps.  This module
derives them from :class:`~repro.arrivals.EventModel` objects in three
flavours: strictly periodic, *worst-case* (as dense as the model allows,
the critical-instant pattern), and randomized sporadic.

Deterministic streams are generated in batch: an O(log n) galloping
search over the model's staircase finds the event count that fits the
horizon, then one ``delta_minus_many`` / ``delta_plus_many`` call
materializes all timestamps (a single gather over the compiled
:class:`~repro.arrivals.staircase.StaircaseKernel` under the numpy
kernel).  Both kernels evaluate the identical float64 operations, so
the streams are bit-identical across ``REPRO_KERNEL`` settings.
Randomized streams consume a Python ``random.Random`` sequence and stay
scalar by construction.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List

from ..arrivals import EventModel

#: Event-count ceiling of any generated stream, mirroring the historic
#: per-activation generator guard.
MAX_STREAM_EVENTS = 10_000_000


def _count_events(
    spacing: Callable[[int], float], horizon: float, offset: float
) -> int:
    """Largest ``n`` with ``offset + spacing(n) <= horizon`` (0 when even
    the first event misses the horizon).

    ``spacing`` must be non-decreasing in the event count; exponential
    galloping plus binary search probe O(log n) scalar values, and every
    probe applies the same ``offset + spacing(k)`` float operation as
    the materialized stream, so the count is exact.
    """
    if offset + spacing(1) > horizon:
        return 0
    lo, hi = 1, 2
    while offset + spacing(hi) <= horizon:
        lo = hi
        hi *= 2
        if lo > MAX_STREAM_EVENTS:
            raise OverflowError("activation stream too dense")
    # Invariant: offset + spacing(lo) <= horizon < offset + spacing(hi).
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if offset + spacing(mid) <= horizon:
            lo = mid
        else:
            hi = mid
    if lo > MAX_STREAM_EVENTS:
        raise OverflowError("activation stream too dense")
    return lo


def _materialize(values, offset: float) -> List[float]:
    """``offset + value`` per event, as a plain list of floats."""
    if hasattr(values, "tolist"):
        values = values.tolist()
    return [offset + value for value in values]


def periodic_stream(
    model: EventModel, horizon: float, offset: float = 0.0
) -> List[float]:
    """Activations at the model's *average* pace: event ``i`` at
    ``offset + delta_plus(i+1)`` when finite, else at
    ``offset + delta_minus(i+1)`` (densest legal spacing)."""
    if math.isinf(model.delta_plus(2)):
        # delta_plus(1) == delta_minus(1) == 0, so the sporadic fallback
        # is the worst-case stream from the first event on.
        return worst_case_stream(model, horizon, offset)
    count = _count_events(model.delta_plus, horizon, offset)
    if count == 0:
        return []
    return _materialize(model.delta_plus_many(range(1, count + 1)), offset)


def worst_case_stream(
    model: EventModel, horizon: float, offset: float = 0.0
) -> List[float]:
    """The densest stream the model admits: event ``i`` (0-based) at
    ``offset + delta_minus(i + 1)``.

    This is the critical-instant pattern used to stress the analysis
    bounds: all sources releasing like this from a common origin
    maximizes interference.
    """
    kernel = model.staircase_kernel()
    spacing = kernel.delta if kernel is not None else model.delta_minus
    count = _count_events(spacing, horizon, offset)
    if count == 0:
        return []
    return _materialize(model.delta_minus_many(range(1, count + 1)), offset)


def random_stream(
    model: EventModel,
    horizon: float,
    rng: random.Random,
    slack_scale: float = 0.5,
    offset: float = 0.0,
) -> List[float]:
    """A randomized legal stream: consecutive gaps are the model's
    minimum spacing inflated by an exponential slack of mean
    ``slack_scale * minimum_gap``.

    The result always satisfies ``delta_minus`` pair-wise; for
    super-additive curves the generator re-checks the full prefix and
    pushes events right when needed, so the stream is legal for the
    complete curve, not just adjacent pairs.
    """
    if slack_scale < 0:
        raise ValueError("slack_scale must be non-negative")
    times: List[float] = []
    t = offset + rng.random() * model.delta_minus(2)
    count = 0
    while t <= horizon:
        # Enforce the whole delta_minus prefix against earlier events.
        for back in range(2, min(len(times), 64) + 2):
            earliest = times[-(back - 1)] + model.delta_minus(back)
            if t < earliest:
                t = earliest
        if t > horizon:
            break
        times.append(t)
        count += 1
        min_gap = model.delta_minus(len(times) + 1) - model.delta_minus(len(times))
        if min_gap <= 0:
            min_gap = model.delta_minus(2)
        if min_gap <= 0:
            raise ValueError("model admits unbounded density")
        t = times[-1] + min_gap * (
            1.0 + rng.expovariate(1.0 / slack_scale) if slack_scale > 0 else 1.0
        )
        if count > MAX_STREAM_EVENTS:
            raise OverflowError("activation stream too dense")
    return times


def single_burst(model: EventModel, count: int, offset: float = 0.0) -> List[float]:
    """Exactly ``count`` activations packed as densely as the model
    allows, starting at ``offset`` — handy for injecting one overload
    burst into a simulation."""
    return _materialize(model.delta_minus_many(range(1, count + 1)), offset)
