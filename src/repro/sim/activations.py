"""Activation-stream generation from event models.

The simulator consumes explicit activation timestamps.  This module
derives them from :class:`~repro.arrivals.EventModel` objects in three
flavours: strictly periodic, *worst-case* (as dense as the model allows,
the critical-instant pattern), and randomized sporadic.
"""

from __future__ import annotations

import math
import random
from typing import List

from ..arrivals import EventModel


def periodic_stream(
    model: EventModel, horizon: float, offset: float = 0.0
) -> List[float]:
    """Activations at the model's *average* pace: event ``i`` at
    ``offset + delta_plus(i+1)`` when finite, else at
    ``offset + delta_minus(i+1)`` (densest legal spacing)."""
    times: List[float] = []
    i = 0
    while True:
        spacing = model.delta_plus(i + 1)
        if math.isinf(spacing):
            spacing = model.delta_minus(i + 1)
        t = offset + spacing
        if t > horizon:
            break
        times.append(t)
        i += 1
        if i > 10_000_000:
            raise OverflowError("activation stream too dense")
    return times


def worst_case_stream(
    model: EventModel, horizon: float, offset: float = 0.0
) -> List[float]:
    """The densest stream the model admits: event ``i`` (0-based) at
    ``offset + delta_minus(i + 1)``.

    This is the critical-instant pattern used to stress the analysis
    bounds: all sources releasing like this from a common origin
    maximizes interference.
    """
    times: List[float] = []
    i = 0
    while True:
        t = offset + model.delta_minus(i + 1)
        if t > horizon:
            break
        times.append(t)
        i += 1
        if i > 10_000_000:
            raise OverflowError("activation stream too dense")
    return times


def random_stream(
    model: EventModel,
    horizon: float,
    rng: random.Random,
    slack_scale: float = 0.5,
    offset: float = 0.0,
) -> List[float]:
    """A randomized legal stream: consecutive gaps are the model's
    minimum spacing inflated by an exponential slack of mean
    ``slack_scale * minimum_gap``.

    The result always satisfies ``delta_minus`` pair-wise; for
    super-additive curves the generator re-checks the full prefix and
    pushes events right when needed, so the stream is legal for the
    complete curve, not just adjacent pairs.
    """
    if slack_scale < 0:
        raise ValueError("slack_scale must be non-negative")
    times: List[float] = []
    t = offset + rng.random() * model.delta_minus(2)
    count = 0
    while t <= horizon:
        # Enforce the whole delta_minus prefix against earlier events.
        for back in range(2, min(len(times), 64) + 2):
            earliest = times[-(back - 1)] + model.delta_minus(back)
            if t < earliest:
                t = earliest
        if t > horizon:
            break
        times.append(t)
        count += 1
        min_gap = model.delta_minus(len(times) + 1) - model.delta_minus(len(times))
        if min_gap <= 0:
            min_gap = model.delta_minus(2)
        if min_gap <= 0:
            raise ValueError("model admits unbounded density")
        t = times[-1] + min_gap * (
            1.0 + rng.expovariate(1.0 / slack_scale) if slack_scale > 0 else 1.0
        )
        if count > 10_000_000:
            raise OverflowError("activation stream too dense")
    return times


def single_burst(model: EventModel, count: int, offset: float = 0.0) -> List[float]:
    """Exactly ``count`` activations packed as densely as the model
    allows, starting at ``offset`` — handy for injecting one overload
    burst into a simulation."""
    return [offset + model.delta_minus(i + 1) for i in range(count)]
