"""Trace export: simulation results as CSV / JSON-ready structures.

Downstream tooling (timing dashboards, trace diffing, spreadsheet
analysis) consumes flat records rather than Python objects.  Two tables
are exported:

* the **schedule** — one row per execution slice;
* the **instances** — one row per chain instance with activation,
  start, finish, latency and miss verdict.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Any, Dict, List

from .engine import SimulationResult


def schedule_records(result: SimulationResult) -> List[Dict[str, Any]]:
    """Execution slices as flat dictionaries, in time order.

    The sort key tie-breaks equal start times by (chain, task,
    instance), so the row order — and hence the byte content of every
    export — is a pure function of the slice *set*, independent of the
    emission order of the simulation backend that produced it.
    """
    return [
        {
            "chain": piece.chain,
            "task": piece.task,
            "instance": piece.instance,
            "start": piece.start,
            "end": piece.end,
            "duration": piece.end - piece.start,
        }
        for piece in sorted(
            result.slices, key=lambda s: (s.start, s.chain, s.task, s.instance)
        )
    ]


def instance_records(result: SimulationResult) -> List[Dict[str, Any]]:
    """Chain instances as flat dictionaries, per chain in index order."""
    rows: List[Dict[str, Any]] = []
    for chain in result.system.chains:
        deadline = chain.deadline
        for record in result.instances[chain.name]:
            rows.append(
                {
                    "chain": chain.name,
                    "instance": record.index,
                    "activation": record.activation,
                    "start": record.start,
                    "finish": record.finish,
                    "latency": record.latency,
                    "deadline": None if math.isinf(deadline) else deadline,
                    "missed": (
                        record.misses(deadline) if record.finish is not None else None
                    ),
                }
            )
    return rows


def _to_csv(rows: List[Dict[str, Any]]) -> str:
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def schedule_csv(result: SimulationResult) -> str:
    """The schedule table as CSV text."""
    return _to_csv(schedule_records(result))


def instances_csv(result: SimulationResult) -> str:
    """The instance table as CSV text."""
    return _to_csv(instance_records(result))


def trace_json(result: SimulationResult, indent: int = 2) -> str:
    """Both tables plus run metadata as a JSON document.

    Keys are sorted so the document bytes are deterministic; the kernel
    parity tests compare the exports of both simulation backends with
    ``==`` on the raw strings.
    """
    return json.dumps(
        {
            "system": result.system.name,
            "horizon": result.horizon,
            "schedule": schedule_records(result),
            "instances": instance_records(result),
        },
        indent=indent,
        sort_keys=True,
    )


def write_trace(result: SimulationResult, path: str) -> None:
    """Write the JSON trace document to ``path`` (``.json``) or the
    schedule CSV (any other suffix)."""
    with open(path, "w", encoding="utf-8") as handle:
        if path.endswith(".json"):
            handle.write(trace_json(result))
        else:
            handle.write(schedule_csv(result))
