"""Higher-level metrics over simulation results.

These helpers turn a :class:`~repro.sim.engine.SimulationResult` into the
quantities the analyses bound: worst observed latency, empirical deadline
miss models, and per-busy-window statistics.  They are the bridge between
the simulator-as-oracle and the analytical results in tests and
validation benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..kernel import numpy_or_none
from ..model import System
from .activations import random_stream, worst_case_stream
from .engine import SimulationResult, Simulator


@dataclass(frozen=True)
class ValidationReport:
    """Comparison of simulated behaviour against analytical bounds."""

    chain: str
    observed_wcl: float
    analytical_wcl: float
    observed_misses: Dict[int, int]
    analytical_misses: Dict[int, int]

    @property
    def latency_ok(self) -> bool:
        """Bound respected: observation never exceeds the analysis."""
        return self.observed_wcl <= self.analytical_wcl + 1e-9

    @property
    def dmm_ok(self) -> bool:
        return all(
            self.observed_misses[k] <= self.analytical_misses[k]
            for k in self.observed_misses
        )

    @property
    def ok(self) -> bool:
        return self.latency_ok and self.dmm_ok


def worst_case_activations(system: System, horizon: float) -> Dict[str, List[float]]:
    """Critical-instant activations: every chain as dense as its model
    allows, synchronized at time 0."""
    return {
        chain.name: worst_case_stream(chain.activation, horizon)
        for chain in system.chains
    }


def randomized_activations(
    system: System, horizon: float, rng: random.Random, slack_scale: float = 0.5
) -> Dict[str, List[float]]:
    """Randomized legal activations for every chain."""
    return {
        chain.name: random_stream(
            chain.activation, horizon, rng, slack_scale=slack_scale
        )
        for chain in system.chains
    }


def simulate_worst_case(
    system: System, horizon: float, use_bcet: bool = False
) -> SimulationResult:
    """Run the critical-instant simulation over ``horizon``."""
    simulator = Simulator(system, use_bcet=use_bcet)
    return simulator.run(worst_case_activations(system, horizon), horizon)


def validate_against_analysis(
    system: System,
    chain_name: str,
    analytical_wcl: float,
    dmm_table: Dict[int, int],
    horizon: float,
) -> ValidationReport:
    """Simulate the critical instant and compare against the analysis.

    Returns a report whose ``ok`` property asserts the soundness
    direction the theory promises: *observed <= bound*.  (The converse —
    tightness — is not guaranteed by the paper.)
    """
    result = simulate_worst_case(system, horizon)
    observed = {k: result.empirical_dmm(chain_name, k) for k in dmm_table}
    return ValidationReport(
        chain=chain_name,
        observed_wcl=result.max_latency(chain_name),
        analytical_wcl=analytical_wcl,
        observed_misses=observed,
        analytical_misses=dict(dmm_table),
    )


def busy_window_activation_counts(result: SimulationResult, chain: str) -> List[int]:
    """Number of chain activations falling in each observed busy window
    — the empirical counterpart of ``K_b`` (Theorem 2).

    Under the numpy kernel the per-window membership scan collapses to
    two ``searchsorted`` calls over the sorted activation array; the
    counts are exact integers either way.
    """
    windows = result.busy_windows(chain)
    np = numpy_or_none()
    trace = getattr(result, "_trace", None)
    if np is not None and trace is not None and windows:
        activations = np.sort(trace.activation[chain])
        starts = np.asarray([start for start, _ in windows])
        ends = np.asarray([end for _, end in windows])
        lo = np.searchsorted(activations, starts, side="left")
        hi = np.searchsorted(activations, ends, side="right")
        return (hi - lo).tolist()
    activations = sorted(rec.activation for rec in result.instances[chain])
    counts: List[int] = []
    for start, end in windows:
        counts.append(sum(1 for t in activations if start <= t <= end))
    return counts


def phase_swept_empirical_dmm(
    system: System,
    chain_name: str,
    k: int,
    *,
    phases: Optional[List[float]] = None,
    horizon: float = 20_000.0,
) -> int:
    """Worst empirical ``dmm(k)`` over a sweep of overload phasings.

    The analysis bounds hold for *every* alignment of the overload
    chains against the victim; a single simulation only samples one.
    This helper shifts all overload activations by each phase in
    ``phases`` (default: 24 offsets spread over the victim's period)
    and returns the worst observed windowed miss count — the tightest
    empirical lower bound on any sound ``dmm(k)``.
    """
    victim = system[chain_name]
    if phases is None:
        period = victim.activation.delta_minus(2)
        if period <= 0:
            period = horizon / 20
        phases = [period * i / 24.0 for i in range(24)]
    base = worst_case_activations(system, horizon)
    simulator = Simulator(system)
    worst = 0
    for phase in phases:
        shifted = dict(base)
        for chain in system.overload_chains:
            shifted[chain.name] = [
                t + phase for t in base[chain.name] if t + phase <= horizon
            ]
        result = simulator.run(shifted, horizon)
        worst = max(worst, result.empirical_dmm(chain_name, k))
    return worst
