"""Array-based event calendar: the numpy backend of the simulator.

The scalar event loop advances one scheduling decision at a time; at
soak scale (millions of activations) almost all of those decisions are
trivial, because most activations execute in isolation: the processor
is idle when they arrive and idle again before the next activation of
*any* chain.  This backend finds those isolated releases with a handful
of array passes and retires them wholesale:

1. all activation streams are merged into one time-sorted release
   calendar (structured as parallel ``time`` / ``chain`` / ``instance``
   arrays, built with one stable argsort);
2. a prefix-scan bound on the busy-period finish after every release
   (``F_j = max(F_{j-1}, t_j) + W_j``, computed as a ``cumsum`` plus a
   running maximum) classifies each release as *isolated* — idle before
   it arrives and finished strictly before the next release — behind a
   conservative float margin, so classification errors can only route
   releases to the exact scalar path, never corrupt a fast one;
3. isolated instances are retired in batch: per chain and task, one
   vectorized pass reproduces the scalar loop's float-for-float
   execution arithmetic (including its epsilon close-out behaviour) for
   every isolated instance at once, writing trace *arrays*;
4. the remaining maximal runs of non-isolated releases ("stretches",
   each opening at a provably idle instant) run through the *identical*
   scalar event loop (:func:`repro.sim.engine.run_event_loop`), seeded
   with the per-task FIFO counters a full scalar run would have reached.

The result is bit-identical to the python backend — same
``ExecutionSlice`` sequence, same ``InstanceRecord`` values, so exports
compare byte-for-byte — but the per-activation Python cost is paid only
for the contended minority.  Object views are materialized lazily by
:class:`TraceArrays`; metric queries (latencies, miss counts, (m,k)
windows, busy windows) answer directly from the arrays.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..kernel import numpy_or_none
from ..model import System
from .engine import (
    ExecutionSlice,
    InstanceRecord,
    SimulationResult,
    run_event_loop,
)

#: Base absolute slack of the isolation classifier.  Must dominate the
#: scalar loop's 1e-9 arrival-merge guard so no epsilon branch can
#: trigger inside a batch-retired instance.
MARGIN_ABS = 1e-6

#: Relative slack per unit of timestamp magnitude and per release,
#: covering worst-case float drift of the prefix-scan bound (each of
#: the ``n`` accumulation steps contributes at most one ulp of the
#: running magnitude, i.e. ~2.2e-16 relative).
MARGIN_REL_PER_EVENT = 4e-15
MARGIN_REL_FLOOR = 1e-9


class TraceArrays:
    """Simulation trace held as per-chain arrays plus slice chunks.

    ``slice_chunks`` is a chronological mix of array chunks
    ``(chain, task, instances, starts, ends)`` from batch retirement
    and lists of :class:`ExecutionSlice` from scalar stretches; slices
    never overlap and zero-length slices are never emitted, so slice
    start times are globally unique and a sort by start reconstructs
    the exact scalar emission order.
    """

    __slots__ = (
        "np",
        "system",
        "horizon",
        "activation",
        "start",
        "finish",
        "task_fin",
        "slice_chunks",
    )

    def __init__(self, np, system: System, horizon: float):
        self.np = np
        self.system = system
        self.horizon = horizon
        self.activation: Dict[str, object] = {}
        self.start: Dict[str, object] = {}
        self.finish: Dict[str, object] = {}
        self.task_fin: Dict[str, object] = {}
        self.slice_chunks: List = []
        for chain in system.chains:
            self.activation[chain.name] = np.empty(0, dtype=np.float64)
            self.start[chain.name] = np.empty(0, dtype=np.float64)
            self.finish[chain.name] = np.empty(0, dtype=np.float64)
            self.task_fin[chain.name] = np.empty((len(chain.tasks), 0))

    def allocate(self, chain_name: str, times) -> None:
        np = self.np
        n = times.shape[0]
        tasks = self.task_fin[chain_name].shape[0]
        self.activation[chain_name] = times
        self.start[chain_name] = np.full(n, np.nan)
        self.finish[chain_name] = np.full(n, np.nan)
        self.task_fin[chain_name] = np.full((tasks, n), np.nan)

    # -- lazy object views --------------------------------------------
    def build_instances(self) -> Dict[str, List[InstanceRecord]]:
        records: Dict[str, List[InstanceRecord]] = {}
        for chain in self.system.chains:
            name = chain.name
            acts = self.activation[name].tolist()
            starts = self.start[name].tolist()
            finishes = self.finish[name].tolist()
            task_rows = [row.tolist() for row in self.task_fin[name]]
            task_names = [task.name for task in chain.tasks]
            chain_records = []
            for i, activation in enumerate(acts):
                start = starts[i]
                finish = finishes[i]
                task_finishes = {
                    task_names[k]: row[i]
                    for k, row in enumerate(task_rows)
                    if row[i] == row[i]
                }
                chain_records.append(
                    InstanceRecord(
                        name,
                        i,
                        activation,
                        start if start == start else None,
                        finish if finish == finish else None,
                        task_finishes,
                    )
                )
            records[name] = chain_records
        return records

    def build_slices(self) -> List[ExecutionSlice]:
        out: List[ExecutionSlice] = []
        for chunk in self.slice_chunks:
            if isinstance(chunk, list):
                out.extend(chunk)
                continue
            chain_name, task_name, instances, starts, ends = chunk
            out.extend(
                ExecutionSlice(chain_name, task_name, instance, start, end)
                for instance, start, end in zip(
                    instances.tolist(), starts.tolist(), ends.tolist()
                )
            )
        out.sort(key=lambda piece: piece.start)
        return out

    # -- array metric paths -------------------------------------------
    def latencies(self, chain: str) -> List[float]:
        np = self.np
        finish = self.finish[chain]
        done = ~np.isnan(finish)
        return (finish[done] - self.activation[chain][done]).tolist()

    def miss_flags(self, chain: str, deadline: float) -> List[bool]:
        return [latency > deadline for latency in self.latencies(chain)]

    def empirical_dmm(self, chain: str, deadline: float, k: int) -> int:
        np = self.np
        finish = self.finish[chain]
        done = ~np.isnan(finish)
        latency = finish[done] - self.activation[chain][done]
        flags = (latency > deadline).astype(np.int64)
        if flags.size < k:
            return int(flags.sum())
        sums = np.cumsum(flags)
        windows = sums[k - 1 :].copy()
        windows[1:] -= sums[: flags.size - k]
        return int(windows.max())

    def busy_windows(self, chain: str) -> List[Tuple[float, float]]:
        np = self.np
        activation = self.activation[chain]
        if activation.size == 0:
            return []
        finish = np.where(
            np.isnan(self.finish[chain]), self.horizon, self.finish[chain]
        )
        order = np.lexsort((finish, activation))
        starts = activation[order]
        ends = finish[order]
        running = np.maximum.accumulate(ends)
        fresh = np.ones(starts.shape, dtype=bool)
        fresh[1:] = starts[1:] > running[:-1]
        window_starts = starts[fresh]
        window_ends = np.maximum.reduceat(ends, np.flatnonzero(fresh))
        return list(zip(window_starts.tolist(), window_ends.tolist()))


class _ArrayStore:
    """Record sink writing scalar-stretch lifecycle events into arrays."""

    __slots__ = ("trace",)

    def __init__(self, trace: TraceArrays):
        self.trace = trace

    def mark_start(self, chain: str, instance: int, at: float) -> None:
        start = self.trace.start[chain]
        if math.isnan(start[instance]):
            start[instance] = at

    def task_finish(
        self, chain: str, instance: int, task_index: int, task_name: str, at: float
    ) -> None:
        self.trace.task_fin[chain][task_index, instance] = at

    def finish(self, chain: str, instance: int, at: float) -> None:
        self.trace.finish[chain][instance] = at


def _retire_task(np, release, budget: float):
    """Finish times of one task executed in isolation, vectorized.

    Replays the scalar loop's execution arithmetic elementwise for a
    whole vector of isolated instances: repeatedly advance ``time`` by
    ``fl(time + remaining) - time`` until the residue drops to the
    1e-12 cascade threshold or progress stalls below float resolution
    (the loop's close-out guard).  The iteration converges in a couple
    of passes; each pass applies the identical float64 operations the
    scalar loop would, so the finish times are bit-identical.
    """
    time = release.copy()
    remaining = np.full(time.shape, budget)
    active = remaining > 1e-12
    rounds = 0
    while active.any():
        rounds += 1
        if rounds > 64:
            raise RuntimeError(
                "simulation did not terminate: batch retirement of an "
                f"isolated task did not converge (budget={budget!r})"
            )
        advanced = np.where(active, time + remaining, time)
        progress = active & (advanced > time)
        remaining = np.where(progress, remaining - (advanced - time), remaining)
        time = np.where(progress, advanced, time)
        active = progress & (remaining > 1e-12)
    return time


def run_calendar(simulator, activations, horizon: float) -> SimulationResult:
    """Run one simulation through the array event calendar."""
    np = numpy_or_none()
    if np is None:  # pragma: no cover - Simulator.run dispatches on this
        raise RuntimeError("the calendar backend requires the numpy kernel")
    system = simulator.system
    chains = system.chains
    trace = TraceArrays(np, system, horizon)

    per_chain_times = []
    for chain in chains:
        raw = activations.get(chain.name, ())
        times = np.asarray(raw, dtype=np.float64)
        if times.ndim != 1:
            times = times.reshape(-1)
        times = times[times <= horizon]
        if times.size > 1 and bool((np.diff(times) < 0).any()):
            raise ValueError(f"activations of {chain.name!r} must be sorted")
        trace.allocate(chain.name, times)
        per_chain_times.append(times)

    counts = [times.size for times in per_chain_times]
    total = int(sum(counts))
    result = SimulationResult(system, horizon, trace=trace)
    if total == 0:
        return result

    # 1. One time-sorted calendar over all chains.  The stable sort
    # reproduces the python backend's tie order (chain declaration
    # order, then instance order).
    t_all = np.concatenate(per_chain_times)
    chain_of = np.repeat(np.arange(len(chains)), counts)
    inst_of = np.concatenate([np.arange(count) for count in counts])
    order = np.argsort(t_all, kind="stable")
    t = t_all[order]
    cid = chain_of[order]
    inst = inst_of[order]

    exec_times = [
        [simulator._execution_time(chain, k) for k in range(len(chain.tasks))]
        for chain in chains
    ]
    chain_work = np.asarray([sum(w) for w in exec_times])

    # 2. Busy-finish bound F_j = max(F_{j-1}, t_j) + W_j after every
    # release, as one prefix scan: with S the work cumsum,
    # F = S + running_max(t - S_shifted).  Float drift of the scan is
    # covered by `margin`, below which a release is simply not isolated.
    work = chain_work[cid]
    cum = np.cumsum(work)
    finish_bound = cum + np.maximum.accumulate(t - (cum - work))
    margin = MARGIN_ABS + max(
        MARGIN_REL_FLOOR, MARGIN_REL_PER_EVENT * total
    ) * np.abs(t)

    idle_before = np.empty(total, dtype=bool)
    idle_before[0] = True
    idle_before[1:] = t[1:] - finish_bound[:-1] > margin[1:]
    gap_after = np.empty(total, dtype=bool)
    gap_after[-1] = True
    gap_after[:-1] = t[1:] - (t[:-1] + work[:-1]) > margin[1:]
    fast = idle_before & gap_after

    # 3. Batch-retire the isolated instances, chain by chain, task by
    # task (vectorized over instances; tasks of an isolated instance run
    # back to back, so priorities are irrelevant).
    fast_idx = np.flatnonzero(fast)
    if fast_idx.size:
        fast_cid = cid[fast_idx]
        for c, chain in enumerate(chains):
            sel = fast_idx[fast_cid == c]
            if not sel.size:
                continue
            instances = inst[sel]
            clock = t[sel].copy()
            trace.start[chain.name][instances] = clock
            task_fin = trace.task_fin[chain.name]
            for k, task in enumerate(chain.tasks):
                segment_start = clock
                clock = _retire_task(np, clock, exec_times[c][k])
                task_fin[k, instances] = clock
                ran = clock > segment_start
                if ran.any():
                    trace.slice_chunks.append(
                        (
                            chain.name,
                            task.name,
                            instances[ran],
                            segment_start[ran],
                            clock[ran],
                        )
                    )
            trace.finish[chain.name][instances] = clock

    # 4. Contended stretches — maximal runs of non-isolated releases —
    # replay through the exact scalar loop.  Every stretch opens at an
    # idle instant (its predecessor is isolated and finished strictly
    # earlier), so fresh sync/FIFO state plus seeded turn counters
    # reproduce the full scalar run's behaviour over the stretch.
    slow_idx = np.flatnonzero(~fast)
    if slow_idx.size:
        store = _ArrayStore(trace)
        chain_list = list(chains)
        slow_t = t[slow_idx].tolist()
        slow_chain = [chain_list[c] for c in cid[slow_idx].tolist()]
        slow_inst = inst[slow_idx].tolist()
        cuts = np.flatnonzero(np.diff(slow_idx) > 1) + 1
        bounds = [0, *cuts.tolist(), len(slow_t)]
        execution_time = simulator._execution_time
        for lo, hi in zip(bounds, bounds[1:]):
            pending = list(zip(slow_t[lo:hi], slow_chain[lo:hi], slow_inst[lo:hi]))
            task_turn: Dict[str, int] = {}
            for _, chain, instance in pending:
                if chain.tasks[0].name not in task_turn:
                    for task in chain.tasks:
                        task_turn[task.name] = instance
            stretch_slices: List[ExecutionSlice] = []
            run_event_loop(pending, execution_time, store, stretch_slices, task_turn)
            if stretch_slices:
                trace.slice_chunks.append(stretch_slices)

    return result
