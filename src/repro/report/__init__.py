"""Reporting helpers: paper-style tables and ASCII histograms."""

from .markdown import (
    figure5_section,
    markdown_table,
    reproduction_report,
    table1_section,
    table2_section,
)
from .histogram import figure5_panel, render_histogram, tally
from .tables import dmm_table, format_table, twca_summary, wcl_table

__all__ = [
    "format_table",
    "wcl_table",
    "dmm_table",
    "twca_summary",
    "tally",
    "render_histogram",
    "figure5_panel",
    "markdown_table",
    "table1_section",
    "table2_section",
    "figure5_section",
    "reproduction_report",
]
