"""Markdown report generation.

Produces a self-contained reproduction report (the EXPERIMENTS.md
skeleton) directly from analysis runs, so the recorded numbers can
never drift from what the code computes.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from ..analysis import analyze_latency, analyze_twca
from ..synth import figure4_system, random_systems


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-flavoured markdown table."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    rule = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(str(v) for v in row) + " |" for row in rows]
    return "\n".join([head, rule] + body)


def table1_section() -> str:
    """The Table I comparison as markdown."""
    system = figure4_system()
    rows = []
    paper = {"sigma_c": 331, "sigma_d": 175}
    for name in ("sigma_c", "sigma_d"):
        measured = analyze_latency(system, system[name]).wcl
        match = "exact" if measured == paper[name] else "DIFFERS"
        rows.append((name, paper[name], f"{measured:g}", match))
    return "## Table I — worst-case latencies\n\n" + markdown_table(
        ("chain", "paper WCL", "measured WCL", "match"), rows
    )


def table2_section(
    ks: Sequence[int] = (3, 76, 250), backend: str = "branch_bound"
) -> str:
    """The Table II comparison (printed + calibrated) as markdown."""
    paper = {3: 3, 76: 4, 250: 5}
    rows = []
    results = {}
    for calibrated in (False, True):
        system = figure4_system(calibrated=calibrated)
        results[calibrated] = analyze_twca(system, system["sigma_c"], backend=backend)
    for k in ks:
        rows.append((k, paper.get(k, "-"), results[True].dmm(k), results[False].dmm(k)))
    return "## Table II — dmm of sigma_c\n\n" + markdown_table(
        ("k", "paper", "measured (calibrated)", "measured (printed)"), rows
    )


def figure5_section(
    samples: int = 200,
    seed: int = 2017,
    calibrated: bool = True,
    backend: str = "branch_bound",
) -> str:
    """The Figure 5 statistics as markdown."""
    rng = random.Random(seed)
    base = figure4_system(calibrated=calibrated)
    schedulable = {"sigma_c": 0, "sigma_d": 0}
    histogram: Dict[str, Dict[int, int]] = {"sigma_c": {}, "sigma_d": {}}
    for system in random_systems(base, samples, rng):
        for name in schedulable:
            result = analyze_twca(system, system[name], backend=backend)
            value = 0 if result.is_schedulable else result.dmm(10)
            if value == 0:
                schedulable[name] += 1
            histogram[name][value] = histogram[name].get(value, 0) + 1
    paper = {"sigma_c": 0.633, "sigma_d": 0.307}
    rows = []
    for name in ("sigma_c", "sigma_d"):
        measured = schedulable[name] / samples
        rows.append(
            (
                name,
                f"{paper[name]:.3f}",
                f"{measured:.3f}",
                dict(sorted(histogram[name].items())),
            )
        )
    return (
        f"## Figure 5 — dmm(10) over {samples} random priority assignments\n\n"
        + markdown_table(
            (
                "chain",
                "paper schedulable fraction",
                "measured fraction",
                "dmm(10) histogram",
            ),
            rows,
        )
    )


def reproduction_report(
    samples: int = 200, seed: int = 2017, backend: str = "branch_bound"
) -> str:
    """The full report: all regenerable sections concatenated."""
    sections = [
        "# Reproduction report (auto-generated)",
        table1_section(),
        table2_section(backend=backend),
        figure5_section(samples=samples, seed=seed, backend=backend),
    ]
    return "\n\n".join(sections) + "\n"
