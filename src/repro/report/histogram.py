"""ASCII histograms (the Figure 5 rendering, no plotting dependency)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Mapping, Sequence


def tally(values: Iterable[int]) -> Dict[int, int]:
    """Count occurrences of each value."""
    return dict(sorted(Counter(values).items()))


def render_histogram(
    counts: Mapping[int, int], *, title: str = "", width: int = 50, label: str = "value"
) -> str:
    """Horizontal bar chart of a discrete distribution.

    Mirrors the Figure 5 presentation: one bar per distinct dmm value,
    bar length proportional to the duplication count.
    """
    lines = []
    if title:
        lines.append(title)
    if not counts:
        lines.append("(no data)")
        return "\n".join(lines)
    peak = max(counts.values())
    label_width = max(len(str(value)) for value in counts)
    for value in sorted(counts):
        count = counts[value]
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"{str(value).rjust(label_width)} | {bar} {count}")
    return "\n".join(lines)


def figure5_panel(
    dmm_values: Sequence[int], chain_name: str, k: int = 10, width: int = 50
) -> str:
    """Render one panel of Figure 5: the distribution of ``dmm(k)`` over
    random priority assignments (0 = schedulable)."""
    counts = tally(dmm_values)
    schedulable = counts.get(0, 0)
    total = len(dmm_values)
    title = (
        f"dmm_{chain_name}({k}) over {total} priority assignments "
        f"({schedulable} schedulable)"
    )
    return render_histogram(counts, title=title, width=width, label=f"dmm({k})")
