"""Paper-style table formatting for analysis results."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..analysis.latency import LatencyResult
from ..analysis.twca import ChainTwcaResult


def format_packing_stats(stats: Mapping[str, int]) -> str:
    """One-line rendering of packing-engine work counters (shared by
    summaries and the CLI stderr reports)."""
    return ", ".join(f"{key} {stats[key]}" for key in sorted(stats))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with column alignment (no dependency)."""
    cells = [[str(h) for h in headers]]
    cells += [[str(value) for value in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        aligned = (value.ljust(width) for value, width in zip(row, widths))
        lines.append("  ".join(aligned))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def wcl_table(
    results: Mapping[str, LatencyResult], deadlines: Mapping[str, float]
) -> str:
    """Table I layout: worst-case latency vs deadline per chain."""
    rows = []
    for name in sorted(results):
        deadline = deadlines.get(name, math.inf)
        deadline_text = "-" if math.isinf(deadline) else f"{deadline:g}"
        rows.append(
            (
                name,
                f"{results[name].wcl:g}",
                deadline_text,
                "yes" if results[name].wcl <= deadline else "NO",
            )
        )
    return format_table(("task chain", "WCL", "D", "schedulable"), rows)


def dmm_table(result: ChainTwcaResult, ks: Sequence[int]) -> str:
    """Table II layout: ``dmm(k)`` samples for one chain."""
    cells = ", ".join(f"dmm({k}) = {result.dmm(k)}" for k in ks)
    return format_table(("task chain", "DMM"), [(result.chain_name, cells)])


def twca_summary(result: ChainTwcaResult) -> str:
    """Multi-line human-readable summary of one chain's TWCA."""
    lines = [f"chain {result.chain_name}: {result.status.value}"]
    if result.full_latency is not None:
        lines.append(
            f"  WCL = {result.full_latency.wcl:g} "
            f"(deadline {result.deadline:g}, "
            f"K = {result.full_latency.max_queue})"
        )
    if result.typical_latency is not None:
        lines.append(f"  typical WCL = {result.typical_latency.wcl:g}")
    if result.combination_count:
        lines.append(
            f"  combinations: {result.combination_count} "
            f"({result.unschedulable_count} unschedulable, "
            f"slack S* = {result.min_slack:g})"
        )
        # Listing every unschedulable combination would materialize the
        # full (potentially exponential) set the pruned pipeline never
        # built; past a modest size, show the inclusion-minimal
        # witnesses the search already collected instead.
        if result.combination_count <= 10_000:
            witnesses = result.unschedulable
            marker = "unschedulable"
        else:
            witnesses = result.minimal_unschedulable()
            marker = "minimal unschedulable"
        for combo in witnesses:
            lines.append(f"    {marker}: {combo} (cost {combo.cost:g})")
    if result.n_b:
        lines.append(f"  N_b = {result.n_b}")
    stats = result.packing_stats()
    if stats:
        lines.append(
            f"  packing engine [{result.backend}]: {format_packing_stats(stats)}"
        )
    return "\n".join(lines)
