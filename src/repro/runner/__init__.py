"""Parallel batch analysis: process fan-out plus memoized fixed points.

Public surface::

    from repro.runner import AnalysisCache, AnalysisJob, BatchRunner

    runner = BatchRunner(workers=4)
    batch = runner.run_systems(systems)       # or runner.run(jobs)
    print(batch.summary())
    payload = batch.to_json()                 # deterministic export

The deterministic JSON export of a batch is byte-identical for any
worker count; see :mod:`repro.runner.batch`.
"""

from .batch import BatchExecutionError, BatchResult, BatchRunner
from .cache import AnalysisCache, CacheStats
from .jobs import (
    DEFAULT_KS,
    AnalysisJob,
    JobResult,
    analyze_system_job,
    canonical_system_json,
    execute_job,
)

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "AnalysisJob",
    "JobResult",
    "DEFAULT_KS",
    "analyze_system_job",
    "canonical_system_json",
    "execute_job",
    "BatchRunner",
    "BatchResult",
    "BatchExecutionError",
]
