"""Parallel batch analysis: process fan-out plus memoized fixed points.

Public surface::

    from repro.runner import AnalysisCache, AnalysisJob, BatchRunner

    runner = BatchRunner(workers=4)
    batch = runner.run_systems(systems)       # or runner.run(jobs)
    print(batch.summary())
    payload = batch.to_json()                 # deterministic export

The deterministic JSON export of a batch is byte-identical for any
worker count; see :mod:`repro.runner.batch`.  Passing
``BatchRunner(cache_dir=...)`` (CLI: ``repro batch --cache-dir``)
backs every worker's cache with a shared persistent on-disk store, so
warm sweeps skip all memoized recomputation across processes and across
runs; ``BatchRunner.run_paths`` additionally loads system files inside
the workers so parse I/O overlaps analysis.

Past one host, :mod:`repro.runner.shard` scales the same job lists over
shard workers — local processes and/or remote ``repro shard-worker``
endpoints — with work-stealing and bounded retries, merging to the
byte-identical deterministic export (CLI: ``repro shard``).
"""

from .batch import BatchExecutionError, BatchResult, BatchRunner
from .cache import AnalysisCache, CacheStats, merge_stats
from .diskcache import DiskStore, PersistentAnalysisCache
from .jobs import (
    DEFAULT_KS,
    AnalysisJob,
    JobResult,
    analyze_system_job,
    canonical_system_json,
    execute_job,
    job_result_key,
    run_chain_job,
)
from .loader import SystemLoader, SystemPathJob, execute_path_job
from .progress import NULL_LOG, ShardLog, TaggedLog
from .retry import NO_RETRY, RetryPolicy
from .shard import (
    LocalShardWorker,
    RemoteShardWorker,
    ShardChunk,
    ShardCoordinator,
    ShardExecutionError,
    WorkerUnavailable,
    local_shard_workers,
    make_chunks,
    run_sharded,
)

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "merge_stats",
    "DiskStore",
    "PersistentAnalysisCache",
    "AnalysisJob",
    "JobResult",
    "DEFAULT_KS",
    "analyze_system_job",
    "canonical_system_json",
    "execute_job",
    "job_result_key",
    "run_chain_job",
    "SystemLoader",
    "SystemPathJob",
    "execute_path_job",
    "BatchRunner",
    "BatchResult",
    "BatchExecutionError",
    "RetryPolicy",
    "NO_RETRY",
    "ShardLog",
    "TaggedLog",
    "NULL_LOG",
    "ShardChunk",
    "ShardCoordinator",
    "ShardExecutionError",
    "WorkerUnavailable",
    "LocalShardWorker",
    "RemoteShardWorker",
    "local_shard_workers",
    "make_chunks",
    "run_sharded",
]
