"""Batch jobs: one (system, chain) TWCA unit of work.

Jobs carry the system as canonical JSON rather than a live object so
they pickle cheaply and identically across process boundaries, and so a
job is itself content-addressed: :attr:`AnalysisJob.digest` identifies
a (system, chain, parameters) work unit for result dedup and the
planned cross-process/on-disk cache (ROADMAP), while the in-analysis
memoization keys on :meth:`repro.model.System.content_digest`.
:func:`execute_job` is the single execution path used by both the
serial and the process-pool runner, which is what makes ``workers=1``
and ``workers=N`` byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Hashable, Optional, Tuple

from ..analysis.exceptions import AnalysisError
from ..analysis.memo import content_key
from ..analysis.twca import analyze_twca
from ..kernel import kernel_name
from ..model import System
from ..model.serialization import canonical_system_json, system_from_dict
from .cache import AnalysisCache

#: Default DMM window sizes exported per job (Table II uses 3/76/250;
#: 1/10/100 is the library-wide reporting default).
DEFAULT_KS: Tuple[int, ...] = (1, 10, 100)


@dataclass(frozen=True)
class AnalysisJob:
    """One TWCA work unit: analyze ``chain_name`` inside the system.

    ``label`` identifies the job in reports (defaults to the system
    name); ``ks`` are the DMM window sizes evaluated and exported.
    """

    system_json: str
    chain_name: str
    ks: Tuple[int, ...] = DEFAULT_KS
    backend: str = "branch_bound"
    max_combinations: int = 100_000
    exact_criterion: bool = True
    enumeration: str = "pruned"
    label: str = ""

    @classmethod
    def from_system(
        cls,
        system: System,
        chain_name: str,
        *,
        ks: Tuple[int, ...] = DEFAULT_KS,
        backend: str = "branch_bound",
        max_combinations: int = 100_000,
        exact_criterion: bool = True,
        enumeration: str = "pruned",
        label: str = "",
    ) -> "AnalysisJob":
        """Build a job from a live system (serialized canonically)."""
        return cls(
            system_json=canonical_system_json(system),
            chain_name=chain_name,
            ks=tuple(ks),
            backend=backend,
            max_combinations=max_combinations,
            exact_criterion=exact_criterion,
            enumeration=enumeration,
            label=label or system.name,
        )

    @property
    def digest(self) -> str:
        """Content digest of (system, chain, parameters): the stable
        identity of this work unit across processes and runs.  The
        shared result cache keys the equivalent tuple identity (see
        :func:`job_result_key`), reachable from both serialized and
        worker-loaded jobs."""
        payload = json.dumps(
            [
                self.system_json,
                self.chain_name,
                list(self.ks),
                self.backend,
                self.max_combinations,
                self.exact_criterion,
                self.enumeration,
            ],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def system(self) -> System:
        """Materialize the system object.

        ``system_json`` is already the canonical serialization, so the
        content digest is seeded from it directly — workers skip the
        re-serialize-and-hash that ``System.content_digest`` would do."""
        system = system_from_dict(json.loads(self.system_json))
        digest = hashlib.sha256(self.system_json.encode("utf-8")).hexdigest()
        system.__dict__["_content_digest"] = digest
        return system

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe wire form for remote shard transport.  The system
        travels as its canonical JSON string, so
        ``from_dict(to_dict())`` reproduces the job — and its
        :attr:`digest` — exactly."""
        return {
            "system_json": self.system_json,
            "chain_name": self.chain_name,
            "ks": list(self.ks),
            "backend": self.backend,
            "max_combinations": self.max_combinations,
            "exact_criterion": self.exact_criterion,
            "enumeration": self.enumeration,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AnalysisJob":
        """Inverse of :meth:`to_dict`; rejects unknown fields so wire
        drift between coordinator and worker versions fails loudly."""
        known = {
            "system_json",
            "chain_name",
            "ks",
            "backend",
            "max_combinations",
            "exact_criterion",
            "enumeration",
            "label",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown AnalysisJob fields: {sorted(unknown)}")
        try:
            system_json = data["system_json"]
            chain_name = data["chain_name"]
        except KeyError as exc:
            raise ValueError(f"AnalysisJob wire form missing {exc}") from None
        return cls(
            system_json=system_json,
            chain_name=chain_name,
            ks=tuple(data.get("ks", DEFAULT_KS)),
            backend=data.get("backend", "branch_bound"),
            max_combinations=data.get("max_combinations", 100_000),
            exact_criterion=data.get("exact_criterion", True),
            enumeration=data.get("enumeration", "pruned"),
            label=data.get("label", ""),
        )


@dataclass
class JobResult:
    """Outcome of one :class:`AnalysisJob`.

    ``status`` is the :class:`~repro.analysis.twca.GuaranteeStatus`
    value string, or ``"error"`` when the analysis raised an
    :class:`~repro.analysis.exceptions.AnalysisError` (recorded in
    ``error``).  ``dmm`` maps each requested window size to its miss
    bound.  ``elapsed`` (seconds), ``cache`` (counter deltas),
    ``packing`` (the packing-engine solver counters of
    :meth:`~repro.analysis.twca.ChainTwcaResult.packing_stats`) and the
    active numeric ``kernel`` are observability fields excluded from
    deterministic exports — both kernels produce byte-identical
    deterministic payloads by design.
    """

    label: str
    chain_name: str
    status: str
    wcl: Optional[float] = None
    typical_wcl: Optional[float] = None
    n_b: int = 0
    combinations: int = 0
    unschedulable: int = 0
    dmm: Dict[int, int] = field(default_factory=dict)
    error: Optional[str] = None
    elapsed: float = 0.0
    cache: Dict[str, Dict[str, int]] = field(default_factory=dict)
    packing: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        """Rebuild a result from its exported dict — the inverse of
        :meth:`to_dict`.  Deterministic fields are always restored;
        observability fields (``elapsed``, ``cache``, ``packing``) are
        restored when the payload carries them (remote shard workers
        ship ``to_dict(deterministic=False)`` so the coordinator can
        merge cache statistics) and keep their defaults otherwise."""
        return cls(
            label=data["label"],
            chain_name=data["chain"],
            status=data["status"],
            wcl=data.get("wcl"),
            typical_wcl=data.get("typical_wcl"),
            n_b=data.get("n_b", 0),
            combinations=data.get("combinations", 0),
            unschedulable=data.get("unschedulable", 0),
            dmm={int(k): v for k, v in data.get("dmm", {}).items()},
            error=data.get("error"),
            elapsed=data.get("elapsed", 0.0),
            cache={
                category: {field: int(v) for field, v in counters.items()}
                for category, counters in data.get("cache", {}).items()
            },
            packing={k: int(v) for k, v in data.get("packing", {}).items()},
        )

    def score(self, k: int) -> float:
        """The scoring convention of
        :class:`repro.opt.priority_search.DmmObjective`: ``dmm(k)``,
        or the vacuous bound ``k`` when the analysis errored.  Lower is
        better.  Every runner-backed evaluation path shares this single
        implementation so serial and batched searches cannot drift."""
        return float(k) if not self.ok else float(self.dmm[k])

    def to_dict(self, *, deterministic: bool = True) -> Dict[str, Any]:
        """Plain-dict form; ``deterministic`` drops timing/cache fields
        so serial and parallel runs export byte-identical payloads."""
        data: Dict[str, Any] = {
            "label": self.label,
            "chain": self.chain_name,
            "status": self.status,
            "wcl": _json_number(self.wcl),
            "typical_wcl": _json_number(self.typical_wcl),
            "n_b": self.n_b,
            "combinations": self.combinations,
            "unschedulable": self.unschedulable,
            "dmm": {str(k): v for k, v in sorted(self.dmm.items())},
            "error": self.error,
        }
        if not deterministic:
            data["elapsed"] = self.elapsed
            data["cache"] = self.cache
            data["packing"] = self.packing
            data["kernel"] = kernel_name()
        return data


def _json_number(value: Optional[float]) -> Optional[float]:
    """Strict-JSON-safe number: non-finite floats become ``None``."""
    if value is None or not math.isfinite(value):
        return None
    return value


def analyze_system_job(
    system: System,
    chain_name: str,
    *,
    ks: Tuple[int, ...] = DEFAULT_KS,
    backend: str = "branch_bound",
    max_combinations: int = 100_000,
    exact_criterion: bool = True,
    enumeration: str = "pruned",
    label: str = "",
) -> JobResult:
    """Run one TWCA and summarize it as a :class:`JobResult`.

    Analysis-level failures (:class:`AnalysisError`) are captured as
    ``status="error"`` results; anything else (missing chain, broken
    system JSON, worker bugs) propagates to the caller.
    """
    label = label or system.name
    chain = system[chain_name]
    start = time.perf_counter()
    try:
        result = analyze_twca(
            system,
            chain,
            backend=backend,
            max_combinations=max_combinations,
            exact_criterion=exact_criterion,
            enumeration=enumeration,
        )
    except AnalysisError as exc:
        return JobResult(
            label=label,
            chain_name=chain_name,
            status="error",
            error=f"{type(exc).__name__}: {exc}",
            elapsed=time.perf_counter() - start,
        )
    dmm = result.dmm_curve(ks)
    full, typical = result.full_latency, result.typical_latency
    return JobResult(
        label=label,
        chain_name=chain_name,
        status=result.status.value,
        wcl=None if full is None else full.wcl,
        typical_wcl=None if typical is None else typical.wcl,
        n_b=result.n_b,
        combinations=result.combination_count,
        unschedulable=result.unschedulable_count,
        dmm=dmm,
        elapsed=time.perf_counter() - start,
        packing=result.packing_stats(),
    )


def default_chain_names(system: System) -> Tuple[str, ...]:
    """The chains a batch analyzes when none are named explicitly:
    every typical chain with a finite deadline, in system order."""
    return tuple(c.name for c in system.typical_chains if c.has_deadline)


def job_result_key(
    system: System,
    chain_name: str,
    ks: Tuple[int, ...],
    backend: str,
    max_combinations: int,
    exact_criterion: bool,
    enumeration: str,
) -> Optional[Hashable]:
    """The content identity of one (system, chain, parameters) work
    unit — the ``jobs``-category cache key.  ``None`` when the system
    has no canonical digest (user-defined event models), in which case
    result reuse is skipped rather than risking key collisions."""
    digest = content_key(system)
    if digest is None:
        return None
    return (
        digest,
        chain_name,
        tuple(ks),
        backend,
        max_combinations,
        exact_criterion,
        enumeration,
    )


def run_chain_job(
    system: System,
    chain_name: str,
    *,
    ks: Tuple[int, ...] = DEFAULT_KS,
    backend: str = "branch_bound",
    max_combinations: int = 100_000,
    exact_criterion: bool = True,
    enumeration: str = "pruned",
    label: str = "",
    cache: Optional[AnalysisCache] = None,
) -> JobResult:
    """:func:`analyze_system_job` under ``cache``, with the cache
    counter delta accumulated while running the job recorded on the
    result — that is how parallel workers report aggregate hit rates
    back to the parent process.  The shared execution primitive of
    serialized jobs (:func:`execute_job`) and worker-loaded path jobs
    (:func:`repro.runner.loader.execute_path_job`).

    Under a cache, whole results are reused through the ``jobs``
    category keyed by :func:`job_result_key`: a content-identical job —
    a duplicate in the same batch, or any job of a warm persistent run —
    skips even the per-job assembly and is served the stored
    :class:`JobResult` (analysis outcomes are pure functions of the key,
    so served and recomputed results are identical; only the
    observability fields differ).
    """
    if cache is None:
        return analyze_system_job(
            system,
            chain_name,
            ks=ks,
            backend=backend,
            max_combinations=max_combinations,
            exact_criterion=exact_criterion,
            enumeration=enumeration,
            label=label,
        )
    before = cache.counters()
    start = time.perf_counter()
    key = job_result_key(
        system, chain_name, ks, backend, max_combinations, exact_criterion,
        enumeration,
    )
    hit = cache.lookup("jobs", key) if key is not None else None
    if hit is not None:
        # Copies keep callers from mutating the cached payload; the
        # label is the caller's (the same content can carry different
        # display labels in different batches).
        result = replace(
            hit,
            label=label or hit.label,
            dmm=dict(hit.dmm),
            elapsed=time.perf_counter() - start,
            cache={},
            packing={},
        )
    else:
        with cache.activate():
            result = analyze_system_job(
                system,
                chain_name,
                ks=ks,
                backend=backend,
                max_combinations=max_combinations,
                exact_criterion=exact_criterion,
                enumeration=enumeration,
                label=label,
            )
        if key is not None:
            cache.store(
                "jobs",
                key,
                replace(
                    result, dmm=dict(result.dmm), elapsed=0.0, cache={}, packing={}
                ),
            )
    after = cache.counters()
    result.cache = {
        category: {
            field: after[category][field] - before[category][field]
            for field in after[category]
        }
        for category in after
    }
    return result


def execute_job(job: AnalysisJob, cache: Optional[AnalysisCache] = None) -> JobResult:
    """Materialize and run ``job``, optionally under ``cache``."""
    return run_chain_job(
        job.system(),
        job.chain_name,
        ks=job.ks,
        backend=job.backend,
        max_combinations=job.max_combinations,
        exact_criterion=job.exact_criterion,
        enumeration=job.enumeration,
        label=job.label,
        cache=cache,
    )
