"""The shard scheduler: a lock-protected chunk state machine.

Separated from :mod:`repro.runner.shard` so the scheduling policy —
eligibility, backoff, stealing, first-completion-wins — is one small
auditable unit with no process or HTTP machinery in sight.  All methods
take the lock; dispatch threads are the only callers.

Chunk lifecycle::

    pending --(acquire)--> running --(release_success)--> completed
       ^                     |
       |                     +--(release_failure, retryable,
       +---- backoff delay ------ budget left)
                             |
                             +--(budget spent / not retryable)--> failure

A running chunk can gain a *second* claimant through stealing; the
first claimant to complete wins and later outcomes for the chunk —
successes and failures alike — are discarded.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

from .retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from .jobs import JobResult
    from .shard import ShardChunk

#: Maximum concurrent claimants per chunk (the original + one thief).
MAX_CLAIMANTS = 2


class WorkerUnavailable(RuntimeError):
    """A shard worker died or became unreachable mid-chunk — the
    *retryable* failure mode: the chunk itself is fine and can be
    re-run, here or on another worker."""


class ShardExecutionError(RuntimeError):
    """A chunk failed terminally: its retry budget is spent, or it
    failed in a non-retryable way (job-level bug).  Carries the chunk
    and the last underlying exception as ``cause``."""

    def __init__(self, chunk: ShardChunk, cause: BaseException, attempts: int):
        self.chunk = chunk
        self.cause = cause
        self.attempts = attempts
        super().__init__(
            f"shard chunk {chunk.index} ({len(chunk.jobs)} jobs) failed "
            f"after {attempts} attempt(s): {type(cause).__name__}: {cause}"
        )


class _Running:
    """Bookkeeping for one in-flight chunk."""

    __slots__ = ("chunk", "claimants", "started")

    def __init__(self, chunk: ShardChunk, claimant: str, started: float):
        self.chunk = chunk
        self.claimants: Set[str] = {claimant}
        self.started = started


class _ShardState:
    """Shared scheduler state for one coordinator run."""

    def __init__(self, chunks: List[ShardChunk], retry: RetryPolicy):
        self._lock = threading.Lock()
        self._retry = retry
        self._total = len(chunks)
        #: (chunk, not_before): eligible once the clock passes not_before.
        self._pending: Deque[Tuple[ShardChunk, float]] = deque(
            (chunk, 0.0) for chunk in chunks
        )
        self._attempts: Dict[int, int] = {chunk.index: 0 for chunk in chunks}
        self._running: Dict[int, _Running] = {}
        self.results: Dict[int, List[JobResult]] = {}
        self.failure: Optional[ShardExecutionError] = None
        self.retries = 0
        self.steals = 0

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {"retries": self.retries, "steals": self.steals}

    # ------------------------------------------------------------------
    # Dispatch-side protocol
    # ------------------------------------------------------------------
    def acquire(self, worker: str):
        """The next action for ``worker``:

        * ``("run", (chunk, stolen))`` — run this chunk now;
        * ``("wait", seconds)`` — nothing eligible yet, back off;
        * ``("done", None)`` — the run is over (completed or failed).
        """
        with self._lock:
            if self.failure is not None or len(self.results) == self._total:
                return ("done", None)
            now = time.monotonic()
            chunk = self._pop_eligible(now)
            if chunk is not None:
                self._claim(chunk, worker, now)
                return ("run", (chunk, False))
            stolen = self._steal(worker, now)
            if stolen is not None:
                self.steals += 1
                return ("run", (stolen, True))
            if not self._pending and not self._running:
                # Nothing queued, nothing running, yet results are
                # incomplete: only reachable transiently between a
                # failure release and the requeue — treat as wait.
                return ("wait", 0.01)
            return ("wait", self._soonest_delay(now))

    def release_success(
        self, chunk: ShardChunk, worker: str, results: List[JobResult]
    ) -> bool:
        """Record a completed chunk; returns whether this completion
        was the first (kept) or a discarded duplicate."""
        with self._lock:
            self._unclaim(chunk, worker)
            if chunk.index in self.results:
                return False
            self.results[chunk.index] = results
            return True

    def release_failure(
        self,
        chunk: ShardChunk,
        worker: str,
        cause: BaseException,
        *,
        retryable: bool,
    ) -> None:
        """Record a failed chunk attempt: requeue with backoff while
        the budget lasts, else mark the run failed."""
        with self._lock:
            self._unclaim(chunk, worker)
            if chunk.index in self.results:
                return  # another claimant already delivered it
            if not retryable:
                if self.failure is None:
                    self.failure = ShardExecutionError(
                        chunk, cause, self._attempts[chunk.index] + 1
                    )
                return
            self._attempts[chunk.index] += 1
            failures = self._attempts[chunk.index]
            if chunk.index in self._running:
                # A thief (or the original claimant) is still on it;
                # its own release decides what happens next.
                return
            if not self._retry.retries_left(failures):
                if self.failure is None:
                    self.failure = ShardExecutionError(chunk, cause, failures)
                return
            self.retries += 1
            not_before = time.monotonic() + self._retry.delay(failures)
            self._pending.append((chunk, not_before))

    # ------------------------------------------------------------------
    # Internals (lock held)
    # ------------------------------------------------------------------
    def _pop_eligible(self, now: float) -> Optional[ShardChunk]:
        for _ in range(len(self._pending)):
            chunk, not_before = self._pending.popleft()
            if chunk.index in self.results:
                continue  # completed by a thief while queued for retry
            if not_before <= now:
                return chunk
            self._pending.append((chunk, not_before))
        return None

    def _claim(self, chunk: ShardChunk, worker: str, now: float) -> None:
        entry = self._running.get(chunk.index)
        if entry is None:
            self._running[chunk.index] = _Running(chunk, worker, now)
        else:  # pragma: no cover - retry while a thief still runs it
            entry.claimants.add(worker)

    def _unclaim(self, chunk: ShardChunk, worker: str) -> None:
        entry = self._running.get(chunk.index)
        if entry is None:
            return
        entry.claimants.discard(worker)
        if not entry.claimants:
            del self._running[chunk.index]

    def _steal(self, worker: str, now: float) -> Optional[ShardChunk]:
        """Duplicate the oldest running chunk this worker is not
        already on (claimant cap :data:`MAX_CLAIMANTS`)."""
        candidates = [
            entry
            for entry in self._running.values()
            if worker not in entry.claimants
            and len(entry.claimants) < MAX_CLAIMANTS
            and entry.chunk.index not in self.results
        ]
        if not candidates:
            return None
        entry = min(candidates, key=lambda e: e.started)
        entry.claimants.add(worker)
        return entry.chunk

    def _soonest_delay(self, now: float) -> float:
        delays = [
            max(0.0, not_before - now)
            for chunk, not_before in self._pending
            if chunk.index not in self.results
        ]
        return min(delays) if delays else 0.05
