"""Shard-tagged, line-buffered progress output.

With several shard workers and a coordinator sharing one terminal,
naive ``print(..., file=sys.stderr)`` calls interleave mid-line: the
underlying stream is unbuffered for bytes but a single logical line is
emitted as several ``write()`` calls (text, then the newline), so two
shards racing produce garbage like ``[shard 0] chunk[shard 2] 3 done``.

:class:`ShardLog` fixes this at the source: every line is assembled in
full — tag, message, newline — and handed to the stream as *one*
``write()`` call under a lock, then flushed.  Workers and the
coordinator funnel all progress through one shared instance (local
worker processes report events back to the parent over their result
queues rather than writing to stderr directly), so ``repro shard -v``
output is parseable line-by-line no matter how many shards race.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import IO, Optional


class ShardLog:
    """Thread-safe writer emitting whole ``[shard <tag>] ...`` lines.

    ``verbose=False`` turns every call into a no-op so call sites don't
    need their own guards.  ``tag()`` binds a shard id once and returns
    a lightweight proxy, keeping per-event call sites to one argument.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        *,
        verbose: bool = True,
        clock: Optional[float] = None,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.verbose = verbose
        self._lock = threading.Lock()
        self._start = clock if clock is not None else time.perf_counter()

    def line(self, tag: str, message: str) -> None:
        """Emit ``[shard <tag>] <elapsed>s <message>`` atomically."""
        if not self.verbose:
            return
        elapsed = time.perf_counter() - self._start
        text = f"[shard {tag}] {elapsed:8.3f}s {message}\n"
        with self._lock:
            # One write() per logical line is the whole point: the
            # stream never sees a partial line from any thread.
            self.stream.write(text)
            self.stream.flush()

    def tag(self, tag: str) -> "TaggedLog":
        return TaggedLog(self, tag)


class TaggedLog:
    """A :class:`ShardLog` view bound to one shard id."""

    def __init__(self, log: ShardLog, tag: str):
        self._log = log
        self.tag = tag

    def line(self, message: str) -> None:
        self._log.line(self.tag, message)


#: Shared silent default: call sites can always log unconditionally.
NULL_LOG = ShardLog(verbose=False)
