"""Cross-process persistent backend for :class:`AnalysisCache`.

The in-memory cache of :mod:`repro.runner.cache` dies with its process,
so content-identical jobs landing on different workers — or in the next
``repro batch`` invocation — recompute their busy-window fixed points
from scratch.  This module adds a shared, persistent second level: a
content-addressed on-disk store keyed by the same
``(System.content_digest(), *scalar args)`` tuples the in-memory cache
uses, safe under concurrent writers.

Design:

* **Addressing** — an entry lives at
  ``<root>/<category>/<kk>/<key-digest>.bin`` where ``key-digest`` is
  the SHA-256 of the cache key's canonical ``repr`` (keys are tuples of
  str/int/float/bool/None, whose ``repr`` is stable across processes)
  and ``kk`` its first two hex digits (fan-out, so directories stay
  small during million-entry sweeps).
* **Atomicity** — writers serialize into a unique temp file in the same
  directory and ``os.replace`` it into place, so a concurrently reading
  worker sees either the complete entry or none; last writer wins
  (writers racing on one key write identical bytes anyway).
* **Integrity** — the payload is framed with a magic/version line and
  its own SHA-256.  A truncated, torn or poisoned entry fails the frame
  check, is dropped (best-effort unlink) and counted, and the caller
  recomputes: corruption costs work, never correctness.
* **Trust** — payloads are pickles, so the cache directory is trusted
  local state like any build cache (the checksum detects corruption,
  not an adversary who can already write arbitrary local files).

Invalidation is free: keys start with the system content digest, so any
change to a system's content addresses different entries, and stale
ones are simply never read again.  Delete the directory to reclaim
space.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Hashable, Optional

from .cache import CATEGORIES, AnalysisCache

#: Format marker of on-disk entries; bump on incompatible layout change
#: (old entries then fail the frame check and are recomputed).
MAGIC = b"repro-analysis-cache v1\n"


def key_digest(key: Hashable) -> str:
    """SHA-256 hex digest of the cache key's canonical ``repr``.

    Analysis cache keys are flat tuples of primitives (the system
    content digest plus scalar arguments), so ``repr`` is deterministic
    across processes and Python builds — unlike ``hash()``, which is
    salted per process for strings.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def encode_entry(value: Any) -> bytes:
    """Frame ``value`` for disk: magic, payload digest, pickle payload."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()
    return MAGIC + digest.encode("ascii") + b"\n" + payload


def decode_entry(blob: bytes) -> Any:
    """Inverse of :func:`encode_entry`.

    Raises ``ValueError`` when the frame is truncated, the digest does
    not match the payload, or the payload does not unpickle — the three
    faces of a torn or poisoned entry.
    """
    if not blob.startswith(MAGIC):
        raise ValueError("bad magic (foreign or truncated cache entry)")
    body = blob[len(MAGIC) :]
    digest, sep, payload = body.partition(b"\n")
    if not sep:
        raise ValueError("truncated cache entry (no digest line)")
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        raise ValueError("cache entry payload digest mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise ValueError(f"cache entry does not unpickle: {exc}") from exc


def _category_files(category_dir: Path):
    """Every file under a category's fan-out dirs, including the
    dot-prefixed temp files ``glob`` would skip."""
    for fanout in category_dir.glob("??"):
        try:
            yield from (p for p in fanout.iterdir() if p.is_file())
        except OSError:
            continue  # racing pruner removed the directory


class DiskStore:
    """The low-level content-addressed file store.

    Any number of processes — and, within a process, any number of
    threads — may share the same ``root`` concurrently: reads see whole
    entries or none (atomic ``os.replace`` publication), and the
    ``corrupt_dropped`` counter of entries that failed the integrity
    check and were discarded is incremented under a lock so concurrent
    readers never lose a count.
    """

    def __init__(self, root: os.PathLike, *, create: bool = True):
        self.root = Path(root)
        self.corrupt_dropped = 0
        self._counter_lock = threading.Lock()
        if create:
            for category in CATEGORIES:
                (self.root / category).mkdir(parents=True, exist_ok=True)
        # With ``create=False`` (read-only inspection, e.g. ``repro
        # cache``) nothing is written up front; ``store`` still creates
        # directories on demand, and the stats/prune walks tolerate
        # absent category directories.

    def path_for(self, category: str, key: Hashable) -> Path:
        digest = key_digest(key)
        return self.root / category / digest[:2] / f"{digest}.bin"

    def load(self, category: str, key: Hashable) -> Optional[Any]:
        """The stored value, or ``None`` on miss or corruption (the
        corrupt file is dropped so the recomputed value replaces it)."""
        path = self.path_for(category, key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            return decode_entry(blob)
        except ValueError:
            with self._counter_lock:
                self.corrupt_dropped += 1
            with contextlib.suppress(OSError):
                path.unlink()
            return None

    def store(self, category: str, key: Hashable, value: Any) -> None:
        """Atomically publish ``value``: a reader either sees the whole
        entry or none, never a torn write."""
        path = self.path_for(category, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = encode_entry(value)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.stem}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def entry_counts(self) -> Dict[str, int]:
        """Number of complete on-disk entries per category."""
        return {
            category: sum(1 for _ in (self.root / category).glob("??/*.bin"))
            for category in CATEGORIES
        }

    def category_stats(self) -> Dict[str, Dict[str, int]]:
        """Entry count and byte footprint per category, plus stray
        temp files left by crashed writers (reported, not counted as
        entries) — the data source of ``repro cache``."""
        stats: Dict[str, Dict[str, int]] = {}
        for category in CATEGORIES:
            entries = 0
            size = 0
            stale_tmp = 0
            for path in _category_files(self.root / category):
                try:
                    file_size = path.stat().st_size
                except OSError:
                    continue  # racing writer/pruner; skip
                if path.suffix == ".bin":
                    entries += 1
                    size += file_size
                elif path.suffix == ".tmp":
                    stale_tmp += 1
            stats[category] = {
                "entries": entries,
                "bytes": size,
                "stale_tmp": stale_tmp,
            }
        return stats

    def prune_older_than(
        self, max_age_seconds: float, *, now: Optional[float] = None
    ) -> Dict[str, Dict[str, int]]:
        """Delete entries whose mtime is older than ``max_age_seconds``
        (and stale temp files of the same age), returning per-category
        ``{"removed": n, "bytes": b}`` counts.

        Deletion is always safe: entries are pure memoization, so a
        pruned key merely recomputes on next use.  Concurrent readers
        racing a prune fall back to recomputation the same way they
        handle a corrupt entry.
        """
        if max_age_seconds < 0:
            raise ValueError(
                f"max_age_seconds must be >= 0, got {max_age_seconds}"
            )
        cutoff = (time.time() if now is None else now) - max_age_seconds
        removed: Dict[str, Dict[str, int]] = {}
        for category in CATEGORIES:
            count = 0
            size = 0
            for path in _category_files(self.root / category):
                if path.suffix not in (".bin", ".tmp"):
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                if stat.st_mtime > cutoff:
                    continue
                with contextlib.suppress(OSError):
                    path.unlink()
                    count += 1
                    size += stat.st_size
            removed[category] = {"removed": count, "bytes": size}
        return removed


class PersistentAnalysisCache(AnalysisCache):
    """An :class:`AnalysisCache` whose second level is a shared on-disk
    :class:`DiskStore`.

    Lookups hit the in-process LRU front first (dict-fast); a front
    miss consults the disk store and promotes the entry, counting it as
    a ``disk_hit``.  Stores write through atomically, so every process
    pointed at the same directory — batch workers, later runs, other
    hosts on a shared filesystem — warm-starts from all prior work.
    """

    def __init__(self, cache_dir: os.PathLike, maxsize: int = 200_000):
        super().__init__(maxsize=maxsize)
        self.disk = DiskStore(cache_dir)

    @property
    def cache_dir(self) -> Path:
        return self.disk.root

    def _backend_lookup(self, category: str, key: Hashable) -> Optional[Any]:
        return self.disk.load(category, key)

    def _backend_store(self, category: str, key: Hashable, value: Any) -> None:
        self.disk.store(category, key, value)

    def __repr__(self) -> str:
        return f"{super().__repr__()[:-1]}, dir={str(self.disk.root)!r})"
