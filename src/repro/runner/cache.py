"""Content-addressed memoization of analysis artifacts.

The TWCA recomputes three expensive pure functions over and over during
sweeps: the Theorem 1 busy-time fixed points, the Lemma 4 ``Omega``
capacities, and the Def. 8 active-segment decompositions.  All three
depend only on system *content*, so :class:`AnalysisCache` memoizes them
keyed by the system's SHA-256 content digest plus the scalar arguments.

The cache is installed process-locally through
:mod:`repro.analysis.memo`.  :class:`AnalysisCache` is the purely
in-memory LRU form; :class:`repro.runner.diskcache.PersistentAnalysisCache`
extends it with an on-disk content-addressed backend shared by every
worker process pointed at the same directory.  Hit/miss/disk-hit
counters per category make cache effectiveness observable in
:class:`repro.runner.BatchResult` exports.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterator, Optional, Tuple

from ..analysis.memo import using_cache

#: The memoized artifact families.  ``busy_time``, ``omega`` and
#: ``segments`` are the classic analysis primitives; ``combo_exact``
#: holds the Def. 10 exact-schedulability verdict per combination cost
#: signature; ``packing`` holds Theorem 3 packing optima keyed by
#: (system, chain, backend, Omega tuple), so warm DMM curves skip even
#: the incremental engine resolves; ``jobs`` holds whole
#: :class:`~repro.runner.jobs.JobResult` payloads keyed by the job's
#: content identity, so warm batches skip per-job assembly entirely.
CATEGORIES: Tuple[str, ...] = (
    "busy_time",
    "omega",
    "segments",
    "combo_exact",
    "packing",
    "jobs",
)

#: The counter fields carried per category in stats dicts and job-level
#: cache deltas; :func:`merge_stats` sums exactly these.
STAT_FIELDS: Tuple[str, ...] = ("hits", "misses", "disk_hits", "entries")


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/size counters of one cache category.

    ``hits`` counts every lookup served without recomputation; the
    ``disk_hits`` subset of those was promoted from the persistent
    backend rather than the in-process LRU front.
    """

    hits: int = 0
    misses: int = 0
    entries: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class AnalysisCache:
    """Memoizes busy-time fixed points, Omega capacities and segment
    decompositions across analyses of content-identical systems.

    Duck-typed against :mod:`repro.analysis.memo`: the analysis layer
    only calls :meth:`lookup` and :meth:`store`.  Entries are kept in
    LRU order — a hit refreshes its key — and once ``maxsize`` entries
    exist in a category, storing a new key evicts the least recently
    used one, so memory stays bounded during unbounded sweeps while hot
    systems keep their entries.  Eviction only ever costs a
    recomputation, never correctness.

    Thread-safe: one cache instance may be shared by concurrent
    analyses (the ``repro serve`` compute pool drives exactly this).
    A single lock guards the LRU dicts and the counters, so the
    accounting invariant ``hits + misses == lookups`` holds under any
    interleaving; backend (disk) I/O runs *outside* the lock so slow
    persistent reads never serialize unrelated in-memory traffic.
    """

    def __init__(self, maxsize: int = 200_000):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.RLock()
        self._stores: Dict[str, Dict[Hashable, Any]] = {
            category: {} for category in CATEGORIES
        }
        self._hits: Dict[str, int] = dict.fromkeys(CATEGORIES, 0)
        self._misses: Dict[str, int] = dict.fromkeys(CATEGORIES, 0)
        self._disk_hits: Dict[str, int] = dict.fromkeys(CATEGORIES, 0)

    # ------------------------------------------------------------------
    # The memo protocol used by repro.analysis
    # ------------------------------------------------------------------
    def lookup(self, category: str, key: Hashable) -> Optional[Any]:
        """The cached value for ``key`` (``None`` on miss; no category
        stores ``None`` values)."""
        store = self._stores[category]
        with self._lock:
            value = store.get(key)
            if value is not None:
                # LRU refresh: re-append so eviction tracks recency.
                del store[key]
                store[key] = value
                self._hits[category] += 1
                return value
        # Front miss: consult the backend outside the lock (disk I/O).
        value = self._backend_lookup(category, key)
        with self._lock:
            if value is None:
                self._misses[category] += 1
                return None
            self._disk_hits[category] += 1
            self._hits[category] += 1
            # A racing thread may have promoted/stored the key while the
            # backend read ran; either way re-append it most recent.
            if key in store:
                del store[key]
            elif len(store) >= self.maxsize:
                del store[next(iter(store))]
            store[key] = value
        return value

    def peek(self, category: str, key: Hashable) -> Optional[Any]:
        """Counter-neutral lookup: the cached value if present (front or
        backend), without touching hit/miss accounting, LRU order or
        promotion.  Used by opportunistic probes — e.g. the warm-start
        seeds of the busy-window Kleene iteration — whose misses are
        expected and must not skew cache-effectiveness stats."""
        with self._lock:
            value = self._stores[category].get(key)
        if value is None:
            value = self._backend_lookup(category, key)
        return value

    def store(self, category: str, key: Hashable, value: Any) -> None:
        """Record ``value`` for ``key``, evicting the category's least
        recently used entry once ``maxsize`` is reached."""
        store = self._stores[category]
        with self._lock:
            if key not in store and len(store) >= self.maxsize:
                del store[next(iter(store))]
            store[key] = value
        self._backend_store(category, key, value)

    # ------------------------------------------------------------------
    # Persistence hooks (no-ops for the in-memory cache)
    # ------------------------------------------------------------------
    def _backend_lookup(self, category: str, key: Hashable) -> Optional[Any]:
        """Second-level lookup consulted on an in-memory miss; the
        persistent subclass reads the on-disk store here."""
        return None

    def _backend_store(self, category: str, key: Hashable, value: Any) -> None:
        """Write-through hook invoked by :meth:`store`."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, CacheStats]:
        """Per-category counters (one consistent snapshot)."""
        with self._lock:
            return {
                category: CacheStats(
                    hits=self._hits[category],
                    misses=self._misses[category],
                    entries=len(self._stores[category]),
                    disk_hits=self._disk_hits[category],
                )
                for category in CATEGORIES
            }

    def stats_dict(self) -> Dict[str, Dict[str, int]]:
        """JSON-friendly form of :meth:`stats`."""
        return {
            category: {
                "hits": stats.hits,
                "misses": stats.misses,
                "disk_hits": stats.disk_hits,
                "entries": stats.entries,
            }
            for category, stats in self.stats().items()
        }

    def counters(self) -> Dict[str, Dict[str, int]]:
        """``{category: {field: count}}`` snapshot (hits, misses and
        disk hits — not entries), for delta tracking around one job."""
        with self._lock:
            return {
                category: {
                    "hits": self._hits[category],
                    "misses": self._misses[category],
                    "disk_hits": self._disk_hits[category],
                }
                for category in CATEGORIES
            }

    @property
    def job_hits(self) -> int:
        """Lookups served from the ``jobs`` category — whole
        :class:`~repro.runner.jobs.JobResult` payloads reused without
        re-running the analysis (surfaced per category in
        :meth:`stats` as ``stats()["jobs"]``)."""
        with self._lock:
            return self._hits["jobs"]

    @property
    def hit_count(self) -> int:
        with self._lock:
            return sum(self._hits.values())

    @property
    def miss_count(self) -> int:
        with self._lock:
            return sum(self._misses.values())

    @property
    def disk_hit_count(self) -> int:
        with self._lock:
            return sum(self._disk_hits.values())

    def clear(self) -> None:
        """Drop all in-memory entries and reset the counters (the
        persistent backend, if any, is left untouched)."""
        with self._lock:
            for category in CATEGORIES:
                self._stores[category].clear()
                self._hits[category] = 0
                self._misses[category] = 0
                self._disk_hits[category] = 0

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def activate(self) -> Iterator["AnalysisCache"]:
        """Install this cache for the analyses run inside the block."""
        with using_cache(self):
            yield self

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{category}={len(self._stores[category])}" for category in CATEGORIES
        )
        return f"{type(self).__name__}({sizes})"


def merge_stats(
    totals: Dict[str, Dict[str, int]], update: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    """Accumulate per-category counter dicts (used to aggregate the
    per-worker caches of a parallel batch into one report).  Fields
    absent from ``update`` (older deltas without ``disk_hits``) count
    as zero."""
    for category, counters in update.items():
        bucket = totals.setdefault(category, dict.fromkeys(STAT_FIELDS, 0))
        for field in STAT_FIELDS:
            bucket[field] += counters.get(field, 0)
    return totals
