"""Bounded retry with exponential backoff — one policy object shared by
every layer that talks to something that can die mid-call.

The shard coordinator retries chunks whose worker crashed, the
:class:`~repro.service.http.ServiceClient` retries transport failures
against a restarting daemon, and both must agree on what "retry" means:
a *bounded* number of attempts with exponentially growing, capped delays
— never an unbounded hot loop against a dead peer.

Analysis work is pure (a job's deterministic result is a function of
its content identity), so re-running a request or a chunk is always
safe; the only question a policy answers is *how patiently*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    ``attempts`` counts *total* tries (1 = no retries).  The delay
    before retry ``n`` (1-based: the wait after the ``n``-th failure)
    is ``base_delay * multiplier ** (n - 1)``, capped at ``max_delay``.
    ``base_delay=0`` gives immediate retries (the test configuration).
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")

    def delay(self, retry: int) -> float:
        """Backoff before the ``retry``-th retry (1-based)."""
        if retry < 1:
            raise ValueError(f"retry must be >= 1, got {retry}")
        return min(self.base_delay * self.multiplier ** (retry - 1), self.max_delay)

    def retries_left(self, failures: int) -> bool:
        """Whether another attempt is allowed after ``failures`` tries."""
        return failures < self.attempts

    def call(
        self,
        fn: Callable,
        *,
        retry_on: tuple = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Run ``fn()`` under this policy: up to ``attempts`` tries,
        sleeping :meth:`delay` between them, re-raising the last
        failure once the budget is spent.  ``retry_on`` narrows which
        exceptions are retryable — anything else propagates at once."""
        failures = 0
        while True:
            try:
                return fn()
            except retry_on:
                failures += 1
                if not self.retries_left(failures):
                    raise
                pause = self.delay(failures)
                if pause > 0:
                    sleep(pause)


#: Retry nothing: one attempt, the pre-policy behavior.
NO_RETRY = RetryPolicy(attempts=1, base_delay=0.0)
