"""The parallel batch-analysis runner.

:class:`BatchRunner` fans TWCA jobs out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (``workers > 1``) or
runs them in-process (``workers = 1``, the deterministic reference
path).  Both paths execute the identical
:func:`repro.runner.jobs.execute_job` /
:func:`repro.runner.loader.execute_path_job` code under an
:class:`~repro.runner.cache.AnalysisCache`,
so the deterministic export of a batch is byte-identical regardless of
the worker count — parallelism only changes wall-clock time.

With ``cache_dir`` set, every worker (and the serial path) runs under a
:class:`~repro.runner.diskcache.PersistentAnalysisCache` pointed at the
same directory: memoized busy-window fixed points, Omega capacities and
segment decompositions are shared across worker processes *and* across
batch invocations, so a warm sweep recomputes nothing regardless of job
placement.  ``use_cache=False`` disables memoization entirely.

Worker-side *analysis* failures (divergent busy windows, unanalyzable
chains) are data: they become ``status="error"`` job results.  Anything
else — a missing chain name, corrupt system JSON, an unreadable system
file, a crashed worker — is a bug in the batch itself and is re-raised
in the parent as :class:`BatchExecutionError` naming the failing job.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..model import System
from .cache import AnalysisCache, merge_stats
from .diskcache import PersistentAnalysisCache
from .jobs import (
    DEFAULT_KS,
    AnalysisJob,
    JobResult,
    analyze_system_job,
    execute_job,
)
from .loader import SystemLoader, SystemPathJob, execute_path_job

#: Per-worker cache and loader installed by the pool initializer (one
#: of each per process).
_WORKER_CACHE: Optional[AnalysisCache] = None
_WORKER_LOADER: Optional[SystemLoader] = None


def _build_cache(
    use_cache: bool, cache_dir: Optional[str], maxsize: int
) -> Optional[AnalysisCache]:
    """The cache implied by the (use_cache, cache_dir) knobs: ``None``,
    in-memory, or disk-backed — one policy for parent and workers."""
    if not use_cache:
        return None
    if cache_dir is not None:
        return PersistentAnalysisCache(cache_dir, maxsize=maxsize)
    return AnalysisCache(maxsize=maxsize)


def _init_worker(maxsize: int, cache_dir: Optional[str], use_cache: bool) -> None:
    global _WORKER_CACHE, _WORKER_LOADER
    _WORKER_CACHE = _build_cache(use_cache, cache_dir, maxsize)
    _WORKER_LOADER = SystemLoader()


def _run_in_worker(job: AnalysisJob) -> JobResult:
    return execute_job(job, cache=_WORKER_CACHE)


def _run_path_in_worker(job: SystemPathJob) -> List[JobResult]:
    return execute_path_job(job, cache=_WORKER_CACHE, loader=_WORKER_LOADER)


class BatchExecutionError(RuntimeError):
    """A job failed outside the analysis layer (bad input or worker
    crash); carries the job and the original exception as ``cause``."""

    def __init__(self, job: Union[AnalysisJob, SystemPathJob], cause: BaseException):
        self.job = job
        self.cause = cause
        super().__init__(
            f"batch job {job.label!r} (chain {job.chain_name!r}) failed: "
            f"{type(cause).__name__}: {cause}"
        )


@dataclass
class BatchResult:
    """Everything one batch run produced.

    ``jobs`` preserves submission order (determinism); ``wall_time``,
    ``workers`` and ``cache_stats`` are observability fields excluded
    from the deterministic export.  ``cache_stats`` merges the counter
    deltas of every job across every worker process, so hits + misses
    sum to the total lookups of the whole batch wherever they ran.
    """

    jobs: List[JobResult]
    workers: int = 1
    wall_time: float = 0.0
    cache_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def status_counts(self) -> Dict[str, int]:
        """Jobs per status, sorted by status name."""
        counts: Dict[str, int] = {}
        for job in self.jobs:
            counts[job.status] = counts.get(job.status, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def errors(self) -> List[JobResult]:
        return [job for job in self.jobs if not job.ok]

    @property
    def cache_hit_rate(self) -> float:
        """Overall cache hit rate across all categories and workers."""
        hits = sum(c.get("hits", 0) for c in self.cache_stats.values())
        misses = sum(c.get("misses", 0) for c in self.cache_stats.values())
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def disk_hit_count(self) -> int:
        """Lookups served by promoting a persistent on-disk entry."""
        return sum(c.get("disk_hits", 0) for c in self.cache_stats.values())

    @property
    def job_hits(self) -> int:
        """Jobs served whole from the ``jobs`` result cache — warm
        batches skip even the per-job assembly for these."""
        return self.cache_stats.get("jobs", {}).get("hits", 0)

    def to_dict(self, *, deterministic: bool = True) -> Dict[str, Any]:
        """Plain-dict export.  With ``deterministic=True`` (default) the
        payload depends only on the jobs and their analysis outcomes —
        ``--workers 1`` and ``--workers N`` exports compare equal."""
        data: Dict[str, Any] = {
            "job_count": len(self.jobs),
            "status_counts": self.status_counts,
            "jobs": [job.to_dict(deterministic=deterministic) for job in self.jobs],
        }
        if not deterministic:
            data["workers"] = self.workers
            data["wall_time"] = self.wall_time
            data["cache"] = self.cache_stats
            data["cache_hit_rate"] = self.cache_hit_rate
        return data

    def to_json(
        self,
        *,
        deterministic: bool = True,
        indent: Optional[int] = 2,
    ) -> str:
        """JSON export of :meth:`to_dict`."""
        return json.dumps(
            self.to_dict(deterministic=deterministic),
            indent=indent,
            sort_keys=True,
        )

    def summary(self) -> str:
        """Human-readable one-screen summary table."""
        from ..report.tables import format_table

        rows = []
        for job in self.jobs:
            dmm = ", ".join(f"dmm({k})={v}" for k, v in sorted(job.dmm.items()))
            wcl = "-" if job.wcl is None else f"{job.wcl:g}"
            rows.append((job.label, job.chain_name, job.status, wcl, dmm or "-"))
        table = format_table(("job", "chain", "status", "WCL", "DMM"), rows)
        counts = ", ".join(
            f"{status}: {count}" for status, count in self.status_counts.items()
        )
        tail = (
            f"{len(self.jobs)} jobs ({counts}) in {self.wall_time:.2f}s "
            f"with {self.workers} worker(s), "
            f"cache hit rate {self.cache_hit_rate:.0%}"
        )
        if self.disk_hit_count:
            tail += f" ({self.disk_hit_count} served from disk)"
        return f"{table}\n{tail}"


class BatchRunner:
    """Fan TWCA jobs out over worker processes with memoized analyses.

    Parameters
    ----------
    workers:
        ``1`` runs jobs in-process (deterministic serial reference);
        ``N > 1`` uses a :class:`ProcessPoolExecutor` with ``N``
        processes.  Results are returned in submission order in both
        modes and the deterministic exports are identical.
    ks:
        DMM window sizes evaluated per job (overridable per job).
    backend:
        ILP backend for the Theorem 3 packing.
    enumeration:
        Combination pipeline mode per job: ``"pruned"`` (default, the
        lazy dominance-pruned frontier search) or ``"exhaustive"``
        (eager enumeration; the classic reference path).  Both produce
        byte-identical deterministic exports.
    cache:
        Explicit in-process cache for the serial path and
        :meth:`analyze`/:meth:`evaluate_dmm`; overrides the
        ``cache_dir``/``use_cache`` policy when given.
    cache_dir:
        Root of the shared persistent cache.  Workers and the serial
        path all run under a
        :class:`~repro.runner.diskcache.PersistentAnalysisCache` on
        this directory, so warm batches skip every memoized
        recomputation across processes and across runs.
    use_cache:
        ``False`` disables analysis memoization everywhere (the
        ``--no-cache`` escape hatch).
    cache_maxsize:
        Entry bound per category for the in-process (front) caches.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        ks: Tuple[int, ...] = DEFAULT_KS,
        backend: str = "branch_bound",
        enumeration: str = "pruned",
        cache: Optional[AnalysisCache] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        cache_maxsize: int = 200_000,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.ks = tuple(ks)
        self.backend = backend
        self.enumeration = enumeration
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.use_cache = use_cache
        self.cache_maxsize = cache_maxsize
        if cache is not None:
            self.cache: Optional[AnalysisCache] = cache
        else:
            self.cache = _build_cache(use_cache, self.cache_dir, cache_maxsize)
        self.loader = SystemLoader()

    # ------------------------------------------------------------------
    # Job construction
    # ------------------------------------------------------------------
    def jobs_for(
        self,
        systems: Iterable[System],
        chains: Optional[Sequence[str]] = None,
        *,
        labels: Optional[Sequence[str]] = None,
        ks: Optional[Tuple[int, ...]] = None,
    ) -> List[AnalysisJob]:
        """One job per (system, chain).  ``chains=None`` selects every
        typical chain with a finite deadline of each system."""
        job_ks = tuple(ks) if ks is not None else self.ks
        jobs: List[AnalysisJob] = []
        for index, system in enumerate(systems):
            label = labels[index] if labels is not None else system.name
            names = chains
            if names is None:
                typical = system.typical_chains
                names = [chain.name for chain in typical if chain.has_deadline]
            for name in names:
                jobs.append(
                    AnalysisJob.from_system(
                        system,
                        name,
                        ks=job_ks,
                        backend=self.backend,
                        enumeration=self.enumeration,
                        label=label,
                    )
                )
        return jobs

    def path_jobs_for(
        self,
        paths: Sequence[str],
        chains: Optional[Sequence[str]] = None,
        *,
        labels: Optional[Sequence[str]] = None,
        ks: Optional[Tuple[int, ...]] = None,
    ) -> List[SystemPathJob]:
        """Worker-loaded jobs for system files, defaulting labels to
        the paths.

        Explicitly named ``chains`` fan out as one job per
        (file, chain) — the same work granularity as :meth:`jobs_for`,
        so few files with many chains still occupy the whole pool (the
        worker-side loaders memoize the parse, so a file is read at
        most once per worker).  ``chains=None`` must defer chain
        discovery to the load, hence one job per file."""
        job_ks = tuple(ks) if ks is not None else self.ks
        jobs: List[SystemPathJob] = []
        for index, path in enumerate(paths):
            label = labels[index] if labels is not None else str(path)
            per_path = [None] if chains is None else [(name,) for name in chains]
            jobs.extend(
                SystemPathJob(
                    path=str(path),
                    chains=selected,
                    ks=job_ks,
                    backend=self.backend,
                    enumeration=self.enumeration,
                    label=label,
                )
                for selected in per_path
            )
        return jobs

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[AnalysisJob]) -> BatchResult:
        """Execute ``jobs`` and collect a :class:`BatchResult`."""
        jobs = list(jobs)
        start = time.perf_counter()
        if self.workers == 1 or len(jobs) <= 1:
            results = self._run_serial(jobs)
        else:
            results = self._run_parallel(jobs, _run_in_worker)
        return self._collect(results, start)

    def run_systems(
        self,
        systems: Iterable[System],
        chains: Optional[Sequence[str]] = None,
        *,
        labels: Optional[Sequence[str]] = None,
        ks: Optional[Tuple[int, ...]] = None,
    ) -> BatchResult:
        """Convenience: :meth:`jobs_for` then :meth:`run`."""
        return self.run(self.jobs_for(systems, chains, labels=labels, ks=ks))

    def run_paths(
        self,
        paths: Sequence[str],
        chains: Optional[Sequence[str]] = None,
        *,
        labels: Optional[Sequence[str]] = None,
        ks: Optional[Tuple[int, ...]] = None,
    ) -> BatchResult:
        """Analyze system *files*, loading them inside the workers.

        The parent never reads the files: each worker parses its own
        (memoized per process, revalidated by content digest), so parse
        I/O overlaps analysis across the pool.  Results are flattened
        in file-then-chain order, deterministically for any worker
        count, and byte-identically to parsing in the parent and using
        :meth:`run_systems`.
        """
        path_jobs = self.path_jobs_for(paths, chains, labels=labels, ks=ks)
        start = time.perf_counter()
        if self.workers == 1 or len(path_jobs) <= 1:
            nested = []
            for job in path_jobs:
                try:
                    nested.append(
                        execute_path_job(job, cache=self.cache, loader=self.loader)
                    )
                except Exception as exc:
                    raise BatchExecutionError(job, exc) from exc
        else:
            nested = self._run_parallel(path_jobs, _run_path_in_worker)
        results = [result for group in nested for result in group]
        return self._collect(results, start)

    def _collect(self, results: List[JobResult], start: float) -> BatchResult:
        totals: Dict[str, Dict[str, int]] = {}
        for result in results:
            merge_stats(totals, result.cache)
        return BatchResult(
            jobs=results,
            workers=self.workers,
            wall_time=time.perf_counter() - start,
            cache_stats=totals,
        )

    def _run_serial(self, jobs: Sequence[AnalysisJob]) -> List[JobResult]:
        results = []
        for job in jobs:
            try:
                results.append(execute_job(job, cache=self.cache))
            except Exception as exc:
                raise BatchExecutionError(job, exc) from exc
        return results

    def _run_parallel(self, jobs: Sequence[Any], worker_fn: Any) -> List[Any]:
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.cache_maxsize, self.cache_dir, self.use_cache),
        ) as pool:
            futures = [pool.submit(worker_fn, job) for job in jobs]
            results = []
            for job, future in zip(jobs, futures):
                try:
                    results.append(future.result())
                except Exception as exc:
                    for pending in futures:
                        pending.cancel()
                    raise BatchExecutionError(job, exc) from exc
        return results

    # ------------------------------------------------------------------
    # In-process evaluation for sequential consumers (opt layer)
    # ------------------------------------------------------------------
    def analyze(
        self,
        system: System,
        chain_name: str,
        *,
        ks: Optional[Tuple[int, ...]] = None,
    ) -> JobResult:
        """One TWCA in-process under the runner's cache — the memoized
        evaluation primitive for inherently sequential searches
        (hill climbing, binary-search margins).

        Operates on the live system: the canonical-JSON round-trip of
        :class:`AnalysisJob` exists for cross-process transport and
        would dominate warm, cache-served evaluations here.  A job is
        only materialized on the error path, to name the failure."""
        job_ks = tuple(ks) if ks is not None else self.ks
        try:
            if self.cache is None:
                return analyze_system_job(
                    system,
                    chain_name,
                    ks=job_ks,
                    backend=self.backend,
                    enumeration=self.enumeration,
                )
            with self.cache.activate():
                return analyze_system_job(
                    system,
                    chain_name,
                    ks=job_ks,
                    backend=self.backend,
                    enumeration=self.enumeration,
                )
        except Exception as exc:
            job = AnalysisJob.from_system(
                system, chain_name, ks=job_ks, backend=self.backend
            )
            raise BatchExecutionError(job, exc) from exc

    def evaluate_dmm(
        self,
        system: System,
        chain_names: Sequence[str],
        k: int,
    ) -> float:
        """Summed :meth:`JobResult.score` over ``chain_names`` — the
        convention of :func:`repro.opt.priority_search.dmm_objective`:
        analysis errors contribute the vacuous bound ``k``.  Lower is
        better."""
        total = 0.0
        for name in chain_names:
            total += self.analyze(system, name, ks=(k,)).score(k)
        return total
