"""Worker-side system loading for the batch runner.

``repro batch --system a.json b.json ...`` used to read and parse every
system file serially in the parent before any analysis started.  A
:class:`SystemPathJob` instead ships only the *path* to the workers;
each worker reads and parses the file itself through a process-local
:class:`SystemLoader`, so parse I/O overlaps analysis across the pool
and the parent never touches the files at all.

The loader memoizes parsed systems per process, keyed by path plus the
SHA-256 of the file bytes, recomputed from the bytes on every load —
so a loader can never serve a stale system, with no mtime-granularity
blind spot.  A rewritten-but-identical file (``touch``, an atomic
re-deploy of the same corpus) revalidates by digest and skips the
reparse; only genuinely changed bytes pay for parsing, the dominant
cost being memoized.

One path job fans out into one :class:`~repro.runner.jobs.JobResult`
per analyzed chain (explicitly listed, or every typical chain with a
finite deadline), in deterministic file-then-chain order — the flat
result list of a path batch is byte-identical to loading the systems in
the parent and running regular jobs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..model import System
from ..model.serialization import system_from_json
from .cache import AnalysisCache
from .jobs import DEFAULT_KS, JobResult, default_chain_names, run_chain_job


@dataclass(frozen=True)
class SystemPathJob:
    """One system *file* to analyze: the worker-loaded counterpart of
    :class:`~repro.runner.jobs.AnalysisJob`.

    ``chains=None`` selects every typical chain with a finite deadline
    of the loaded system; ``label`` defaults to the path.
    """

    path: str
    chains: Optional[Tuple[str, ...]] = None
    ks: Tuple[int, ...] = DEFAULT_KS
    backend: str = "branch_bound"
    max_combinations: int = 100_000
    exact_criterion: bool = True
    enumeration: str = "pruned"
    label: str = ""

    @property
    def chain_name(self) -> str:
        """Display form of the chain selection (for error messages)."""
        return ", ".join(self.chains) if self.chains else "*"


@dataclass
class _LoadedSystem:
    """One memoized parse: the byte digest the entry was validated
    against, plus the parsed system."""

    file_digest: str
    system: System


class SystemLoader:
    """Process-local cache of parsed system files.

    Loading rereads and redigests the bytes every time (cheap, and
    immune to same-size rewrites inside one mtime tick) and reuses the
    memoized parse whenever the digest is unchanged.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, _LoadedSystem] = {}
        self.parses = 0
        self.reuses = 0

    def load(self, path: str) -> System:
        """The parsed system for ``path`` (memoized per process)."""
        with open(path, "rb") as handle:
            raw = handle.read()
        digest = hashlib.sha256(raw).hexdigest()
        entry = self._entries.get(path)
        if entry is not None and entry.file_digest == digest:
            self.reuses += 1
            return entry.system
        system = system_from_json(raw.decode("utf-8"))
        self._entries[path] = _LoadedSystem(digest, system)
        self.parses += 1
        return system


def execute_path_job(
    job: SystemPathJob,
    cache: Optional[AnalysisCache] = None,
    loader: Optional[SystemLoader] = None,
) -> List[JobResult]:
    """Load ``job.path`` (through ``loader`` when given) and run one
    chain job per selected chain, in deterministic chain order.

    File-level failures — missing path, unreadable bytes, invalid
    system JSON — raise, like any other malformed batch input; analysis
    failures are per-chain ``status="error"`` results as usual.
    """
    loader = loader if loader is not None else SystemLoader()
    system = loader.load(job.path)
    names = job.chains if job.chains is not None else default_chain_names(system)
    label = job.label or job.path
    return [
        run_chain_job(
            system,
            name,
            ks=job.ks,
            backend=job.backend,
            max_combinations=job.max_combinations,
            exact_criterion=job.exact_criterion,
            enumeration=job.enumeration,
            label=label,
            cache=cache,
        )
        for name in names
    ]
